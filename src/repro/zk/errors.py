"""ZooKeeper-style error hierarchy.

``ApiError`` subclasses mirror ZooKeeper's ``KeeperException`` codes: they
are deterministic outcomes of applying an operation against the tree and are
replicated (every server computes the same error for the same txn).
``ConnectionLossError`` and ``SessionExpiredError`` are client-visible
transport/session failures.
"""

from __future__ import annotations

__all__ = [
    "ApiError",
    "BadVersionError",
    "ConnectionLossError",
    "NoChildrenForEphemeralsError",
    "NoNodeError",
    "NodeExistsError",
    "NotEmptyError",
    "SessionExpiredError",
    "ZkError",
]


class ZkError(Exception):
    """Base for everything this service raises."""


class ApiError(ZkError):
    """Deterministic, replicated operation outcome (KeeperException)."""

    code = "api_error"

    def __init__(self, path: str = "", message: str = ""):
        self.path = path
        super().__init__(message or f"{self.code}: {path}")


class NoNodeError(ApiError):
    code = "no_node"


class NodeExistsError(ApiError):
    code = "node_exists"


class BadVersionError(ApiError):
    code = "bad_version"


class NotEmptyError(ApiError):
    code = "not_empty"


class NoChildrenForEphemeralsError(ApiError):
    code = "no_children_for_ephemerals"


class ConnectionLossError(ZkError):
    """The client lost its server (timeout / crash); op outcome unknown."""


class SessionExpiredError(ZkError):
    """The session was expired by the ensemble; ephemerals are gone."""


#: Registry used to reconstruct ApiErrors from replicated error codes.
ERROR_BY_CODE = {
    cls.code: cls
    for cls in (
        ApiError,
        NoNodeError,
        NodeExistsError,
        BadVersionError,
        NotEmptyError,
        NoChildrenForEphemeralsError,
    )
}


def error_from_code(code: str, path: str = "") -> ApiError:
    """Rebuild an :class:`ApiError` from its replicated code."""
    return ERROR_BY_CODE.get(code, ApiError)(path)
