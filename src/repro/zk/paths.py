"""Znode path validation and manipulation."""

from __future__ import annotations

from typing import List

__all__ = ["basename", "parent_of", "split", "validate_path"]


def validate_path(path: str) -> str:
    """Validate a znode path; returns it unchanged.

    Rules follow ZooKeeper: absolute, no trailing slash (except root), no
    empty or relative components.
    """
    if not isinstance(path, str) or not path:
        raise ValueError("path must be a non-empty string")
    if not path.startswith("/"):
        raise ValueError(f"path must be absolute: {path!r}")
    if path == "/":
        return path
    if path.endswith("/"):
        raise ValueError(f"path must not end with '/': {path!r}")
    for component in path[1:].split("/"):
        if not component:
            raise ValueError(f"empty path component in {path!r}")
        if component in (".", ".."):
            raise ValueError(f"relative path component in {path!r}")
    return path


def parent_of(path: str) -> str:
    """Parent path of ``path`` ('/' is its own parent)."""
    if path == "/":
        return "/"
    head, _sep, _tail = path.rpartition("/")
    return head or "/"


def basename(path: str) -> str:
    """Final component of ``path``."""
    if path == "/":
        return ""
    return path.rpartition("/")[2]


def split(path: str) -> List[str]:
    """All components of an absolute path."""
    if path == "/":
        return []
    return path[1:].split("/")
