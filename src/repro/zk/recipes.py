"""Coordination recipes built on the client API.

The standard ZooKeeper/Curator patterns the paper discusses (§III-B) —
implemented against our client so the BookKeeper/SCFS substrates and the
examples can use them, and so WanKeeper's bulk-token handling of
sequential znodes is exercised by a real recipe (the fair lock).

All methods are generator functions: ``yield from`` / ``yield
env.process(...)`` them inside simulation processes.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import AnyOf, Environment
from repro.zk.client import ZkClient
from repro.zk.errors import NodeExistsError, NoNodeError
from repro.zk.paths import basename

__all__ = [
    "Barrier",
    "DistributedLock",
    "DistributedQueue",
    "DoubleBarrier",
    "FairLock",
    "GroupMembership",
    "LeaderElector",
    "ServiceDiscovery",
]


class DistributedLock:
    """Simple exclusive lock: one ephemeral znode, watch-based waiting."""

    def __init__(self, env: Environment, client: ZkClient, path: str):
        self.env = env
        self.client = client
        self.path = path
        self.held = False

    def acquire(self, poll_timeout_ms: float = 5000.0):
        """Generator: block until the lock is held."""
        while True:
            try:
                yield self.client.create(self.path, b"", ephemeral=True)
                self.held = True
                return
            except NodeExistsError:
                pass
            stat = yield self.client.exists(self.path, watch=True)
            if stat is None:
                continue  # deleted between create and exists; retry
            # Wait for the delete notification (or timeout and re-check,
            # in case the watch was consumed by an unrelated change).
            yield AnyOf(
                self.env,
                [
                    self.client.wait_watch(self.path),
                    self.env.timeout(poll_timeout_ms),
                ],
            )

    def release(self):
        """Generator: release the lock."""
        if not self.held:
            raise RuntimeError("lock not held")
        self.held = False
        try:
            yield self.client.delete(self.path)
        except NoNodeError:
            pass  # session expiry already removed it


class FairLock:
    """ZooKeeper's fair-lock recipe: ephemeral *sequential* waiter znodes.

    Each contender creates ``<root>/waiter-NNNNNNNNNN`` and holds the lock
    when its znode has the smallest sequence number; otherwise it watches
    its predecessor. Sequential siblings share one WanKeeper bulk token
    (§III-B), so the whole queue migrates between sites as a unit.
    """

    def __init__(self, env: Environment, client: ZkClient, root: str):
        self.env = env
        self.client = client
        self.root = root
        self.my_node: Optional[str] = None

    def acquire(self, poll_timeout_ms: float = 5000.0):
        """Generator: block until this contender holds the lock."""
        try:
            yield self.client.create(self.root, b"")
        except NodeExistsError:
            pass
        self.my_node = yield self.client.create(
            f"{self.root}/waiter-", b"", ephemeral=True, sequential=True
        )
        my_name = basename(self.my_node)
        while True:
            children = yield self.client.get_children(self.root)
            waiters = sorted(c for c in children if c.startswith("waiter-"))
            if not waiters or waiters[0] == my_name:
                return
            my_index = waiters.index(my_name)
            predecessor = f"{self.root}/{waiters[my_index - 1]}"
            stat = yield self.client.exists(predecessor, watch=True)
            if stat is None:
                continue  # predecessor vanished; re-evaluate
            yield AnyOf(
                self.env,
                [
                    self.client.wait_watch(predecessor),
                    self.env.timeout(poll_timeout_ms),
                ],
            )

    def release(self):
        """Generator: give up the lock (or leave the queue)."""
        if self.my_node is None:
            raise RuntimeError("lock not held")
        node, self.my_node = self.my_node, None
        try:
            yield self.client.delete(node)
        except NoNodeError:
            pass


class LeaderElector:
    """Leader election: lowest sequential ephemeral wins; others follow."""

    def __init__(self, env: Environment, client: ZkClient, root: str):
        self.env = env
        self.client = client
        self.root = root
        self.my_node: Optional[str] = None
        self.is_leader = False

    def join(self):
        """Generator: enter the election (does not wait for leadership)."""
        try:
            yield self.client.create(self.root, b"")
        except NodeExistsError:
            pass
        self.my_node = yield self.client.create(
            f"{self.root}/candidate-", b"", ephemeral=True, sequential=True
        )

    def await_leadership(self, poll_timeout_ms: float = 5000.0):
        """Generator: block until this candidate is the leader."""
        if self.my_node is None:
            raise RuntimeError("join() the election first")
        my_name = basename(self.my_node)
        while True:
            children = yield self.client.get_children(self.root)
            candidates = sorted(c for c in children if c.startswith("candidate-"))
            if candidates and candidates[0] == my_name:
                self.is_leader = True
                return
            my_index = candidates.index(my_name)
            predecessor = f"{self.root}/{candidates[my_index - 1]}"
            stat = yield self.client.exists(predecessor, watch=True)
            if stat is None:
                continue
            yield AnyOf(
                self.env,
                [
                    self.client.wait_watch(predecessor),
                    self.env.timeout(poll_timeout_ms),
                ],
            )

    def resign(self):
        """Generator: leave the election."""
        if self.my_node is None:
            return
        node, self.my_node = self.my_node, None
        self.is_leader = False
        try:
            yield self.client.delete(node)
        except NoNodeError:
            pass


class Barrier:
    """One-shot barrier: clients wait until the barrier node is removed.

    The paper notes barriers work with persistent or ephemeral znodes and
    are safe under WanKeeper's token migration (§III-B).
    """

    def __init__(self, env: Environment, client: ZkClient, path: str):
        self.env = env
        self.client = client
        self.path = path

    def set(self):
        """Generator: raise the barrier."""
        try:
            yield self.client.create(self.path, b"")
        except NodeExistsError:
            pass

    def lift(self):
        """Generator: remove the barrier, releasing all waiters."""
        try:
            yield self.client.delete(self.path)
        except NoNodeError:
            pass

    def wait(self, poll_timeout_ms: float = 5000.0):
        """Generator: block until the barrier is lifted."""
        while True:
            stat = yield self.client.exists(self.path, watch=True)
            if stat is None:
                return
            yield AnyOf(
                self.env,
                [
                    self.client.wait_watch(self.path),
                    self.env.timeout(poll_timeout_ms),
                ],
            )


class DoubleBarrier:
    """Enter/leave barrier: computation starts when ``count`` members have
    entered and finishes when all have left (the classic ZK recipe)."""

    def __init__(
        self,
        env: Environment,
        client: ZkClient,
        root: str,
        member: str,
        count: int,
    ):
        if count < 1:
            raise ValueError("count must be positive")
        self.env = env
        self.client = client
        self.root = root
        self.member = member
        self.count = count

    def _member_path(self) -> str:
        return f"{self.root}/{self.member}"

    def enter(self, poll_timeout_ms: float = 5000.0):
        """Generator: register and wait until ``count`` members entered."""
        try:
            yield self.client.create(self.root, b"")
        except NodeExistsError:
            pass
        yield self.client.create(self._member_path(), b"", ephemeral=True)
        while True:
            children = yield self.client.get_children(self.root, watch=True)
            if len(children) >= self.count:
                return
            yield AnyOf(
                self.env,
                [
                    self.client.wait_watch(self.root),
                    self.env.timeout(poll_timeout_ms),
                ],
            )

    def leave(self, poll_timeout_ms: float = 5000.0):
        """Generator: deregister and wait until everyone has left."""
        try:
            yield self.client.delete(self._member_path())
        except NoNodeError:
            pass
        while True:
            children = yield self.client.get_children(self.root, watch=True)
            if not children:
                return
            yield AnyOf(
                self.env,
                [
                    self.client.wait_watch(self.root),
                    self.env.timeout(poll_timeout_ms),
                ],
            )


class DistributedQueue:
    """FIFO queue over sequential znodes (§III-B: queues need sequential
    ephemeral/persistent znodes, so the whole queue shares one WanKeeper
    bulk token and migrates between sites as a unit)."""

    def __init__(self, env: Environment, client: ZkClient, root: str):
        self.env = env
        self.client = client
        self.root = root

    def put(self, payload: bytes):
        """Generator: enqueue ``payload``; returns the item's znode path."""
        try:
            yield self.client.create(self.root, b"")
        except NodeExistsError:
            pass
        path = yield self.client.create(
            f"{self.root}/item-", payload, sequential=True
        )
        return path

    def take(self, poll_timeout_ms: float = 5000.0):
        """Generator: dequeue the oldest item (blocks until available)."""
        while True:
            children = yield self.client.get_children(self.root, watch=True)
            items = sorted(c for c in children if c.startswith("item-"))
            for name in items:
                path = f"{self.root}/{name}"
                try:
                    data, _stat = yield self.client.get_data(path)
                    yield self.client.delete(path)
                    return data
                except NoNodeError:
                    continue  # another consumer won the race
            yield AnyOf(
                self.env,
                [
                    self.client.wait_watch(self.root),
                    self.env.timeout(poll_timeout_ms),
                ],
            )

    def size(self):
        """Generator: current queue length."""
        try:
            children = yield self.client.get_children(self.root)
        except NoNodeError:
            return 0
        return len([c for c in children if c.startswith("item-")])


class GroupMembership:
    """Ephemeral-znode group membership with liveness semantics."""

    def __init__(self, env: Environment, client: ZkClient, root: str, member: str):
        self.env = env
        self.client = client
        self.root = root
        self.member = member

    def join(self, metadata: bytes = b""):
        """Generator: join the group (ephemeral: leaves on session end)."""
        try:
            yield self.client.create(self.root, b"")
        except NodeExistsError:
            pass
        yield self.client.create(
            f"{self.root}/{self.member}", metadata, ephemeral=True
        )

    def leave(self):
        """Generator: leave the group explicitly."""
        try:
            yield self.client.delete(f"{self.root}/{self.member}")
        except NoNodeError:
            pass

    def members(self, watch: bool = False):
        """Generator: current live members."""
        try:
            children = yield self.client.get_children(self.root, watch=watch)
        except NoNodeError:
            return []
        return sorted(children)


class ServiceDiscovery:
    """Service registry: instances register ephemeral endpoint znodes."""

    def __init__(self, env: Environment, client: ZkClient, root: str = "/services"):
        self.env = env
        self.client = client
        self.root = root

    def register(self, service: str, instance: str, endpoint: bytes):
        """Generator: advertise an instance of ``service``."""
        for path in (self.root, f"{self.root}/{service}"):
            try:
                yield self.client.create(path, b"")
            except NodeExistsError:
                pass
        yield self.client.create(
            f"{self.root}/{service}/{instance}", endpoint, ephemeral=True
        )

    def deregister(self, service: str, instance: str):
        """Generator: withdraw an instance."""
        try:
            yield self.client.delete(f"{self.root}/{service}/{instance}")
        except NoNodeError:
            pass

    def instances(self, service: str, watch: bool = False):
        """Generator: live ``(instance, endpoint)`` pairs for a service."""
        try:
            names = yield self.client.get_children(
                f"{self.root}/{service}", watch=watch
            )
        except NoNodeError:
            return []
        result = []
        for name in sorted(names):
            try:
                data, _stat = yield self.client.get_data(
                    f"{self.root}/{service}/{name}"
                )
                result.append((name, data))
            except NoNodeError:
                continue
        return result
