"""Deployment builders for the paper's ZooKeeper baselines.

Two baseline shapes from §IV-A:

* **plain ZK** — one ensemble whose voters span the WAN (leader pinned to
  the designated leader site by election priority: remote writes take ~2
  WAN RTTs because commit quorums cross the WAN);
* **ZK with observers** — all voters in the leader site, one non-voting
  observer in each remote site (remote writes take ~1 WAN RTT; reads are
  local).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.invariants import maybe_attach_sentinel
from repro.net.topology import NodeAddress, Topology, VIRGINIA
from repro.net.transport import Network
from repro.sim.kernel import Environment, SimulationError
from repro.zab.config import EnsembleConfig
from repro.zk.client import ZkClient
from repro.zk.server import ZkServer

__all__ = ["ZkDeployment", "build_zk_deployment"]


@dataclass
class ZkDeployment:
    """A running set of coordination servers plus client factory."""

    env: Environment
    net: Network
    topology: Topology
    config: EnsembleConfig
    servers: List[ZkServer]
    sentinel: Optional[object] = None
    substrate: str = "zab"
    _clients: List[ZkClient] = field(default_factory=list)
    _client_counter: int = 0

    def start(self) -> None:
        for server in self.servers:
            server.start()

    def stabilize(self, max_ms: float = 60000.0) -> None:
        """Run the simulation until a leader is active."""
        deadline = self.env.now + max_ms
        while self.env.now < deadline:
            if any(server.is_leader for server in self.servers):
                return
            self.env.run(until=self.env.now + 50.0)
        raise SimulationError("no leader elected within the stabilization window")

    @property
    def leader(self) -> Optional[ZkServer]:
        for server in self.servers:
            if server.is_leader:
                return server
        return None

    def server_at(self, site: str) -> ZkServer:
        """The (first) server in ``site`` — where local clients connect."""
        for server in self.servers:
            if server.site == site and server.is_alive:
                return server
        raise ValueError(f"no live server in site {site!r}")

    def servers_at(self, site: str) -> List[ZkServer]:
        return [server for server in self.servers if server.site == site]

    def client(
        self,
        site: str,
        name: str = "",
        session_timeout_ms: float = 6000.0,
        request_timeout_ms: float = 10000.0,
    ) -> ZkClient:
        """Create a client in ``site`` bound to that site's server."""
        self._client_counter += 1
        client_name = name or f"client{self._client_counter}"
        addr = self.topology.site(site).address(f"{client_name}@{site}")
        client = ZkClient(
            self.env,
            self.net,
            addr,
            self.server_at(site).client_addr,
            session_timeout_ms=session_timeout_ms,
            request_timeout_ms=request_timeout_ms,
            name=client_name,
        )
        self._clients.append(client)
        return client

    def tree_fingerprints(self) -> Dict[str, int]:
        """Data-tree digests per server (replica-consistency checks)."""
        return {server.name: server.tree.fingerprint() for server in self.servers}


def build_zk_deployment(
    env: Environment,
    net: Network,
    topology: Topology,
    leader_site: str = VIRGINIA,
    voters_in_leader_site: int = 3,
    voting_sites: Optional[Sequence[str]] = None,
    observer_sites: Sequence[str] = (),
    heartbeat_interval_ms: float = 50.0,
    election_timeout_ms: float = 300.0,
    processing_delay_ms: float = 0.02,
    substrate: str = "zab",
) -> ZkDeployment:
    """Build one of the two baseline deployments.

    With ``voting_sites`` given, one voter is placed in each named site
    (paper's plain-ZK setup; repeat a site name for more voters there).
    Otherwise ``voters_in_leader_site`` voters are placed in
    ``leader_site``. ``observer_sites`` each get one observer.

    ``substrate`` picks the broadcast protocol underneath every server
    (see :mod:`repro.substrate`): ``"zab"`` (default, single elected
    leader) or ``"wpaxos"`` (multileader; every voter proposes for the
    objects it owns, so ``leader_site`` only shapes naming).

    Under zab the leader lands in ``leader_site`` because election ties
    break toward the highest (zxid, address), and the leader-site voter
    is given the lexicographically greatest name.
    """
    voter_addrs: List[NodeAddress] = []
    if voting_sites is not None:
        counters: Dict[str, int] = {}
        for site in voting_sites:
            counters[site] = counters.get(site, 0) + 1
            # 'zz' prefix in the leader site wins election ties there.
            prefix = "zz-voter" if site == leader_site else "voter"
            voter_addrs.append(
                topology.site(site).address(f"{prefix}{counters[site]}.zab")
            )
    else:
        for index in range(voters_in_leader_site):
            voter_addrs.append(
                topology.site(leader_site).address(f"voter{index}.zab")
            )

    observer_addrs = [
        topology.site(site).address(f"observer-{site}.zab")
        for site in observer_sites
    ]

    config = EnsembleConfig(
        voters=voter_addrs,
        observers=observer_addrs,
        heartbeat_interval_ms=heartbeat_interval_ms,
        election_timeout_ms=election_timeout_ms,
        processing_delay_ms=processing_delay_ms,
    )

    servers = []
    for zab_addr in voter_addrs + observer_addrs:
        client_name = zab_addr.name.replace(".zab", "")
        client_addr = topology.site(zab_addr.site).address(client_name)
        servers.append(
            ZkServer(
                env, net, zab_addr, client_addr, config,
                name=f"{zab_addr.site}/{client_name}",
                substrate=substrate,
            )
        )

    deployment = ZkDeployment(
        env, net, topology, config, servers, substrate=substrate
    )
    deployment.sentinel = maybe_attach_sentinel(deployment)
    return deployment
