"""Client <-> server wire messages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.zk.records import WatchEvent

__all__ = [
    "ConnectReply",
    "ConnectRequest",
    "HeartbeatAck",
    "OpReply",
    "OpRequest",
    "SessionExpiredNotice",
    "SessionHeartbeat",
    "WatchNotify",
]


@dataclass(frozen=True)
class ConnectRequest:
    client: Any  # NodeAddress of the client
    timeout_ms: float


@dataclass(frozen=True)
class ConnectReply:
    session_id: str
    timeout_ms: float


class OpRequest:
    """Client -> server: one operation.

    A hand-written ``__slots__`` class (with :class:`OpReply`): one of
    each is allocated per client operation, where the frozen-dataclass
    ``__init__`` overhead was measurable.
    """

    __slots__ = ('session_id', 'cxid', 'op')

    def __init__(self, session_id: str, cxid: int, op: Any):
        self.session_id = session_id
        self.cxid = cxid
        self.op = op

    def _astuple(self) -> tuple:
        return (self.session_id, self.cxid, self.op)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not OpRequest:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"OpRequest(session_id={self.session_id!r}, cxid={self.cxid!r}, op={self.op!r})"


class OpReply:
    __slots__ = ('session_id', 'cxid', 'ok', 'value', 'error_code', 'error_path')

    def __init__(self, session_id: str, cxid: int, ok: bool, value: Any = None, error_code: Optional[str] = None, error_path: str = ""):
        self.session_id = session_id
        self.cxid = cxid
        self.ok = ok
        self.value = value
        self.error_code = error_code
        self.error_path = error_path

    def _astuple(self) -> tuple:
        return (self.session_id, self.cxid, self.ok, self.value, self.error_code, self.error_path)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not OpReply:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"OpReply(session_id={self.session_id!r}, cxid={self.cxid!r}, ok={self.ok!r}, value={self.value!r}, error_code={self.error_code!r}, error_path={self.error_path!r})"


@dataclass(frozen=True)
class WatchNotify:
    session_id: str
    event: WatchEvent


@dataclass(frozen=True)
class SessionHeartbeat:
    session_id: str


@dataclass(frozen=True)
class HeartbeatAck:
    session_id: str


@dataclass(frozen=True)
class SessionExpiredNotice:
    session_id: str
