"""Client <-> server wire messages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.zk.records import WatchEvent

__all__ = [
    "ConnectReply",
    "ConnectRequest",
    "HeartbeatAck",
    "OpReply",
    "OpRequest",
    "SessionExpiredNotice",
    "SessionHeartbeat",
    "WatchNotify",
]


@dataclass(frozen=True)
class ConnectRequest:
    client: Any  # NodeAddress of the client
    timeout_ms: float


@dataclass(frozen=True)
class ConnectReply:
    session_id: str
    timeout_ms: float


@dataclass(frozen=True)
class OpRequest:
    session_id: str
    cxid: int
    op: Any


@dataclass(frozen=True)
class OpReply:
    session_id: str
    cxid: int
    ok: bool
    value: Any = None
    error_code: Optional[str] = None
    error_path: str = ""


@dataclass(frozen=True)
class WatchNotify:
    session_id: str
    event: WatchEvent


@dataclass(frozen=True)
class SessionHeartbeat:
    session_id: str


@dataclass(frozen=True)
class HeartbeatAck:
    session_id: str


@dataclass(frozen=True)
class SessionExpiredNotice:
    session_id: str
