"""Shared record types: Stat, Znode, watch events."""

from __future__ import annotations

import enum
from typing import Optional, Set

from repro.zab.zxid import Zxid

__all__ = ["Stat", "WatchEvent", "WatchType", "Znode"]


class Stat:
    """Znode metadata, as returned by read operations (ZooKeeper Stat).

    A hand-written ``__slots__`` class rather than a frozen dataclass: one
    is allocated per read reply, and the frozen ``__init__`` (a chain of
    ``object.__setattr__`` calls) was measurable on the read path.
    """

    __slots__ = ("czxid", "mzxid", "pzxid", "version", "cversion",
                 "ephemeral_owner", "data_length", "num_children")

    def __init__(
        self,
        czxid: Zxid,
        mzxid: Zxid,
        pzxid: Zxid,
        version: int,
        cversion: int,
        ephemeral_owner: Optional[str],
        data_length: int,
        num_children: int,
    ):
        self.czxid = czxid
        self.mzxid = mzxid
        self.pzxid = pzxid
        self.version = version
        self.cversion = cversion
        self.ephemeral_owner = ephemeral_owner
        self.data_length = data_length
        self.num_children = num_children

    def _astuple(self) -> tuple:
        return (self.czxid, self.mzxid, self.pzxid, self.version,
                self.cversion, self.ephemeral_owner, self.data_length,
                self.num_children)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Stat:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"Stat(czxid={self.czxid!r}, mzxid={self.mzxid!r}, "
            f"pzxid={self.pzxid!r}, version={self.version!r}, "
            f"cversion={self.cversion!r}, "
            f"ephemeral_owner={self.ephemeral_owner!r}, "
            f"data_length={self.data_length!r}, "
            f"num_children={self.num_children!r})"
        )

    @property
    def is_ephemeral(self) -> bool:
        return self.ephemeral_owner is not None


class WatchType(str, enum.Enum):
    """Watch notification types (ZooKeeper EventType)."""

    NODE_CREATED = "node_created"
    NODE_DELETED = "node_deleted"
    NODE_DATA_CHANGED = "node_data_changed"
    NODE_CHILDREN_CHANGED = "node_children_changed"


class WatchEvent:
    """A fired watch, delivered asynchronously to the watching client.

    Hand-written ``__slots__`` class (watch events are allocated on every
    committed write); equality and hash match the frozen dataclass it
    replaces.
    """

    __slots__ = ("type", "path")

    def __init__(self, type: WatchType, path: str):
        object.__setattr__(self, "type", type)
        object.__setattr__(self, "path", path)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"WatchEvent is immutable (tried to set {key!r})")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WatchEvent:
            return NotImplemented
        return self.type == other.type and self.path == other.path

    def __hash__(self) -> int:
        return hash((self.type, self.path))

    def __repr__(self) -> str:
        return f"WatchEvent(type={self.type!r}, path={self.path!r})"


class Znode:
    """One node in the replicated tree. Mutable; lives inside DataTree only.

    Hand-written ``__slots__`` class: every committed write reads and
    mutates half a dozen node fields, and slot access avoids the
    per-instance ``__dict__`` of the dataclass it replaces.
    """

    __slots__ = (
        "path",
        "data",
        "czxid",
        "mzxid",
        "pzxid",
        "version",
        "cversion",
        "ephemeral_owner",
        "children",
        # Monotonic counter for naming sequential children.
        "sequence",
        # Dirty-flag caches, rebuilt lazily and dropped by invalidate():
        # the Stat returned by reads and the sorted children list. Every
        # mutation site in DataTree calls invalidate() on the touched
        # node(s); stale values here would leak old metadata to readers.
        "_stat",
        "_sorted_children",
    )

    def __init__(
        self,
        path: str,
        data: bytes,
        czxid: Zxid,
        mzxid: Zxid,
        pzxid: Zxid,
        version: int = 0,
        cversion: int = 0,
        ephemeral_owner: Optional[str] = None,
        children: Optional[Set[str]] = None,
        sequence: int = 0,
    ):
        self.path = path
        self.data = data
        self.czxid = czxid
        self.mzxid = mzxid
        self.pzxid = pzxid
        self.version = version
        self.cversion = cversion
        self.ephemeral_owner = ephemeral_owner
        self.children = set() if children is None else children
        self.sequence = sequence
        self._stat = None
        self._sorted_children = None

    def __repr__(self) -> str:
        return (
            f"Znode(path={self.path!r}, data={self.data!r}, "
            f"czxid={self.czxid!r}, mzxid={self.mzxid!r}, "
            f"pzxid={self.pzxid!r}, version={self.version!r}, "
            f"cversion={self.cversion!r}, "
            f"ephemeral_owner={self.ephemeral_owner!r}, "
            f"children={self.children!r}, sequence={self.sequence!r})"
        )

    @property
    def is_ephemeral(self) -> bool:
        return self.ephemeral_owner is not None

    def invalidate(self) -> None:
        """Drop cached Stat/sorted-children after any field mutation."""
        self._stat = None
        self._sorted_children = None

    def stat(self) -> Stat:
        """This node's Stat; cached until the next mutation.

        Stat is immutable, so handing the same instance to every reader
        between mutations is safe — and reads outnumber writes enough
        that the per-read allocation was measurable in profiles.
        """
        stat = self._stat
        if stat is None:
            stat = self._stat = Stat(
                czxid=self.czxid,
                mzxid=self.mzxid,
                pzxid=self.pzxid,
                version=self.version,
                cversion=self.cversion,
                ephemeral_owner=self.ephemeral_owner,
                data_length=len(self.data),
                num_children=len(self.children),
            )
        return stat

    def sorted_children(self) -> list:
        """Sorted child names; cached until the next child-set mutation.

        Callers must copy before handing the list to anything that may
        mutate it (DataTree.get_children does).
        """
        cached = self._sorted_children
        if cached is None:
            cached = self._sorted_children = sorted(self.children)
        return cached
