"""Shared record types: Stat, Znode, watch events."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.zab.zxid import Zxid

__all__ = ["Stat", "WatchEvent", "WatchType", "Znode"]


@dataclass(frozen=True)
class Stat:
    """Znode metadata, as returned by read operations (ZooKeeper Stat)."""

    czxid: Zxid
    mzxid: Zxid
    pzxid: Zxid
    version: int
    cversion: int
    ephemeral_owner: Optional[str]
    data_length: int
    num_children: int

    @property
    def is_ephemeral(self) -> bool:
        return self.ephemeral_owner is not None


class WatchType(str, enum.Enum):
    """Watch notification types (ZooKeeper EventType)."""

    NODE_CREATED = "node_created"
    NODE_DELETED = "node_deleted"
    NODE_DATA_CHANGED = "node_data_changed"
    NODE_CHILDREN_CHANGED = "node_children_changed"


@dataclass(frozen=True)
class WatchEvent:
    """A fired watch, delivered asynchronously to the watching client."""

    type: WatchType
    path: str


@dataclass
class Znode:
    """One node in the replicated tree. Mutable; lives inside DataTree only."""

    path: str
    data: bytes
    czxid: Zxid
    mzxid: Zxid
    pzxid: Zxid
    version: int = 0
    cversion: int = 0
    ephemeral_owner: Optional[str] = None
    children: Set[str] = field(default_factory=set)
    # Monotonic counter for naming sequential children.
    sequence: int = 0

    @property
    def is_ephemeral(self) -> bool:
        return self.ephemeral_owner is not None

    def stat(self) -> Stat:
        return Stat(
            czxid=self.czxid,
            mzxid=self.mzxid,
            pzxid=self.pzxid,
            version=self.version,
            cversion=self.cversion,
            ephemeral_owner=self.ephemeral_owner,
            data_length=len(self.data),
            num_children=len(self.children),
        )
