"""ZooKeeper-equivalent coordination service.

A from-scratch implementation of the coordination substrate the paper builds
on and compares against: a replicated znode tree maintained by Zab atomic
broadcast, with the ZooKeeper API surface that matters to the paper's
experiments and use cases:

* persistent / ephemeral / sequential znodes with versioned updates;
* watches (data, exists, children) with one-shot semantics;
* sessions with heartbeat-driven expiry and ephemeral cleanup;
* observers for WAN read-locality (the "ZooKeeper with observers" baseline);
* a synchronous FIFO client (linearizable writes, sequential reads).

:func:`build_zk_deployment` assembles the two baseline topologies used in the
evaluation: a plain ensemble with WAN voters and an ensemble with a voting
core in one region plus observers in the others.
"""

from repro.zk.client import ZkClient
from repro.zk.data_tree import DataTree, Znode
from repro.zk.deployment import ZkDeployment, build_zk_deployment
from repro.zk.errors import (
    ApiError,
    BadVersionError,
    ConnectionLossError,
    NoChildrenForEphemeralsError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
    SessionExpiredError,
    ZkError,
)
from repro.zk.ops import (
    CheckVersionOp,
    CreateOp,
    DeleteOp,
    ExistsOp,
    GetChildrenOp,
    GetDataOp,
    MultiOp,
    SetDataOp,
    SyncOp,
    Txn,
    is_write_op,
    paths_touched,
)
from repro.zk.records import Stat, WatchEvent, WatchType
from repro.zk.server import ZkServer

__all__ = [
    "ApiError",
    "BadVersionError",
    "CheckVersionOp",
    "ConnectionLossError",
    "CreateOp",
    "DataTree",
    "DeleteOp",
    "ExistsOp",
    "GetChildrenOp",
    "GetDataOp",
    "MultiOp",
    "NoChildrenForEphemeralsError",
    "NoNodeError",
    "NodeExistsError",
    "NotEmptyError",
    "SessionExpiredError",
    "SetDataOp",
    "Stat",
    "SyncOp",
    "Txn",
    "WatchEvent",
    "WatchType",
    "ZkClient",
    "ZkDeployment",
    "ZkError",
    "ZkServer",
    "Znode",
    "build_zk_deployment",
    "is_write_op",
    "paths_touched",
]
