"""Synchronous ZooKeeper-style client for simulation processes.

Every operation returns a kernel :class:`~repro.sim.kernel.Event`; user
processes ``yield`` it to block until the reply arrives::

    def app(env, client):
        yield client.connect()
        path = yield client.create("/config", b"v1")
        data, stat = yield client.get_data("/config", watch=True)

Guarantees mirror ZooKeeper's client contract: one session, FIFO order of
the client's own requests (the client is synchronous: each call is issued
when the caller yields on it), linearizable writes via the ensemble, and
possibly-stale local reads. Failures surface as exceptions raised at the
``yield``: :class:`ApiError` subclasses for replicated outcomes,
:class:`ConnectionLossError` on request timeout,
:class:`SessionExpiredError` when the session is gone.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.topology import NodeAddress
from repro.net.transport import Network
from repro.sim.kernel import Environment, Event, Interrupt
from repro.sim.store import StoreClosed
from repro.zk.errors import (
    ConnectionLossError,
    SessionExpiredError,
    error_from_code,
)
from repro.zk.ops import (
    CheckVersionOp,
    CloseSessionOp,
    CreateOp,
    DeleteOp,
    ExistsOp,
    GetChildrenOp,
    GetDataOp,
    MultiOp,
    SetDataOp,
    SyncOp,
)
from repro.zk.protocol import (
    ConnectReply,
    ConnectRequest,
    HeartbeatAck,
    OpReply,
    OpRequest,
    SessionExpiredNotice,
    SessionHeartbeat,
    WatchNotify,
)
from repro.zk.records import WatchEvent
from repro.zk.server import SESSION_EXPIRED_CODE

__all__ = ["ZkClient"]


class ZkClient:
    """A coordination-service client bound to one server."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        addr: NodeAddress,
        server_addr: NodeAddress,
        session_timeout_ms: float = 6000.0,
        request_timeout_ms: float = 10000.0,
        name: str = "",
    ):
        self.env = env
        self.net = net
        self.addr = addr
        self.server_addr = server_addr
        self.session_timeout_ms = session_timeout_ms
        self.request_timeout_ms = request_timeout_ms
        self.name = name or str(addr)

        self.inbox = net.register(addr)
        self.inbox.consume(self._on_envelope)
        self.session_id: Optional[str] = None
        self.expired = False

        self._cxid = 0
        self._pending: Dict[int, Event] = {}
        self._connect_event: Optional[Event] = None

        #: Watch events received, in arrival order.
        self.watch_events: List[WatchEvent] = []
        #: Optional user callback invoked per watch event.
        self.on_watch: Optional[Callable[[WatchEvent], None]] = None
        # (path filter or None, event) pairs waiting on the next watch.
        self._watch_waiters: List[tuple] = []

        # Metrics.
        self.ops_completed = 0
        self.ops_failed = 0
        self.retries_performed = 0
        # One bound method reused for every request-timeout guard.
        self._expire_cb = self._expire_request

        self._alive = True
        self._procs = [
            env.process(self._heartbeater(), name=f"{self.name}.hb"),
        ]

    # ------------------------------------------------------------------ API

    @property
    def connected(self) -> bool:
        return self.session_id is not None and not self.expired

    def connect(self) -> Event:
        """Open a session with the bound server."""
        event = Event(self.env)
        if self._connect_event is not None and not self._connect_event.triggered:
            raise RuntimeError(f"{self.name}: connect already in flight")
        self._connect_event = event
        self.net.send(
            self.addr,
            self.server_addr,
            ConnectRequest(self.addr, self.session_timeout_ms),
        )
        self._watch_timeout(event, what="connect")
        return event

    def reconnect(self, server_addr: NodeAddress) -> Event:
        """Bind to a different server and open a fresh session.

        Unlike ZooKeeper session re-establishment, this creates a *new*
        session (old ephemerals die with the old session's timeout).
        """
        self.server_addr = server_addr
        self.session_id = None
        self.expired = False
        return self.connect()

    # -- operations --------------------------------------------------------

    def create(
        self,
        path: str,
        data: bytes = b"",
        ephemeral: bool = False,
        sequential: bool = False,
    ) -> Event:
        """Create a znode; resolves to the actual (sequence-expanded) path."""
        return self._submit(CreateOp(path, data, ephemeral, sequential))

    def delete(self, path: str, version: int = -1) -> Event:
        """Delete a znode (version -1 = unconditional)."""
        return self._submit(DeleteOp(path, version))

    def set_data(self, path: str, data: bytes, version: int = -1) -> Event:
        """Overwrite a znode's data; resolves to the new Stat."""
        return self._submit(SetDataOp(path, data, version))

    def get_data(self, path: str, watch: bool = False) -> Event:
        """Read a znode; resolves to ``(data, stat)``."""
        return self._submit(GetDataOp(path, watch))

    def exists(self, path: str, watch: bool = False) -> Event:
        """Resolves to the node's Stat, or None if it doesn't exist."""
        return self._submit(ExistsOp(path, watch))

    def get_children(self, path: str, watch: bool = False) -> Event:
        """Resolves to the sorted list of child names."""
        return self._submit(GetChildrenOp(path, watch))

    def multi(self, ops) -> Event:
        """Atomic batch of write ops; resolves to a list of results."""
        return self._submit(MultiOp(tuple(ops)))

    def check_version(self, path: str, version: int) -> CheckVersionOp:
        """Build a version-check op for use inside :meth:`multi`."""
        return CheckVersionOp(path, version)

    def sync(self, path: str = "/") -> Event:
        """Flush the commit pipeline to this client's server."""
        return self._submit(SyncOp(path))

    def close(self) -> Event:
        """Explicitly close the session (deletes ephemerals)."""
        if self.session_id is None:
            raise RuntimeError(f"{self.name}: not connected")
        event = self._submit(CloseSessionOp(self.session_id))
        return event

    # -- retrying operations ------------------------------------------------
    #
    # Each logical operation gets ONE cxid, reused verbatim across every
    # retry. The server's reply cache keys on (session_id, cxid), so a
    # timed-out-but-committed write is recognized as a retry and answered
    # from the cache instead of being applied a second time. Retrying with
    # a fresh cxid (as a naive loop around set_data() would) silently
    # double-applies under loss.

    def submit_retrying(
        self,
        op: Any,
        max_retries: int = 6,
        backoff_ms: float = 250.0,
    ) -> Event:
        """Submit ``op`` under a stable cxid, retrying on connection loss.

        Backoff doubles per attempt (capped); replicated failures (ApiError,
        session expiry) are not retried — they are definitive outcomes.
        """
        cxid = self._next_cxid()
        result = Event(self.env)
        self.env.process(
            self._retry_driver(op, cxid, result, max_retries, backoff_ms),
            name=f"{self.name}.retry",
        )
        return result

    def _retry_driver(
        self,
        op: Any,
        cxid: int,
        result: Event,
        max_retries: int,
        backoff_ms: float,
    ):
        delay = backoff_ms
        attempt = 0
        while True:
            try:
                value = yield self._submit_with_cxid(op, cxid)
            except ConnectionLossError as exc:
                attempt += 1
                if attempt > max_retries:
                    if not result.triggered:
                        result.fail(exc)
                    return
                self.retries_performed += 1
                try:
                    yield self.env.timeout(delay)
                except Interrupt:
                    return
                delay = min(delay * 2.0, 4000.0)
                if self.expired or self.session_id is None:
                    if not result.triggered:
                        result.fail(SessionExpiredError(self.name))
                    return
                continue
            except Exception as exc:  # definitive replicated outcome
                if not result.triggered:
                    result.fail(exc)
                return
            if not result.triggered:
                result.succeed(value)
            return

    def create_retrying(
        self,
        path: str,
        data: bytes = b"",
        ephemeral: bool = False,
        sequential: bool = False,
        max_retries: int = 6,
        backoff_ms: float = 250.0,
    ) -> Event:
        return self.submit_retrying(
            CreateOp(path, data, ephemeral, sequential), max_retries, backoff_ms
        )

    def delete_retrying(
        self, path: str, version: int = -1,
        max_retries: int = 6, backoff_ms: float = 250.0,
    ) -> Event:
        return self.submit_retrying(DeleteOp(path, version), max_retries, backoff_ms)

    def set_data_retrying(
        self, path: str, data: bytes, version: int = -1,
        max_retries: int = 6, backoff_ms: float = 250.0,
    ) -> Event:
        return self.submit_retrying(
            SetDataOp(path, data, version), max_retries, backoff_ms
        )

    def get_data_retrying(
        self, path: str, watch: bool = False,
        max_retries: int = 6, backoff_ms: float = 250.0,
    ) -> Event:
        return self.submit_retrying(GetDataOp(path, watch), max_retries, backoff_ms)

    def connect_retrying(
        self, max_retries: int = 6, backoff_ms: float = 250.0
    ) -> Event:
        """Connect, retrying lost requests/replies with backoff.

        Safe because the server answers a retried ConnectRequest with the
        already-created session instead of minting a second one.
        """
        result = Event(self.env)

        def driver():
            delay = backoff_ms
            attempt = 0
            while True:
                try:
                    session_id = yield self.connect()
                except ConnectionLossError as exc:
                    attempt += 1
                    if attempt > max_retries:
                        if not result.triggered:
                            result.fail(exc)
                        return
                    self.retries_performed += 1
                    try:
                        yield self.env.timeout(delay)
                    except Interrupt:
                        return
                    delay = min(delay * 2.0, 4000.0)
                    continue
                if not result.triggered:
                    result.succeed(session_id)
                return

        self.env.process(driver(), name=f"{self.name}.connect-retry")
        return result

    def wait_watch(self, path: Optional[str] = None) -> Event:
        """Event that fires on the next watch notification (for ``path``).

        Pair with a ``watch=True`` read: register the watch first, then
        yield this to block until it fires. Fires with the WatchEvent.
        """
        event = Event(self.env)
        self._watch_waiters.append((path, event))
        return event

    # ----------------------------------------------------------------- guts

    def _next_cxid(self) -> int:
        if self.expired:
            raise SessionExpiredError(self.name)
        if self.session_id is None:
            raise RuntimeError(f"{self.name}: not connected")
        self._cxid += 1
        return self._cxid

    def _submit(self, op: Any) -> Event:
        return self._submit_with_cxid(op, self._next_cxid())

    def _submit_with_cxid(self, op: Any, cxid: int) -> Event:
        event = Event(self.env)
        self._pending[cxid] = event
        self.net.send(
            self.addr,
            self.server_addr,
            OpRequest(self.session_id, cxid, op),
        )
        self._watch_timeout(event, cxid=cxid, what=type(op).__name__)
        return event

    def _watch_timeout(
        self, event: Event, cxid: Optional[int] = None, what: str = ""
    ) -> None:
        # Fire-and-forget guard scheduled as a bare callback — one heap
        # entry instead of a Process per request. call_in cannot be
        # cancelled, so the callback detects staleness itself.
        self.env.call_in(
            self.request_timeout_ms, self._expire_cb, (event, cxid, what)
        )

    def _expire_request(self, args: Tuple[Event, Optional[int], str]) -> None:
        event, cxid, what = args
        if event.triggered:
            return
        if cxid is not None:
            self._pending.pop(cxid, None)
        self.ops_failed += 1
        event.fail(
            ConnectionLossError(
                f"{self.name}: {what} timed out after "
                f"{self.request_timeout_ms} ms"
            )
        )

    def _on_envelope(self, envelope) -> None:
        # Inbox consumer: replaces the old _pump process.
        if self._alive:
            self._on_message(envelope.body)

    def _on_message(self, msg: Any) -> None:
        # OpReply first: op replies dwarf every other message kind.
        if isinstance(msg, OpReply):
            self._on_reply(msg)
        elif isinstance(msg, ConnectReply):
            self.session_id = msg.session_id
            self.expired = False
            if self._connect_event is not None and not self._connect_event.triggered:
                self._connect_event.succeed(msg.session_id)
        elif isinstance(msg, WatchNotify):
            self.watch_events.append(msg.event)
            if self.on_watch is not None:
                self.on_watch(msg.event)
            waiters, self._watch_waiters = self._watch_waiters, []
            for path, event in waiters:
                if event.triggered:
                    continue
                if path is None or path == msg.event.path:
                    event.succeed(msg.event)
                else:
                    self._watch_waiters.append((path, event))
        elif isinstance(msg, HeartbeatAck):
            pass
        elif isinstance(msg, SessionExpiredNotice):
            # Only our *current* session matters; notices for sessions we
            # abandoned (reconnect created a fresh one) are stale.
            if msg.session_id == self.session_id:
                self._on_expired()
        else:
            raise ValueError(f"{self.name}: unexpected message {msg!r}")

    def _on_reply(self, msg: OpReply) -> None:
        event = self._pending.pop(msg.cxid, None)
        if event is None or event.triggered:
            return  # reply raced with our timeout; drop it
        if msg.ok:
            self.ops_completed += 1
            event.succeed(msg.value)
        elif msg.error_code == SESSION_EXPIRED_CODE:
            self.ops_failed += 1
            self._on_expired(pending_event=event)
        else:
            self.ops_failed += 1
            event.fail(error_from_code(msg.error_code or "", msg.error_path))

    def _on_expired(self, pending_event: Optional[Event] = None) -> None:
        self.expired = True
        exc = SessionExpiredError(self.name)
        if pending_event is not None and not pending_event.triggered:
            pending_event.fail(exc)
        pending, self._pending = self._pending, {}
        for event in pending.values():
            if not event.triggered:
                event.fail(SessionExpiredError(self.name))

    def _heartbeater(self):
        interval = self.session_timeout_ms / 3.0
        while self._alive:
            try:
                yield self.env.sleep(interval)
            except Interrupt:
                return
            if self.session_id is not None and not self.expired:
                self.net.send(
                    self.addr,
                    self.server_addr,
                    SessionHeartbeat(self.session_id),
                )

    def stop(self) -> None:
        """Tear the client down (no more heartbeats; session will expire)."""
        self._alive = False
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("client stopped")
        self._procs = []
