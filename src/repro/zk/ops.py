"""Client operations and the replicated transaction envelope.

Write operations travel through atomic broadcast as :class:`Txn` envelopes
and are applied deterministically by every replica — including deterministic
error outcomes and sequential-name assignment, so all trees stay identical.
Read operations never enter the broadcast; servers answer them from their
local tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Set, Tuple, Union

from repro.zk.paths import parent_of, validate_path

__all__ = [
    "CheckVersionOp",
    "CloseSessionOp",
    "CreateOp",
    "DeleteOp",
    "ExistsOp",
    "GetChildrenOp",
    "GetDataOp",
    "MultiOp",
    "Op",
    "SetDataOp",
    "SyncOp",
    "Txn",
    "is_write_op",
    "paths_touched",
]


# -- write ops ---------------------------------------------------------------


@dataclass(frozen=True)
class CreateOp:
    path: str
    data: bytes = b""
    ephemeral: bool = False
    sequential: bool = False

    def __post_init__(self) -> None:
        validate_path(self.path)
        if self.path == "/":
            raise ValueError("cannot create the root node")


@dataclass(frozen=True)
class DeleteOp:
    path: str
    version: int = -1

    def __post_init__(self) -> None:
        validate_path(self.path)
        if self.path == "/":
            raise ValueError("cannot delete the root node")


@dataclass(frozen=True)
class SetDataOp:
    path: str
    data: bytes = b""
    version: int = -1

    def __post_init__(self) -> None:
        validate_path(self.path)


@dataclass(frozen=True)
class CheckVersionOp:
    """Precondition op for multi(): fail unless version matches."""

    path: str
    version: int

    def __post_init__(self) -> None:
        validate_path(self.path)


@dataclass(frozen=True)
class MultiOp:
    """All-or-nothing transaction over multiple write ops."""

    ops: Tuple[Union[CreateOp, DeleteOp, SetDataOp, CheckVersionOp], ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("multi() requires at least one op")
        for op in self.ops:
            if not isinstance(op, (CreateOp, DeleteOp, SetDataOp, CheckVersionOp)):
                raise ValueError(f"multi() cannot contain {type(op).__name__}")


@dataclass(frozen=True)
class SyncOp:
    """Flush: complete once all prior commits are visible at the server.

    Modelled as a no-op write through the broadcast pipeline, which is a
    conservative (slower) approximation of ZooKeeper's sync.
    """

    path: str = "/"


@dataclass(frozen=True)
class CloseSessionOp:
    """Internal: expire a session and delete its ephemerals.

    With ``paths`` unset, applying scans the local tree for the session's
    ephemerals (single-ensemble ZooKeeper behaviour). WanKeeper's level-2
    broker pins the explicit path list at serialization time so that every
    site deletes exactly the same nodes regardless of replication races;
    stragglers are garbage-collected by a follow-up close.
    """

    session_id: str
    paths: Optional[Tuple[str, ...]] = None


# -- read ops ----------------------------------------------------------------


@dataclass(frozen=True)
class GetDataOp:
    path: str
    watch: bool = False

    def __post_init__(self) -> None:
        validate_path(self.path)


@dataclass(frozen=True)
class ExistsOp:
    path: str
    watch: bool = False

    def __post_init__(self) -> None:
        validate_path(self.path)


@dataclass(frozen=True)
class GetChildrenOp:
    path: str
    watch: bool = False

    def __post_init__(self) -> None:
        validate_path(self.path)


Op = Union[
    CreateOp,
    DeleteOp,
    SetDataOp,
    MultiOp,
    SyncOp,
    CloseSessionOp,
    GetDataOp,
    ExistsOp,
    GetChildrenOp,
    CheckVersionOp,
]

WRITE_OPS = (CreateOp, DeleteOp, SetDataOp, MultiOp, SyncOp, CloseSessionOp)
READ_OPS = (GetDataOp, ExistsOp, GetChildrenOp)


def is_write_op(op: Any) -> bool:
    """True if ``op`` must go through atomic broadcast."""
    return isinstance(op, WRITE_OPS)


def paths_touched(op: Any) -> Set[str]:
    """The znode paths a write op reads or modifies.

    This is the record set WanKeeper checks tokens for (a create also
    touches the parent, whose cversion/sequence it updates).
    """
    if isinstance(op, CreateOp):
        return {op.path, parent_of(op.path)}
    if isinstance(op, DeleteOp):
        return {op.path, parent_of(op.path)}
    if isinstance(op, (SetDataOp, CheckVersionOp)):
        return {op.path}
    if isinstance(op, MultiOp):
        result: Set[str] = set()
        for sub in op.ops:
            result |= paths_touched(sub)
        return result
    if isinstance(op, SyncOp):
        return set()
    if isinstance(op, CloseSessionOp):
        return set()
    if isinstance(op, READ_OPS):
        return {op.path}
    raise TypeError(f"not an op: {op!r}")


class Txn:
    """The replicated transaction envelope for one write op.

    ``origin`` is the address of the server that accepted the client request
    (it replies to the client once it applies the commit). ``session_id`` and
    ``cxid`` correlate the reply. WanKeeper wraps this envelope with token
    metadata; the tree only looks at ``op``.

    Hand-written ``__slots__`` class (one per write, shipped through every
    broadcast message); equality matches the frozen dataclass it replaces.
    """

    __slots__ = ("session_id", "cxid", "origin", "op", "origin_site", "wan_seq")

    def __init__(
        self,
        session_id: str,
        cxid: int,
        origin: Any,  # NodeAddress of the accepting server
        op: Op,
        # WanKeeper cross-site metadata (None for plain ZooKeeper).
        origin_site: Optional[str] = None,
        wan_seq: Optional[int] = None,
    ):
        object.__setattr__(self, "session_id", session_id)
        object.__setattr__(self, "cxid", cxid)
        object.__setattr__(self, "origin", origin)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "origin_site", origin_site)
        object.__setattr__(self, "wan_seq", wan_seq)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"Txn is immutable (tried to set {key!r})")

    def replace_op(self, op: Op) -> "Txn":
        """A copy of this txn carrying ``op`` instead of the original."""
        return Txn(
            self.session_id,
            self.cxid,
            self.origin,
            op,
            self.origin_site,
            self.wan_seq,
        )

    def _astuple(self) -> tuple:
        return (
            self.session_id,
            self.cxid,
            self.origin,
            self.op,
            self.origin_site,
            self.wan_seq,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Txn:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return (
            f"Txn(session_id={self.session_id!r}, cxid={self.cxid!r}, "
            f"origin={self.origin!r}, op={self.op!r}, "
            f"origin_site={self.origin_site!r}, wan_seq={self.wan_seq!r})"
        )
