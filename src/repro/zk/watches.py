"""Per-server watch bookkeeping.

Watches are one-shot and local to the server the client is connected to,
exactly as in ZooKeeper: a read with ``watch=True`` registers interest; the
first matching mutation the server applies fires (and removes) the watch.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.zk.records import WatchEvent, WatchType

__all__ = ["WatchManager"]

# Which watch tables a given event type consults.
_DATA_EVENTS = {
    WatchType.NODE_CREATED,
    WatchType.NODE_DELETED,
    WatchType.NODE_DATA_CHANGED,
}
_CHILD_EVENTS = {WatchType.NODE_DELETED, WatchType.NODE_CHILDREN_CHANGED}


class WatchManager:
    """Maps paths to watching sessions; pops watchers on trigger."""

    def __init__(self):
        self._data: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}

    def add_data_watch(self, path: str, session_id: str) -> None:
        """Register a data/exists watch for ``session_id`` on ``path``."""
        self._data.setdefault(path, set()).add(session_id)

    def add_child_watch(self, path: str, session_id: str) -> None:
        """Register a children watch for ``session_id`` on ``path``."""
        self._children.setdefault(path, set()).add(session_id)

    def trigger(self, event: WatchEvent) -> List[Tuple[str, WatchEvent]]:
        """Fire watches matching ``event``; returns (session, event) pairs."""
        fired: List[Tuple[str, WatchEvent]] = []
        if event.type in _DATA_EVENTS:
            for session_id in sorted(self._data.pop(event.path, ())):
                fired.append((session_id, event))
        if event.type in _CHILD_EVENTS:
            # NODE_DELETED fires child watches as NODE_DELETED on the node
            # itself (ZooKeeper semantics); CHILDREN_CHANGED fires as-is.
            for session_id in sorted(self._children.pop(event.path, ())):
                fired.append((session_id, event))
        return fired

    def drop_session(self, session_id: str) -> None:
        """Remove all watches held by a session (client gone)."""
        for table in (self._data, self._children):
            empty = []
            for path, sessions in table.items():
                sessions.discard(session_id)
                if not sessions:
                    empty.append(path)
            for path in empty:
                del table[path]

    def watch_count(self) -> int:
        return sum(len(s) for s in self._data.values()) + sum(
            len(s) for s in self._children.values()
        )
