"""Per-server watch bookkeeping.

Watches are one-shot and local to the server the client is connected to,
exactly as in ZooKeeper: a read with ``watch=True`` registers interest; the
first matching mutation the server applies fires (and removes) the watch.

The manager keeps a per-session reverse index next to the per-path tables
so session teardown is proportional to *that session's* watches, not to
every watched path on the server; the two structures are kept in lockstep
by ``add_*``/``trigger``/``drop_session``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.zk.records import WatchEvent, WatchType

__all__ = ["WatchManager"]

# Which watch tables a given event type consults.
_DATA_EVENTS = {
    WatchType.NODE_CREATED,
    WatchType.NODE_DELETED,
    WatchType.NODE_DATA_CHANGED,
}
_CHILD_EVENTS = {WatchType.NODE_DELETED, WatchType.NODE_CHILDREN_CHANGED}


class WatchManager:
    """Maps paths to watching sessions; pops watchers on trigger."""

    def __init__(self):
        self._data: Dict[str, Set[str]] = {}
        self._children: Dict[str, Set[str]] = {}
        # Reverse index: session -> paths it watches, per table.
        self._data_by_session: Dict[str, Set[str]] = {}
        self._children_by_session: Dict[str, Set[str]] = {}

    def add_data_watch(self, path: str, session_id: str) -> None:
        """Register a data/exists watch for ``session_id`` on ``path``."""
        self._data.setdefault(path, set()).add(session_id)
        self._data_by_session.setdefault(session_id, set()).add(path)

    def add_child_watch(self, path: str, session_id: str) -> None:
        """Register a children watch for ``session_id`` on ``path``."""
        self._children.setdefault(path, set()).add(session_id)
        self._children_by_session.setdefault(session_id, set()).add(path)

    def _pop_path(
        self,
        table: Dict[str, Set[str]],
        by_session: Dict[str, Set[str]],
        event: WatchEvent,
        fired: List[Tuple[str, WatchEvent]],
    ) -> None:
        sessions = table.pop(event.path, None)
        if not sessions:
            return
        path = event.path
        for session_id in sorted(sessions):
            watched = by_session.get(session_id)
            if watched is not None:
                watched.discard(path)
                if not watched:
                    del by_session[session_id]
            fired.append((session_id, event))

    def trigger(self, event: WatchEvent) -> List[Tuple[str, WatchEvent]]:
        """Fire watches matching ``event``; returns (session, event) pairs."""
        fired: List[Tuple[str, WatchEvent]] = []
        if event.type in _DATA_EVENTS and self._data:
            self._pop_path(self._data, self._data_by_session, event, fired)
        if event.type in _CHILD_EVENTS and self._children:
            # NODE_DELETED fires child watches as NODE_DELETED on the node
            # itself (ZooKeeper semantics); CHILDREN_CHANGED fires as-is.
            self._pop_path(
                self._children, self._children_by_session, event, fired
            )
        return fired

    def drop_session(self, session_id: str) -> None:
        """Remove all watches held by a session (client gone)."""
        for table, by_session in (
            (self._data, self._data_by_session),
            (self._children, self._children_by_session),
        ):
            watched = by_session.pop(session_id, None)
            if not watched:
                continue
            for path in sorted(watched):
                sessions = table.get(path)
                if sessions is not None:
                    sessions.discard(session_id)
                    if not sessions:
                        del table[path]

    def watch_count(self) -> int:
        return sum(len(s) for s in self._data.values()) + sum(
            len(s) for s in self._children.values()
        )
