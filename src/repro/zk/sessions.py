"""Per-server session tracking.

Sessions live at the server the client connected to (as in ZooKeeper, where
the session moves with the client connection). The server heartbeats each
session and, on expiry, submits a replicated ``CloseSessionOp`` that deletes
the session's ephemeral nodes everywhere.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Session", "SessionTracker"]


class Session:
    """One client session.

    ``timeout_ms`` is an *inclusive* bound: the session stays alive while
    ``now - last_heard <= timeout_ms``, so a heartbeat landing exactly at
    the timeout keeps it alive. Expiry requires strictly more than
    ``timeout_ms`` of silence.

    Hand-written ``__slots__`` class: ``last_heard``/``expired`` are
    touched on every client request and every ticker pass.
    """

    __slots__ = ("session_id", "client", "timeout_ms", "last_heard", "expired")

    def __init__(
        self,
        session_id: str,
        client: Any,  # NodeAddress
        timeout_ms: float,
        last_heard: float,
        expired: bool = False,
    ):
        self.session_id = session_id
        self.client = client
        self.timeout_ms = timeout_ms
        self.last_heard = last_heard
        self.expired = expired

    def _astuple(self) -> tuple:
        return (self.session_id, self.client, self.timeout_ms,
                self.last_heard, self.expired)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Session:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return (
            f"Session(session_id={self.session_id!r}, client={self.client!r}, "
            f"timeout_ms={self.timeout_ms!r}, last_heard={self.last_heard!r}, "
            f"expired={self.expired!r})"
        )


class SessionTracker:
    """Tracks live sessions at one server."""

    def __init__(self, owner_name: str):
        self.owner_name = owner_name
        self._sessions: Dict[str, Session] = {}
        self._counter = 0

    def create(self, client: Any, timeout_ms: float, now: float) -> Session:
        self._counter += 1
        session = Session(
            session_id=f"{self.owner_name}#{self._counter}",
            client=client,
            timeout_ms=timeout_ms,
            last_heard=now,
        )
        self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> Optional[Session]:
        return self._sessions.get(session_id)

    def find_by_client(self, client: Any) -> Optional[Session]:
        """The *newest* live session of ``client``, if one exists.

        Lets a retried ConnectRequest (reply lost on the wire) be answered
        idempotently instead of minting a second session. The scan order is
        pinned: ``_sessions`` preserves creation order, and the last match
        wins, so the answer is the most recently created live session —
        independent of how many stale entries precede it.
        """
        found = None
        for session in self._sessions.values():
            if session.client == client and not session.expired:
                found = session
        return found

    def touch(self, session_id: str, now: float) -> bool:
        """Record liveness; False if the session is unknown/expired."""
        session = self._sessions.get(session_id)
        if session is None or session.expired:
            return False
        session.last_heard = now
        return True

    def expired_sessions(self, now: float) -> List[Session]:
        """Sessions past their timeout (not yet marked expired).

        The bound is strict (``>``, matching :class:`Session`'s documented
        inclusive timeout): a session whose last heartbeat landed exactly
        ``timeout_ms`` ago is still alive.
        """
        if not self._sessions:
            return []
        return [
            session
            for session in self._sessions.values()
            if not session.expired and now - session.last_heard > session.timeout_ms
        ]

    def mark_expired(self, session_id: str) -> None:
        session = self._sessions.get(session_id)
        if session is not None:
            session.expired = True

    def remove(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    def live_session_ids(self) -> List[str]:
        return sorted(
            session_id
            for session_id, session in self._sessions.items()
            if not session.expired
        )

    def __len__(self) -> int:
        return len(self._sessions)
