"""Per-server session tracking.

Sessions live at the server the client connected to (as in ZooKeeper, where
the session moves with the client connection). The server heartbeats each
session and, on expiry, submits a replicated ``CloseSessionOp`` that deletes
the session's ephemeral nodes everywhere.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Session", "SessionTracker"]


class Session:
    """One client session.

    ``timeout_ms`` is an *inclusive* bound: the session stays alive while
    ``now - last_heard <= timeout_ms``, so a heartbeat landing exactly at
    the timeout keeps it alive. Expiry requires strictly more than
    ``timeout_ms`` of silence.

    Hand-written ``__slots__`` class: ``last_heard``/``expired`` are
    touched on every client request and every ticker pass.
    """

    __slots__ = ("session_id", "client", "timeout_ms", "last_heard", "expired")

    def __init__(
        self,
        session_id: str,
        client: Any,  # NodeAddress
        timeout_ms: float,
        last_heard: float,
        expired: bool = False,
    ):
        self.session_id = session_id
        self.client = client
        self.timeout_ms = timeout_ms
        self.last_heard = last_heard
        self.expired = expired

    def _astuple(self) -> tuple:
        return (self.session_id, self.client, self.timeout_ms,
                self.last_heard, self.expired)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Session:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return (
            f"Session(session_id={self.session_id!r}, client={self.client!r}, "
            f"timeout_ms={self.timeout_ms!r}, last_heard={self.last_heard!r}, "
            f"expired={self.expired!r})"
        )


class SessionTracker:
    """Tracks live sessions at one server."""

    def __init__(self, owner_name: str):
        self.owner_name = owner_name
        self._sessions: Dict[str, Session] = {}
        self._counter = 0
        # Lower bound on the earliest instant any tracked session can
        # expire. ``expired_sessions`` returns [] without scanning while
        # ``now`` hasn't reached it: ``touch`` only moves deadlines later,
        # so the bound stays valid between full scans. ``create`` lowers
        # it; each full scan re-tightens it. Makes the per-tick expiry
        # sweep O(1) with 10^4+ idle fleet sessions per server.
        self._next_deadline = float("inf")
        # client -> session_id of the *newest* session ever created for
        # that client. Entries are never deleted (one per unique client,
        # the same growth class as the session table), so a missing key
        # proves no session was ever created for that client and the
        # connect-dedup lookup stays O(1). Never iterated — lookups only —
        # so NodeAddress keys are hash-seed safe.
        self._by_client: Dict[Any, str] = {}
        # Cached live_ids_snapshot() tuple; invalidated whenever live
        # membership can change (create / mark_expired / remove).
        self._live_snapshot: Optional[tuple] = None

    def create(self, client: Any, timeout_ms: float, now: float) -> Session:
        self._counter += 1
        session = Session(
            session_id=f"{self.owner_name}#{self._counter}",
            client=client,
            timeout_ms=timeout_ms,
            last_heard=now,
        )
        self._sessions[session.session_id] = session
        self._by_client[client] = session.session_id
        self._live_snapshot = None
        deadline = now + timeout_ms
        if deadline < self._next_deadline:
            self._next_deadline = deadline
        return session

    def get(self, session_id: str) -> Optional[Session]:
        return self._sessions.get(session_id)

    def find_by_client(self, client: Any) -> Optional[Session]:
        """The *newest* live session of ``client``, if one exists.

        Lets a retried ConnectRequest (reply lost on the wire) be answered
        idempotently instead of minting a second session. The common case
        is one index lookup: ``_by_client`` points at the newest session
        created for the client, and a later ``create`` for the same client
        always overwrites the entry, so a live hit *is* the newest live
        session. Only when the indexed session has expired or been removed
        does the pinned creation-order scan (last live match wins) run —
        it can still surface an older live session the index skipped.
        """
        session_id = self._by_client.get(client)
        if session_id is None:
            return None
        session = self._sessions.get(session_id)
        if session is not None and not session.expired:
            return session
        found = None
        for candidate in self._sessions.values():
            if candidate.client == client and not candidate.expired:
                found = candidate
        return found

    def touch(self, session_id: str, now: float) -> bool:
        """Record liveness; False if the session is unknown/expired."""
        session = self._sessions.get(session_id)
        if session is None or session.expired:
            return False
        session.last_heard = now
        return True

    def expired_sessions(self, now: float) -> List[Session]:
        """Sessions past their timeout (not yet marked expired).

        The bound is strict (``>``, matching :class:`Session`'s documented
        inclusive timeout): a session whose last heartbeat landed exactly
        ``timeout_ms`` ago is still alive.

        Fast path: while ``now`` is at or before the cached
        ``_next_deadline`` lower bound, no session can have passed its
        (strict) timeout, so the scan is skipped entirely. A scan that does
        run re-tightens the bound from the sessions that stay live.
        """
        if not self._sessions or now <= self._next_deadline:
            return []
        due = []
        next_deadline = float("inf")
        for session in self._sessions.values():
            if session.expired:
                continue
            if now - session.last_heard > session.timeout_ms:
                due.append(session)
            # Overdue sessions keep contributing their (past) deadline to
            # the bound until the caller marks them expired, so a caller
            # that doesn't is re-told about them on every call, exactly as
            # the unconditional scan did.
            deadline = session.last_heard + session.timeout_ms
            if deadline < next_deadline:
                next_deadline = deadline
        self._next_deadline = next_deadline
        return due

    def mark_expired(self, session_id: str) -> None:
        session = self._sessions.get(session_id)
        if session is not None:
            session.expired = True
            self._live_snapshot = None

    def remove(self, session_id: str) -> None:
        if self._sessions.pop(session_id, None) is not None:
            self._live_snapshot = None

    def live_session_ids(self) -> List[str]:
        return sorted(
            session_id
            for session_id, session in self._sessions.items()
            if not session.expired
        )

    def live_ids_snapshot(self) -> tuple:
        """``tuple(live_session_ids())``, cached between membership changes.

        WanKeeper's site tick ships the live-session list to the hub every
        ``wan_tick_ms``; re-sorting 10^4 idle fleet sessions per tick
        dominated the ticker, while the set almost never changes. The
        cache is invalidated on create/expire/remove, so the value is
        always exactly what the uncached sort would produce.
        """
        snapshot = self._live_snapshot
        if snapshot is None:
            snapshot = tuple(self.live_session_ids())
            self._live_snapshot = snapshot
        return snapshot

    def __len__(self) -> int:
        return len(self._sessions)
