"""The coordination server: request-processor chain over a broadcast peer.

Each server owns two network endpoints (as ZooKeeper uses two ports): the
substrate peer's address for ensemble traffic and a client address for
sessions. The broadcast layer underneath is pluggable (see
:mod:`repro.substrate`): Zab by default, WPaxos as the multileader
alternative — the server only ever talks to the peer contract
(``submit``/``forward_submit``/``on_commit``/leadership properties).
The request path mirrors ZooKeeper's processor chain:

* reads  — served from the local tree after a small processing delay
  (possibly stale on followers/observers, as in ZooKeeper);
* writes — wrapped into a :class:`~repro.zk.ops.Txn` and handed to atomic
  broadcast (leader proposes; follower/observer forwards to the leader); the
  *origin* server replies to its client once it applies the commit locally.

WanKeeper's level-1 broker extends this class and overrides the write path
(:meth:`_route_write`) with the token check (paper Fig. 3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.net.topology import NodeAddress
from repro.net.transport import Network
from repro.sim.kernel import Environment, Interrupt
from repro.sim.store import StoreClosed
from repro.substrate import create_peer
from repro.zab.config import EnsembleConfig
from repro.zab.peer import PeerState
from repro.zab.zxid import Zxid
from repro.zk.data_tree import ApplyOutcome, DataTree
from repro.zk.ops import (
    CloseSessionOp,
    ExistsOp,
    GetChildrenOp,
    GetDataOp,
    Txn,
    is_write_op,
)
from repro.zk.protocol import (
    ConnectReply,
    ConnectRequest,
    HeartbeatAck,
    OpReply,
    OpRequest,
    SessionExpiredNotice,
    SessionHeartbeat,
    WatchNotify,
)
from repro.zk.sessions import SessionTracker
from repro.zk.watches import WatchManager

__all__ = ["ZkServer"]

SESSION_EXPIRED_CODE = "session_expired"

#: How many (session_id, cxid) -> reply entries each replica retains for
#: at-most-once suppression. Evicted entries re-open the (remote) window
#: for a duplicate of a very old retry, as in ZooKeeper's bounded
#: committed-log window.
REPLY_CACHE_LIMIT = 8192

#: Cap on the at-most-once test probe ``apply_counts``. The probe only has
#: to witness duplicate applies within the reply-cache suppression window,
#: so retaining more history than the reply cache itself buys nothing —
#: but leaving it unbounded made replica memory grow with total committed
#: writes, which the long fleet runs can't afford.
APPLY_COUNT_LIMIT = 2 * REPLY_CACHE_LIMIT


class ZkServer:
    """One coordination server (voter or observer) plus its client port."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        zab_addr: NodeAddress,
        client_addr: NodeAddress,
        config: EnsembleConfig,
        name: str = "",
        substrate: str = "zab",
    ):
        if zab_addr.site != client_addr.site:
            raise ValueError("zab and client endpoints must share a site")
        self.env = env
        self.net = net
        self.config = config
        self.name = name or str(client_addr)
        self.site = client_addr.site
        self.client_addr = client_addr
        self.substrate = substrate

        self.peer = create_peer(
            substrate, env, net, zab_addr, config,
            name=f"{self.name}.{substrate}",
        )
        self.peer.on_commit = self._on_commit
        self.peer.on_reset = self._on_tree_reset

        self.client_inbox = net.register(client_addr)
        self.client_inbox.consume(self._on_client_envelope)
        self.tree = DataTree()
        self.watches = WatchManager()
        # Session ids must stay unique across server incarnations (as in
        # ZooKeeper, where the id embeds the server epoch): the reply cache
        # is rebuilt from the replayed durable log after a restart, so a
        # reborn "owner#1" session would inherit the pre-crash session's
        # cached replies and have its first writes acked without applying.
        self._incarnation = 0
        self.sessions = SessionTracker(self._session_owner())

        # (session_id, cxid) -> client NodeAddress awaiting a commit reply.
        self._pending_writes: Dict[Tuple[str, int], NodeAddress] = {}
        # Clients that connected before this server could serve.
        self._deferred_connects: list = []
        # Write txns accepted while no leader was known; retried on tick.
        self._unrouted_txns: list = []
        self._system_cxid = 0
        # One bound method reused for every scheduled read completion.
        self._serve_read_cb = self._serve_read

        # At-most-once machinery. The reply cache maps (session_id, cxid)
        # to the reply of the *first* commit of that request; it is rebuilt
        # deterministically from the commit stream on every replica, so a
        # duplicated or retried request that committed already is answered
        # from the cache and never re-applied. Disable only to demonstrate
        # the double-apply failure mode in tests.
        self.reply_cache_enabled = True
        self._reply_cache: "OrderedDict[Tuple[str, int], OpReply]" = OrderedDict()
        #: Test probe: how many times each (session_id, cxid) reached the
        #: tree on this replica; at-most-once means every count is 1.
        #: Bounded at APPLY_COUNT_LIMIT entries (insertion-order eviction)
        #: so it can't grow with total commits over a long fleet run.
        self.apply_counts: Dict[Tuple[str, int], int] = {}
        # Writes this server routed whose commit has not yet arrived;
        # re-routed on the session ticker when overdue (a lost forward or a
        # fallen leader), relying on downstream duplicate suppression.
        self._inflight_txns: Dict[Tuple[str, int], Tuple[Txn, float]] = {}
        # Sessions with a CloseSessionOp in flight (client-initiated or
        # expiry-initiated): the expiry path must not submit a second close
        # while the first one is still working through the broadcast layer.
        self._closing: set = set()

        # Observability (repro.trace / repro.invariants); None keeps every
        # instrumentation point a single-branch no-op.
        self._trace = None
        self.sentinel = None

        # Metrics.
        self.reads_served = 0
        self.writes_accepted = 0
        self.commits_applied = 0
        self.replies_from_cache = 0
        self.duplicate_commits_suppressed = 0

        self._alive = False
        self._procs = []

    # ------------------------------------------------------------------ API

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ZkServer {self.name} {self.peer.state.value}>"

    @property
    def is_leader(self) -> bool:
        return self.peer.is_leader

    @property
    def is_alive(self) -> bool:
        return self._alive

    @property
    def state(self) -> PeerState:
        return self.peer.state

    def start(self) -> None:
        if self._alive:
            raise RuntimeError(f"{self.name} already started")
        self._alive = True
        self.peer.start()
        self._procs = [
            self.env.process(self._session_ticker(), name=f"{self.name}.sessions"),
        ]

    def crash(self) -> None:
        if not self._alive:
            return
        self._alive = False
        self.peer.crash()
        self.net.crash(self.client_addr)
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("crash")
        self._procs = []

    def _session_owner(self) -> str:
        # Incarnation 0 keeps the historical "addr#N" id shape; restarts
        # get a distinct namespace so ids never collide across crashes.
        if self._incarnation == 0:
            return str(self.client_addr)
        return f"{self.client_addr}+r{self._incarnation}"

    def restart(self) -> None:
        if self._alive:
            raise RuntimeError(f"{self.name} is running")
        self.net.restart(self.client_addr)
        # Volatile server state is gone; the tree is rebuilt by re-applying
        # the durable log from zero as the peer rejoins.
        self.tree = DataTree()
        self.watches = WatchManager()
        self._incarnation += 1
        self.sessions = SessionTracker(self._session_owner())
        self._pending_writes = {}
        # Rebuilt from the replayed log as commits re-apply from zero.
        self._reply_cache = OrderedDict()
        self.apply_counts = {}
        self._inflight_txns = {}
        self._closing = set()
        if self.sentinel is not None:
            self.sentinel.on_replica_reset(self)
        self.peer.restart()
        self._alive = True
        self._procs = [
            self.env.process(self._session_ticker(), name=f"{self.name}.sessions"),
        ]

    # ----------------------------------------------------------- client loop

    def _on_client_envelope(self, envelope) -> None:
        # Inbox consumer: replaces the old _client_loop pump process.
        if self._alive:
            self._on_client_message(envelope.src, envelope.body)

    def _on_client_message(self, src: NodeAddress, msg: Any) -> None:
        # OpRequest first: reads/writes dwarf connects and heartbeats.
        if isinstance(msg, OpRequest):
            self._handle_op(src, msg)
        elif isinstance(msg, ConnectRequest):
            self._handle_connect(src, msg)
        elif isinstance(msg, SessionHeartbeat):
            self._handle_heartbeat(src, msg)
        else:
            raise ValueError(f"{self.name}: unexpected client message {msg!r}")

    @property
    def is_serving(self) -> bool:
        """True once this server is synced into an active ensemble."""
        if self.peer.is_leader:
            return True
        return (
            self.peer.leader_addr is not None
            and self.peer.current_epoch > 0
            and self.peer.state in (PeerState.FOLLOWING, PeerState.OBSERVING)
        )

    def _handle_connect(self, src: NodeAddress, msg: ConnectRequest) -> None:
        if not self.is_serving:
            # ZooKeeper servers refuse clients until synced; we queue the
            # request and answer once the ensemble is ready.
            self._deferred_connects.append((src, msg))
            return
        # Idempotent: a retried ConnectRequest (the reply was lost) must
        # not create a second session, or the first one leaks and expires.
        session = self.sessions.find_by_client(msg.client)
        if session is None:
            session = self.sessions.create(msg.client, msg.timeout_ms, self.env.now)
            if self._trace is not None:
                self._trace.emit(self.env.now, "zk", "session-create",
                                 self.name, {"session": session.session_id})
        else:
            session.last_heard = self.env.now
        self.net.send(
            self.client_addr,
            src,
            ConnectReply(session.session_id, msg.timeout_ms),
        )

    def _handle_heartbeat(self, src: NodeAddress, msg: SessionHeartbeat) -> None:
        if self.sessions.touch(msg.session_id, self.env.now):
            self.net.send(self.client_addr, src, HeartbeatAck(msg.session_id))
        else:
            self.net.send(
                self.client_addr, src, SessionExpiredNotice(msg.session_id)
            )

    def _handle_op(self, src: NodeAddress, msg: OpRequest) -> None:
        session = self.sessions.get(msg.session_id)
        if session is None or session.expired:
            self.net.send(
                self.client_addr,
                src,
                OpReply(msg.session_id, msg.cxid, ok=False,
                        error_code=SESSION_EXPIRED_CODE),
            )
            return
        session.last_heard = self.env.now
        if is_write_op(msg.op):
            self._accept_write(src, msg)
        else:
            # A bare scheduled callback, not a Process per read: reads are
            # the overwhelming majority of traffic and need no generator.
            self.env.call_in(self._read_delay_ms(), self._serve_read_cb, (src, msg))

    # ---------------------------------------------------------------- reads

    def _read_delay_ms(self) -> float:
        """Simulated local processing time of a read (subclasses add to it)."""
        return self.config.processing_delay_ms

    def _serve_read(self, args: Tuple[NodeAddress, OpRequest]) -> None:
        src, msg = args
        if not self._alive:
            return
        self._handle_read(src, msg)

    def _handle_read(self, src: NodeAddress, msg: OpRequest) -> None:
        """Answer a read once its processing delay has elapsed (overridable)."""
        self._read_reply(src, msg)

    def _read_reply(self, src: NodeAddress, msg: OpRequest) -> None:
        """Answer a read from the local tree (synchronous)."""
        self.reads_served += 1
        op = msg.op
        try:
            if isinstance(op, GetDataOp):
                data, stat = self.tree.get_data(op.path)
                if op.watch:
                    self.watches.add_data_watch(op.path, msg.session_id)
                value: Any = (data, stat)
            elif isinstance(op, ExistsOp):
                stat = self.tree.exists(op.path)
                if op.watch:
                    self.watches.add_data_watch(op.path, msg.session_id)
                value = stat
            elif isinstance(op, GetChildrenOp):
                value = self.tree.get_children(op.path)
                if op.watch:
                    self.watches.add_child_watch(op.path, msg.session_id)
            else:
                raise TypeError(f"not a read op: {op!r}")
        except Exception as exc:  # ApiError (NoNode) — replicate as code
            code = getattr(exc, "code", None)
            if code is None:
                raise
            self.net.send(
                self.client_addr,
                src,
                OpReply(
                    msg.session_id,
                    msg.cxid,
                    ok=False,
                    error_code=code,
                    error_path=getattr(exc, "path", ""),
                ),
            )
            return
        self.net.send(
            self.client_addr,
            src,
            OpReply(msg.session_id, msg.cxid, ok=True, value=value),
        )

    # ---------------------------------------------------------------- writes

    def _accept_write(self, src: NodeAddress, msg: OpRequest) -> None:
        key = (msg.session_id, msg.cxid)
        if self.reply_cache_enabled:
            cached = self._reply_cache.get(key)
            if cached is not None:
                # A retry of a request that already committed: at-most-once
                # — answer from the cache, never re-apply.
                self.replies_from_cache += 1
                self.net.send(self.client_addr, src, cached)
                return
            if key in self._pending_writes:
                # Retry of an in-flight write: refresh the reply target;
                # the inflight retransmitter re-routes if the first
                # forward died on the wire.
                self._pending_writes[key] = src
                return
        self.writes_accepted += 1
        self._pending_writes[key] = src
        if isinstance(msg.op, CloseSessionOp):
            # An expiry firing while this client-initiated close is in
            # flight must not submit a second CloseSessionOp.
            self._closing.add(msg.op.session_id)
        txn = Txn(
            session_id=msg.session_id,
            cxid=msg.cxid,
            origin=self.client_addr,
            op=msg.op,
            origin_site=self.site,
        )
        if self.reply_cache_enabled:
            self._inflight_txns[key] = (txn, self.env.now)
        self._route_write(txn)

    def _route_write(self, txn: Txn) -> None:
        """Hand a write txn to the broadcast layer.

        Overridden by WanKeeper's level-1 broker with the token check.
        """
        self._broadcast_or_forward(txn)

    def _broadcast_or_forward(self, txn: Txn) -> None:
        if self.peer.is_leader:
            self.peer.submit(txn)
        elif self.is_serving:
            self.peer.forward_submit(txn)
        else:
            # No leader known yet: park the txn and retry on the next tick.
            self._unrouted_txns.append(txn)

    def submit_system_txn(self, op: Any) -> None:
        """Submit a server-originated txn (session expiry etc.)."""
        self._system_cxid += 1
        txn = Txn(
            session_id=f"__system__:{self.name}",
            cxid=self._system_cxid,
            origin=self.client_addr,
            op=op,
            origin_site=self.site,
        )
        if self.reply_cache_enabled:
            # System txns have no client to retry them; the inflight
            # retransmitter is their only recovery from a lost forward.
            self._inflight_txns[(txn.session_id, txn.cxid)] = (txn, self.env.now)
        self._route_write(txn)

    # ---------------------------------------------------------------- commits

    def _on_commit(self, zxid: Zxid, txn: Txn) -> None:
        self._commit_client_txn(zxid, txn)

    def _commit_client_txn(self, zxid: Zxid, txn: Txn) -> Optional[ApplyOutcome]:
        """Apply one committed client txn: tree, watches, client reply.

        At-most-once: a second commit of the same (session_id, cxid) — a
        retried request whose first attempt committed after all — is
        suppressed here, strictly at the apply layer, so callers above
        (WanKeeper token/stream bookkeeping) still see every commit.
        Returns None for a suppressed duplicate.
        """
        key = (txn.session_id, txn.cxid)
        self._inflight_txns.pop(key, None)
        if self.reply_cache_enabled:
            cached = self._reply_cache.get(key)
            if cached is not None:
                self.duplicate_commits_suppressed += 1
                if self._trace is not None:
                    self._trace.emit(self.env.now, "zk", "dup-suppressed",
                                     self.name,
                                     {"session": txn.session_id,
                                      "cxid": txn.cxid})
                client = self._pending_writes.pop(key, None)
                if client is not None:
                    self.net.send(self.client_addr, client, cached)
                return None
        if isinstance(txn.op, CloseSessionOp):
            self._closing.discard(txn.op.session_id)
            # If the closed session is hosted here, retire it *before*
            # firing the deletion watches below: real ZooKeeper severs the
            # dying session first, so it never receives notifications for
            # its own ephemeral deletions.
            if self.sessions.get(txn.op.session_id) is not None:
                self.sessions.mark_expired(txn.op.session_id)
                self.watches.drop_session(txn.op.session_id)
                if self._trace is not None:
                    self._trace.emit(self.env.now, "zk", "session-close",
                                     self.name,
                                     {"session": txn.op.session_id})
        outcome = self._apply_txn(zxid, txn)
        counts = self.apply_counts
        counts[key] = counts.get(key, 0) + 1
        if len(counts) > APPLY_COUNT_LIMIT:
            # Insertion-order eviction (oldest first), like the reply cache.
            del counts[next(iter(counts))]
        if self._trace is not None:
            self._trace.emit(self.env.now, "zk", "apply", self.name,
                             {"session": txn.session_id, "cxid": txn.cxid,
                              "op": type(txn.op).__name__,
                              "ok": outcome.ok})
        self._fire_watches(outcome)
        reply = self._build_reply(txn, outcome)
        if self.sentinel is not None:
            self.sentinel.on_apply(self, txn, reply)
        if self.reply_cache_enabled:
            self._reply_cache[key] = reply
            while len(self._reply_cache) > REPLY_CACHE_LIMIT:
                self._reply_cache.popitem(last=False)
        self._maybe_reply(txn, reply)
        return outcome

    def _apply_txn(self, zxid: Zxid, txn: Txn) -> ApplyOutcome:
        self.commits_applied += 1
        return self.tree.apply(txn.op, zxid, txn.session_id)

    def _fire_watches(self, outcome: ApplyOutcome) -> None:
        events = outcome.events
        if not events:
            return
        trigger = self.watches.trigger
        for event in events:
            for session_id, fired in trigger(event):
                session = self.sessions.get(session_id)
                if session is not None and not session.expired:
                    if self._trace is not None:
                        self._trace.emit(self.env.now, "zk", "watch-fire",
                                         self.name,
                                         {"session": session_id,
                                          "path": fired.path,
                                          "type": fired.type.name})
                    self.net.send(
                        self.client_addr,
                        session.client,
                        WatchNotify(session_id, fired),
                    )

    @staticmethod
    def _build_reply(txn: Txn, outcome: ApplyOutcome) -> OpReply:
        if outcome.ok:
            return OpReply(txn.session_id, txn.cxid, ok=True, value=outcome.value)
        assert outcome.error is not None
        return OpReply(
            txn.session_id,
            txn.cxid,
            ok=False,
            error_code=outcome.error.code,
            error_path=outcome.error.path,
        )

    def _maybe_reply(self, txn: Txn, reply: OpReply) -> None:
        if txn.origin != self.client_addr:
            return
        key = (txn.session_id, txn.cxid)
        client = self._pending_writes.pop(key, None)
        if client is None:
            return  # system txn or a retry the client abandoned
        self.net.send(self.client_addr, client, reply)

    def _on_tree_reset(self, _peer: Any) -> None:
        """SNAP sync rewrote the log: rebuild the tree from zero.

        The reply cache and the apply-count probe are derived from the
        commit stream, so they reset with it — a stale cache would
        suppress the legitimate replay and leave the tree empty.
        """
        self.tree = DataTree()
        self._reply_cache = OrderedDict()
        self.apply_counts = {}
        if self.sentinel is not None:
            self.sentinel.on_replica_reset(self)
        if self._trace is not None:
            self._trace.emit(self.env.now, "zk", "tree-reset", self.name, None)

    # ---------------------------------------------------------------- sessions

    def _session_ticker(self):
        interval = self.config.heartbeat_interval_ms * 2
        while self._alive:
            try:
                yield self.env.sleep(interval)
            except Interrupt:
                return
            if not self._alive:
                return
            if self.is_serving:
                self._drain_deferred()
                if self.reply_cache_enabled:
                    self._retry_inflight_writes()
            for session in self.sessions.expired_sessions(self.env.now):
                self._expire_session(session.session_id)

    def _drain_deferred(self) -> None:
        deferred, self._deferred_connects = self._deferred_connects, []
        for src, msg in deferred:
            self._handle_connect(src, msg)
        unrouted, self._unrouted_txns = self._unrouted_txns, []
        for txn in unrouted:
            # Through the full routing path: by now this server may have
            # become leader and must apply leader-side routing (token
            # checks in WanKeeper).
            self._route_write(txn)

    def _retry_inflight_writes(self) -> None:
        """Re-route writes whose commit never arrived.

        A forward can vanish on a lossy link, or the leader that held the
        proposal can fall over; either way the commit that would clear the
        entry never happens. Re-routing is safe: the Zab leader drops
        duplicate forwards and the reply cache suppresses any duplicate
        commit that slips through.
        """
        now = self.env.now
        overdue = 2 * self.config.election_timeout_ms
        for key, (txn, routed_at) in list(self._inflight_txns.items()):
            if now - routed_at < overdue:
                continue
            self._inflight_txns[key] = (txn, now)
            self._route_write(txn)

    def _expire_session(self, session_id: str) -> None:
        session = self.sessions.get(session_id)
        if session is None or session.expired:
            return
        self.sessions.mark_expired(session_id)
        self.watches.drop_session(session_id)
        if self._trace is not None:
            self._trace.emit(self.env.now, "zk", "session-expire", self.name,
                             {"session": session_id})
        if session_id not in self._closing:
            # A client-initiated CloseSessionOp may already be in flight;
            # submitting a second close here would double-commit the
            # teardown. The in-flight retransmitter still recovers the
            # first close if it was lost on the wire.
            self._closing.add(session_id)
            self.submit_system_txn(CloseSessionOp(session_id))
        self.net.send(
            self.client_addr, session.client, SessionExpiredNotice(session_id)
        )
