"""The replicated znode tree.

Every server holds one :class:`DataTree` and applies committed transactions
to it in zxid order. ``apply`` is fully deterministic — sequential names,
version bumps, and error outcomes are all functions of (tree state, txn) —
so replicas stay byte-identical without any cross-talk beyond the broadcast.

Watch bookkeeping is local to each server (a client's watches live where the
client is connected); the tree reports which watch events an applied txn
*would* fire and the server routes them to its own watchers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.zab.zxid import Zxid
from repro.zk.errors import (
    ApiError,
    BadVersionError,
    NoChildrenForEphemeralsError,
    NoNodeError,
    NodeExistsError,
    NotEmptyError,
)
from repro.zk.ops import (
    CheckVersionOp,
    CloseSessionOp,
    CreateOp,
    DeleteOp,
    MultiOp,
    SetDataOp,
    SyncOp,
)
from repro.zk.paths import basename, parent_of
from repro.zk.records import Stat, WatchEvent, WatchType, Znode

__all__ = ["ApplyOutcome", "DataTree"]


class ApplyOutcome:
    """Result of applying one write txn.

    ``ok`` plus either ``value`` (op-specific payload) or ``error``.
    ``events`` lists the watch events the mutation fires. A hand-written
    ``__slots__`` class: one is allocated per committed write on every
    replica.
    """

    __slots__ = ("ok", "value", "error", "events")

    def __init__(
        self,
        ok: bool,
        value: Any = None,
        error: Optional[ApiError] = None,
        events: Optional[List[WatchEvent]] = None,
    ):
        self.ok = ok
        self.value = value
        self.error = error
        self.events = [] if events is None else events

    def __repr__(self) -> str:
        return (
            f"ApplyOutcome(ok={self.ok!r}, value={self.value!r}, "
            f"error={self.error!r}, events={self.events!r})"
        )


class DataTree:
    """In-memory znode tree with deterministic mutation."""

    def __init__(self):
        self._nodes: Dict[str, Znode] = {}
        self._nodes["/"] = Znode(
            path="/", data=b"", czxid=Zxid.ZERO, mzxid=Zxid.ZERO, pzxid=Zxid.ZERO
        )
        # session_id -> set of ephemeral paths (derived cache; rebuilt on reset)
        self._ephemerals: Dict[str, set] = {}
        # Dirty-flag caches for the sorted views reads hand out. Any
        # mutation of the node map drops _sorted_paths; any mutation of a
        # session's ephemeral set drops that session's entry.
        self._sorted_paths: Optional[List[str]] = None
        self._ephemerals_sorted: Dict[str, List[str]] = {}

    # -- reads (local, never replicated) ------------------------------------

    def __contains__(self, path: str) -> bool:
        return path in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, path: str) -> Optional[Znode]:
        return self._nodes.get(path)

    def get_data(self, path: str) -> Tuple[bytes, Stat]:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return node.data, node.stat()

    def exists(self, path: str) -> Optional[Stat]:
        node = self._nodes.get(path)
        return node.stat() if node is not None else None

    def get_children(self, path: str) -> List[str]:
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        # Copy of the node's cached sorted list: callers (and ultimately
        # clients) may mutate the returned list.
        return list(node.sorted_children())

    def child_count(self, path: str) -> int:
        """Number of children without materializing the sorted list.

        Quota/num_children-style checks should use this instead of
        ``len(get_children(path))``.
        """
        node = self._nodes.get(path)
        if node is None:
            raise NoNodeError(path)
        return len(node.children)

    def ephemerals_of(self, session_id: str) -> List[str]:
        cached = self._ephemerals_sorted.get(session_id)
        if cached is None:
            cached = self._ephemerals_sorted[session_id] = sorted(
                self._ephemerals.get(session_id, ())
            )
        return list(cached)

    def paths(self) -> List[str]:
        cached = self._sorted_paths
        if cached is None:
            cached = self._sorted_paths = sorted(self._nodes)
        return list(cached)

    # -- writes --------------------------------------------------------------

    def apply(self, op: Any, zxid: Zxid, session_id: str) -> ApplyOutcome:
        """Apply one committed write op; never raises for API errors."""
        if isinstance(op, CreateOp):
            return self._apply_create(op, zxid, session_id)
        if isinstance(op, DeleteOp):
            return self._apply_delete(op, zxid)
        if isinstance(op, SetDataOp):
            return self._apply_set_data(op, zxid)
        if isinstance(op, CheckVersionOp):
            return self._apply_check(op)
        if isinstance(op, MultiOp):
            return self._apply_multi(op, zxid, session_id)
        if isinstance(op, SyncOp):
            return ApplyOutcome(ok=True, value=op.path)
        if isinstance(op, CloseSessionOp):
            return self._apply_close_session(op, zxid)
        raise TypeError(f"not a write op: {op!r}")

    def _apply_create(
        self, op: CreateOp, zxid: Zxid, session_id: str
    ) -> ApplyOutcome:
        parent_path = parent_of(op.path)
        parent = self._nodes.get(parent_path)
        if parent is None:
            return ApplyOutcome(ok=False, error=NoNodeError(parent_path))
        if parent.is_ephemeral:
            return ApplyOutcome(
                ok=False, error=NoChildrenForEphemeralsError(parent_path)
            )
        if op.sequential:
            name = f"{basename(op.path)}{parent.sequence:010d}"
            parent.sequence += 1
            actual_path = (
                f"{parent_path}/{name}" if parent_path != "/" else f"/{name}"
            )
        else:
            actual_path = op.path
        if actual_path in self._nodes:
            return ApplyOutcome(ok=False, error=NodeExistsError(actual_path))

        owner = session_id if op.ephemeral else None
        node = Znode(
            path=actual_path,
            data=op.data,
            czxid=zxid,
            mzxid=zxid,
            pzxid=zxid,
            ephemeral_owner=owner,
        )
        self._nodes[actual_path] = node
        self._sorted_paths = None
        parent.children.add(basename(actual_path))
        parent.cversion += 1
        parent.pzxid = zxid
        parent.invalidate()
        if owner is not None:
            self._ephemerals.setdefault(owner, set()).add(actual_path)
            self._ephemerals_sorted.pop(owner, None)
        events = [
            WatchEvent(WatchType.NODE_CREATED, actual_path),
            WatchEvent(WatchType.NODE_CHILDREN_CHANGED, parent_path),
        ]
        return ApplyOutcome(ok=True, value=actual_path, events=events)

    def _apply_delete(self, op: DeleteOp, zxid: Zxid) -> ApplyOutcome:
        node = self._nodes.get(op.path)
        if node is None:
            return ApplyOutcome(ok=False, error=NoNodeError(op.path))
        if node.children:
            return ApplyOutcome(ok=False, error=NotEmptyError(op.path))
        if op.version != -1 and op.version != node.version:
            return ApplyOutcome(ok=False, error=BadVersionError(op.path))
        self._remove_node(node, zxid)
        parent_path = parent_of(op.path)
        events = [
            WatchEvent(WatchType.NODE_DELETED, op.path),
            WatchEvent(WatchType.NODE_CHILDREN_CHANGED, parent_path),
        ]
        return ApplyOutcome(ok=True, value=op.path, events=events)

    def _remove_node(self, node: Znode, zxid: Zxid) -> None:
        del self._nodes[node.path]
        self._sorted_paths = None
        parent = self._nodes[parent_of(node.path)]
        parent.children.discard(basename(node.path))
        parent.cversion += 1
        parent.pzxid = zxid
        parent.invalidate()
        if node.ephemeral_owner is not None:
            owned = self._ephemerals.get(node.ephemeral_owner)
            if owned is not None:
                owned.discard(node.path)
                if not owned:
                    del self._ephemerals[node.ephemeral_owner]
            self._ephemerals_sorted.pop(node.ephemeral_owner, None)

    def _apply_set_data(self, op: SetDataOp, zxid: Zxid) -> ApplyOutcome:
        node = self._nodes.get(op.path)
        if node is None:
            return ApplyOutcome(ok=False, error=NoNodeError(op.path))
        if op.version != -1 and op.version != node.version:
            return ApplyOutcome(ok=False, error=BadVersionError(op.path))
        node.data = op.data
        node.version += 1
        node.mzxid = zxid
        node.invalidate()
        events = [WatchEvent(WatchType.NODE_DATA_CHANGED, op.path)]
        return ApplyOutcome(ok=True, value=node.stat(), events=events)

    def _apply_check(self, op: CheckVersionOp) -> ApplyOutcome:
        node = self._nodes.get(op.path)
        if node is None:
            return ApplyOutcome(ok=False, error=NoNodeError(op.path))
        if op.version != -1 and op.version != node.version:
            return ApplyOutcome(ok=False, error=BadVersionError(op.path))
        return ApplyOutcome(ok=True, value=node.stat())

    def _apply_multi(
        self, op: MultiOp, zxid: Zxid, session_id: str
    ) -> ApplyOutcome:
        """All-or-nothing: dry-run against a shadow copy, then apply."""
        shadow = self.clone()
        results = []
        for sub in op.ops:
            outcome = shadow.apply(sub, zxid, session_id)
            if not outcome.ok:
                return ApplyOutcome(ok=False, error=outcome.error)
            results.append(outcome.value)
        # Dry run succeeded: apply for real, collecting events.
        events: List[WatchEvent] = []
        values = []
        for sub in op.ops:
            outcome = self.apply(sub, zxid, session_id)
            assert outcome.ok, "multi dry-run diverged from real apply"
            events.extend(outcome.events)
            values.append(outcome.value)
        return ApplyOutcome(ok=True, value=values, events=events)

    def _apply_close_session(self, op: CloseSessionOp, zxid: Zxid) -> ApplyOutcome:
        events: List[WatchEvent] = []
        if op.paths is not None:
            targets = list(op.paths)
        else:
            targets = self.ephemerals_of(op.session_id)
        # Deepest-first so parents never lose children out from under us
        # (ephemerals cannot have children, but be safe and deterministic).
        for path in sorted(targets, key=lambda p: (-p.count("/"), p)):
            node = self._nodes.get(path)
            if node is None:
                continue
            if node.ephemeral_owner != op.session_id:
                continue  # recreated by someone else; not ours to delete
            self._remove_node(node, zxid)
            events.append(WatchEvent(WatchType.NODE_DELETED, path))
            events.append(
                WatchEvent(WatchType.NODE_CHILDREN_CHANGED, parent_of(path))
            )
        return ApplyOutcome(ok=True, value=op.session_id, events=events)

    # -- snapshot / clone ------------------------------------------------------

    def clone(self) -> "DataTree":
        """Deep copy (used for multi() dry runs and SNAP resets)."""
        copy = DataTree.__new__(DataTree)
        copy._nodes = {}
        for path, node in self._nodes.items():
            copy._nodes[path] = Znode(
                path=node.path,
                data=node.data,
                czxid=node.czxid,
                mzxid=node.mzxid,
                pzxid=node.pzxid,
                version=node.version,
                cversion=node.cversion,
                ephemeral_owner=node.ephemeral_owner,
                children=set(node.children),
                sequence=node.sequence,
            )
        copy._ephemerals = {
            session: set(paths) for session, paths in self._ephemerals.items()
        }
        copy._sorted_paths = None
        copy._ephemerals_sorted = {}
        return copy

    def fingerprint(self) -> int:
        """Order-insensitive digest of the full tree (replica comparison)."""
        items = tuple(
            (
                path,
                node.data,
                node.version,
                node.cversion,
                node.ephemeral_owner,
                node.sequence,
            )
            for path, node in sorted(self._nodes.items())
        )
        return hash(items)
