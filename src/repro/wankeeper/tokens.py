"""Token identity and token-state bookkeeping.

One token exists per *record* — for the coordination service, per znode
path — except that sequential znodes under one parent share a single *bulk*
token keyed by the parent (§III-B: sequence numbers depend on sibling
ordering, so their tokens cannot be split across sites).

Token state is **derived from committed transactions** so any new leader can
recover it (§II-D "fault tolerance"): grants ride inside the committed
transaction that triggered them; releases and returns are small marker
transactions in the site/hub ensembles. The classes here are pure state —
the broker logic in :mod:`repro.wankeeper.server` drives them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Optional, Set

from repro.zk.ops import (
    CheckVersionOp,
    CloseSessionOp,
    CreateOp,
    DeleteOp,
    MultiOp,
    SetDataOp,
    SyncOp,
)
from repro.zk.paths import parent_of

__all__ = ["HubTokenState", "SiteTokenState", "token_key", "token_keys"]

#: Sequential znodes are named ``<prefix><10-digit counter>``.
_SEQUENTIAL_SUFFIX = re.compile(r"\d{10}$")

#: Token location value meaning "held by the level-2 broker".
AT_HUB = None


@lru_cache(maxsize=65536)
def token_key(path: str) -> str:
    """The token protecting ``path``.

    Paths that look like sequential znodes (10-digit suffix) are protected
    by their parent's bulk token; every other path is its own token.

    Pure function of the path, memoized: brokers resolve the same paths on
    every admit/retire/recall, and the regex probe was measurable there.
    The bound only caps memory on soaks with unbounded fresh paths.
    """
    if path != "/" and _SEQUENTIAL_SUFFIX.search(path.rpartition("/")[2]):
        return parent_of(path)
    return path


def token_keys(op) -> Set[str]:
    """All tokens a write op needs before it can commit locally.

    A create/delete does *not* take the parent's token (only the parent's
    cversion changes, which is site-local metadata) — except sequential
    creates, which take the parent's bulk token because the sequence counter
    must be globally consistent.
    """
    if isinstance(op, CreateOp):
        if op.sequential:
            return {parent_of(op.path)}
        return {op.path}
    if isinstance(op, DeleteOp):
        return {token_key(op.path)}
    if isinstance(op, (SetDataOp, CheckVersionOp)):
        return {token_key(op.path)}
    if isinstance(op, MultiOp):
        keys: Set[str] = set()
        for sub in op.ops:
            keys |= token_keys(sub)
        return keys
    if isinstance(op, SyncOp):
        return set()
    if isinstance(op, CloseSessionOp):
        # Resolved by the broker against its tree (the ephemeral paths are
        # not known syntactically); treated as needing hub serialization.
        return set()
    raise TypeError(f"not a write op: {op!r}")


@dataclass
class SiteTokenState:
    """Token state at one level-1 site.

    ``owned`` is replicated state (recovered from the site ensemble's log);
    ``outgoing`` and ``inflight`` are leader-volatile — after a site-leader
    failover, pending recalls are simply re-issued by the level-2 broker's
    retry loop.
    """

    site: str
    owned: Set[str] = field(default_factory=set)
    outgoing: Set[str] = field(default_factory=set)
    inflight: Dict[str, int] = field(default_factory=dict)

    def holds(self, key: str) -> bool:
        """Can this site admit a local write on ``key`` right now?"""
        return key in self.owned and key not in self.outgoing

    def holds_all(self, keys: Iterable[str]) -> bool:
        owned = self.owned
        outgoing = self.outgoing
        return all(key in owned and key not in outgoing for key in keys)

    def admit(self, keys: Iterable[str]) -> None:
        """Count an admitted-but-uncommitted local txn against its keys."""
        inflight = self.inflight
        # Nearly every write needs exactly one token; sorting a 1-element
        # set allocated a list per admitted txn. The multi-key path keeps
        # the sorted order (per-key effects are independent, but pinned
        # order keeps any downstream observation deterministic).
        if len(keys) == 1:
            for key in keys:  # lint: iteration-order-ok (single element)
                inflight[key] = inflight.get(key, 0) + 1
            return
        for key in sorted(keys):
            inflight[key] = inflight.get(key, 0) + 1

    def retire(self, keys: Iterable[str]) -> Set[str]:
        """A local txn committed: release inflight counts.

        Returns keys that are now drained *and* marked outgoing — the
        caller must release them back to the hub.
        """
        ready: Set[str] = set()
        inflight = self.inflight
        outgoing = self.outgoing
        ordered = keys if len(keys) == 1 else sorted(keys)
        for key in ordered:  # lint: iteration-order-ok (single element or sorted)
            remaining = inflight.get(key, 0) - 1
            if remaining <= 0:
                inflight.pop(key, None)
                if key in outgoing:
                    ready.add(key)
            else:
                inflight[key] = remaining
        return ready

    def grant(self, key: str) -> None:
        """Replicated: the hub granted this site the token for ``key``."""
        self.owned.add(key)
        self.outgoing.discard(key)

    def release(self, key: str) -> None:
        """Replicated: this site released ``key`` back to the hub."""
        self.owned.discard(key)
        self.outgoing.discard(key)
        self.inflight.pop(key, None)

    def start_recall(self, key: str) -> bool:
        """Hub asked for ``key`` back. True if it can be released now
        (no inflight txns); otherwise it is marked outgoing and drained."""
        if key not in self.owned:
            return False
        if self.inflight.get(key, 0) > 0:
            self.outgoing.add(key)
            return False
        self.outgoing.add(key)
        return True


@dataclass
class HubTokenState:
    """Token-location map at the level-2 broker.

    Replicated across the hub site's ensemble: grants ride in committed
    txns; returns are committed as accept markers. ``location[key]`` is a
    site name, or absent/``None`` meaning the hub holds the token.
    """

    location: Dict[str, Optional[str]] = field(default_factory=dict)

    def where(self, key: str) -> Optional[str]:
        """Owning site for ``key``, or None if the hub holds it."""
        return self.location.get(key, AT_HUB)

    def at_hub(self, key: str) -> bool:
        return self.where(key) is AT_HUB

    def grant(self, key: str, site: str) -> None:
        self.location[key] = site

    def accept_return(self, key: str) -> None:
        self.location.pop(key, None)

    def held_by(self, site: str) -> Set[str]:
        return {key for key, where in self.location.items() if where == site}

    def migrated_count(self) -> int:
        return sum(1 for where in self.location.values() if where is not AT_HUB)
