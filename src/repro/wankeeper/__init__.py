"""WanKeeper: efficient distributed coordination at WAN-scale.

The paper's primary contribution (§II–III): a hybrid coordination framework
that extends centralized coordination (one ZooKeeper-style ensemble per
site) with

* **hierarchical brokers** — each site's ensemble leader acts as a level-1
  token broker; one designated site's leader is the level-2 broker that
  serializes cross-site operations;
* **token migration** — the level-2 broker observes per-record access
  patterns and migrates a record's token to a site after ``r`` consecutive
  accesses from it (default ``r = 2``), enabling *local* writes there until
  the token is recalled;
* **bulk tokens** for sequential znodes (lock/queue recipes) that must stay
  co-located with their siblings;
* a **WAN heartbeater** for cross-site liveness and level-2 discovery;
* optional **Markov token prediction** (§II-B) and **fractional read/write
  tokens** (§VI future work).

Consistency: linearizability per client and per object across the WAN;
linearizability across objects within a site; causal consistency across
objects across sites (write tokens), upgradeable to linearizable reads with
fractional read/write tokens.
"""

from repro.wankeeper.deployment import WanKeeperDeployment, build_wankeeper_deployment
from repro.wankeeper.messages import TokenGrant, WanTxn
from repro.wankeeper.policy import (
    AlwaysMigratePolicy,
    ConsecutiveAccessPolicy,
    MarkovPolicy,
    MigrationPolicy,
    NeverMigratePolicy,
)
from repro.wankeeper.prediction import MarkovPredictor
from repro.wankeeper.server import WanKeeperServer
from repro.wankeeper.tokens import HubTokenState, SiteTokenState, token_key, token_keys

__all__ = [
    "AlwaysMigratePolicy",
    "ConsecutiveAccessPolicy",
    "HubTokenState",
    "MarkovPolicy",
    "MarkovPredictor",
    "MigrationPolicy",
    "NeverMigratePolicy",
    "SiteTokenState",
    "TokenGrant",
    "WanKeeperDeployment",
    "WanKeeperServer",
    "WanTxn",
    "build_wankeeper_deployment",
    "token_key",
    "token_keys",
]
