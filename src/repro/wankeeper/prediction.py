"""Markov-model token prediction (§II-B "Token Prediction").

The broker models accesses as transitions over (object, cluster) states: a
state exists for every object × cluster pair, and a transition is recorded
whenever an object is accessed by some cluster. Per the paper, edges are
only added between states that share the object or the cluster, and only
the most recent ``window`` accesses count — a FIFO window slides old
observations out so the model tracks shifting access patterns.

The prediction the broker needs is *who next*: given that object ``d`` was
just accessed by cluster ``c``, which cluster most probably accesses ``d``
next? If that cluster is ``c`` itself with high enough probability, the
token can be migrated proactively (before ``r`` consecutive accesses have
accumulated).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

__all__ = ["MarkovPredictor"]

State = Tuple[str, str]  # (object key, cluster/site)


class MarkovPredictor:
    """Sliding-window Markov model over (object, cluster) access states."""

    def __init__(self, window: int = 256):
        if window < 2:
            raise ValueError("window must be at least 2")
        self.window = window
        # Recent accesses, oldest first: (key, site).
        self._recent: Deque[State] = deque()
        # Transition counts, restricted to pairs sharing key or site.
        self._transitions: Dict[State, Dict[State, int]] = {}
        # Last state per object — the "previous access" for same-object
        # transitions (the paper's "problem of who").
        self._last_by_key: Dict[str, State] = {}

    def observe(self, key: str, site: str) -> None:
        """Record that ``site`` accessed ``key``."""
        state = (key, site)
        previous = self._last_by_key.get(key)
        if previous is not None:
            self._bump(previous, state, +1)
        self._last_by_key[key] = state
        self._recent.append(state)
        if len(self._recent) > self.window:
            self._expire(self._recent.popleft())

    def _bump(self, src: State, dst: State, delta: int) -> None:
        row = self._transitions.setdefault(src, {})
        row[dst] = row.get(dst, 0) + delta
        if row[dst] <= 0:
            del row[dst]
            if not row:
                del self._transitions[src]

    def _expire(self, old: State) -> None:
        """Slide the oldest access out of the window.

        The transition *out of* the expired occurrence loses weight; we
        decrement the oldest remaining outgoing edge for that state.
        """
        row = self._transitions.get(old)
        if not row:
            return
        # Deterministic choice: decrement the largest (key-ordered) edge.
        dst = min(row)
        self._bump(old, dst, -1)

    def predict_next_site(self, key: str, current_site: str) -> Optional[Tuple[str, float]]:
        """Most probable next accessor of ``key`` after ``current_site``.

        Returns ``(site, probability)`` or None when the model has no
        evidence for this state.
        """
        row = self._transitions.get((key, current_site))
        if not row:
            return None
        total = sum(row.values())
        best_dst, best_count = max(row.items(), key=lambda kv: (kv[1], kv[0]))
        return best_dst[1], best_count / total

    def transition_probability(self, src: State, dst: State) -> float:
        row = self._transitions.get(src)
        if not row:
            return 0.0
        total = sum(row.values())
        return row.get(dst, 0) / total if total else 0.0

    def state_count(self) -> int:
        return len(self._transitions)
