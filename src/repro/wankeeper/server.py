"""The WanKeeper server: level-1 site broker and level-2 hub broker.

Every WanKeeper deployment runs one ZooKeeper-style ensemble per site; the
leader of each ensemble is that site's **level-1 broker**. One site is
designated the **level-2 (hub) site**: its ensemble doubles as the hub, and
its leader is the level-2 broker that serializes cross-site transactions
and manages token migration (paper Fig. 1/3).

Write routing at a level-1 leader (the paper's extended request-processor
chain):

* tokens for all touched records held locally  -> commit in the site
  ensemble ("local txn", Fig. 2 steps 12-13), then replicate the committed
  result to the hub (step 14), which forwards it to the other sites;
* any token missing -> forward the transaction to the level-2 broker
  (step 8); the hub recalls stray tokens, serializes the transaction in its
  own ensemble, piggybacks any token grants the migration policy decides
  (step 11), and relays the committed result to every site — the origin's
  accepting server answers its client when the origin ensemble applies it
  (step 10).

Fault-tolerance choices follow §II-D: token *ownership* is derived from
committed transactions (grants ride in :class:`WanTxn`; releases/accepts
are marker txns), so any newly elected leader recovers it from its log.
Cross-site streams (site->hub replication, hub->site relay) are
deterministic sequences derived from the committed logs with cumulative
acks and go-back-N retransmission, so they survive leader changes on either
end.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.topology import NodeAddress
from repro.net.transport import Network
from repro.sim.kernel import Environment, Interrupt
from repro.wankeeper.messages import (
    L2Promoted,
    L2PromotionRequest,
    L2PromotionVote,
    RelayNoopOp,
    RemoteApply,
    SiteReplicate,
    TokenAcceptOp,
    TokenGrant,
    TokenRecall,
    TokenReleaseOp,
    TokenReturn,
    TokenSyncOp,
    WanAck,
    WanEpochOp,
    WanHeartbeat,
    WanHeartbeatAck,
    WanHello,
    WanSubmit,
    WanTxn,
    WanWelcome,
    wan_id_of,
)
from repro.wankeeper.fractional import (
    LeaseEntry,
    ReadInvalidate,
    ReadInvalidateAck,
    ReadLeaseGrant,
    ReadLeaseRequest,
)
from repro.wankeeper.policy import ConsecutiveAccessPolicy, MigrationPolicy
from repro.wankeeper.tokens import HubTokenState, SiteTokenState, token_key, token_keys
from repro.zab.config import EnsembleConfig
from repro.zab.peer import ZabPeer
from repro.zab.zxid import Zxid
from repro.zk.ops import (
    CloseSessionOp,
    ExistsOp,
    GetChildrenOp,
    GetDataOp,
    SyncOp,
    Txn,
)
from repro.zk.protocol import OpReply, OpRequest
from repro.zk.server import ZkServer

__all__ = ["WanConfig", "WanKeeperServer", "HUB"]

#: ``WanTxn.serialized_at`` value for hub-serialized transactions.
HUB = "l2"


@dataclass
class WanConfig:
    """Cross-site configuration shared by every WanKeeper server."""

    sites: Tuple[str, ...]
    l2_site: str
    #: Client addresses of the hub site's servers (probed for the broker).
    hub_server_addrs: Tuple[NodeAddress, ...]
    policy_factory: Callable[[], MigrationPolicy] = ConsecutiveAccessPolicy
    #: WK-Hot style pre-placement: token key -> owning site.
    initial_tokens: Dict[str, str] = field(default_factory=dict)
    wan_tick_ms: float = 100.0
    recall_retry_ms: float = 400.0
    submit_retry_ms: float = 800.0
    stream_stall_ms: float = 800.0
    relay_window: int = 64
    #: Read consistency: "local" (causal, the paper's default), "forward"
    #: (every read serialized at the hub), "fractional" (§VI read tokens).
    read_mode: str = "local"
    read_lease_ms: float = 3000.0
    #: Fault-injection knob (used by ``repro fuzz`` regression artifacts):
    #: disable the recall-overtook-grant guard in ``_handle_recall``,
    #: re-introducing the dual-token race the lossy soak originally found
    #: — a recall that overtakes its own grant on the relay stream gets
    #: answered "not owned", the hub re-grants elsewhere, and the delayed
    #: grant lands later: two owners.
    buggy_recall_race: bool = False
    #: Extra per-request cost of the worker/master request processor and
    #: WAN-session bookkeeping. The paper measures ~0.1 ms higher read
    #: latency for WanKeeper vs ZooKeeper (§IV-A) and attributes it to
    #: this marshalling; we model it as an explicit constant.
    marshalling_overhead_ms: float = 0.08
    #: Level-2 site failover (§II-D "flexible level-2 site"): when enabled,
    #: site leaders that lose contact with the whole hub site for
    #: ``l2_failover_timeout_ms`` elect (majority of sites) a successor
    #: site, whose leader promotes itself to level-2.
    enable_l2_failover: bool = False
    l2_failover_timeout_ms: float = 10000.0
    #: Client addresses of every site's servers (promotion broadcasts and
    #: hub re-pointing); filled by the deployment builder.
    site_server_addrs: Dict[str, Tuple[NodeAddress, ...]] = field(
        default_factory=dict
    )
    #: Broadcast substrate under each site ensemble (repro.substrate).
    #: The broker layer keys its request processors off "the site leader",
    #: so only single-leader substrates are compatible.
    substrate: str = "zab"

    def __post_init__(self) -> None:
        from repro.substrate import get_substrate

        if not get_substrate(self.substrate).single_leader:
            raise ValueError(
                f"WanKeeper needs a single-leader substrate; "
                f"{self.substrate!r} is multileader (use the flat ZK "
                f"deployment for it)"
            )
        if self.l2_site not in self.sites:
            raise ValueError(f"l2 site {self.l2_site!r} not among sites")
        if self.read_mode not in ("local", "forward", "fractional"):
            raise ValueError(f"unknown read_mode {self.read_mode!r}")
        for key, site in self.initial_tokens.items():
            if site not in self.sites:
                raise ValueError(f"initial token {key!r} at unknown site {site!r}")
        # A token "pinned to the hub's site" is simply held at level-2:
        # grants skip the hub site's own locality, so an L1-owned token at
        # the L2 site is a state the protocol never creates on its own
        # (and the hub cannot recall from itself over the network).
        self.initial_tokens = {
            key: site
            for key, site in self.initial_tokens.items()
            if site != self.l2_site
        }


@dataclass
class _QueuedTxn:
    """A transaction parked at the hub until its tokens come home.

    ``admin_keys``/``admin_grant`` implement the paper's primary-site
    assignment knob: a no-op transaction that forces the named keys'
    tokens to a chosen site regardless of the migration policy.
    """

    txn: Txn
    origin_site: str
    admin_keys: Optional[Tuple[str, ...]] = None
    admin_grant: Optional[str] = None


class WanKeeperServer(ZkServer):
    """A coordination server participating in a WanKeeper deployment."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        zab_addr: NodeAddress,
        client_addr: NodeAddress,
        config: EnsembleConfig,
        wan: WanConfig,
        name: str = "",
    ):
        super().__init__(
            env, net, zab_addr, client_addr, config, name=name,
            substrate=wan.substrate,
        )
        self.wan = wan

        # ---- replicated-derived state (recovered by applying the log) ----
        # WAN epoch and hub identity: bumped by committed WanEpochOp
        # markers when level-2 failover promotes a successor site.
        self.wan_epoch = 0
        self.current_l2_site = wan.l2_site
        self.site_tokens = SiteTokenState(
            self.site,
            owned={
                key for key, site in wan.initial_tokens.items() if site == self.site
            },
        )
        self.hub_tokens = HubTokenState(dict(wan.initial_tokens))
        # (key, site) -> number of committed grants, derived from the
        # replicated WanTxn stream on every server (symmetric, so it
        # survives restarts and level-2 failovers). Used to detect recalls
        # that overtook their grant on the relay stream.
        self._grant_counts: Dict[Tuple[str, str], int] = {}
        self._seen_wan_ids: Set[Tuple[str, int]] = set()
        # Every applied WanTxn, in commit order (lets per-site relay
        # streams be reconstructed for dynamically added sites).
        self._wan_history: List[WanTxn] = []
        # Per-destination filtered relay streams, maintained by *every*
        # server (symmetric) so any site can take over as hub.
        self._relay_streams: Dict[str, List[WanTxn]] = {
            site: [] for site in wan.sites if site != self.site
        }
        # Cumulative count of applied txns serialized at each other site.
        self._absorbed_from_site: Dict[str, int] = {
            site: 0 for site in wan.sites if site != self.site
        }
        # Locally-serialized txns, in commit order.
        self._replicate_stream: List[WanTxn] = []
        # Count of relayed (non-local) applies since the last epoch marker.
        self._applied_relay_count = 0

        # ---- leader-volatile state (reset on leadership change) ----
        self._reset_wan_leader_state()

        self.peer.on_submit = self._on_forwarded_submit
        self.peer.on_leader_activated = self._on_wan_leader_activated

        # Metrics.
        self.local_commits = 0
        self.remote_commits = 0
        self.tokens_granted = 0
        self.tokens_recalled = 0
        #: Replicated-derived token movement history: (time, key, owner)
        #: where owner is a site name or None (back at the hub).
        self.token_history: List[Tuple[float, str, Optional[str]]] = []

        self._wan_proc = None

        # WAN message dispatch table, built once (the per-message dict
        # rebuild was a hot spot, exactly like ZabPeer._dispatch).
        self._wan_handlers: Dict[type, Any] = {
            WanHello: self._on_wan_hello,
            WanWelcome: self._on_wan_welcome,
            WanSubmit: self._on_wan_submit,
            SiteReplicate: self._on_site_replicate,
            RemoteApply: self._on_remote_apply,
            WanAck: self._on_wan_ack,
            TokenRecall: self._on_token_recall,
            TokenReturn: self._on_token_return,
            WanHeartbeat: self._on_wan_heartbeat,
            WanHeartbeatAck: self._on_wan_heartbeat_ack,
            L2PromotionRequest: self._on_l2_promotion_request,
            L2PromotionVote: self._on_l2_promotion_vote,
            L2Promoted: self._on_l2_promoted,
            ReadLeaseRequest: self._on_read_lease_request,
            ReadLeaseGrant: self._on_read_lease_grant,
            ReadInvalidate: self._on_read_invalidate,
            ReadInvalidateAck: self._on_read_invalidate_ack,
        }

    # ----------------------------------------------------------- lifecycle

    @property
    def is_hub_site(self) -> bool:
        """Is this server's site the current level-2 (hub) site?"""
        return self.site == self.current_l2_site

    def _hub_addrs(self) -> Tuple[NodeAddress, ...]:
        """Client addresses of the current hub site's servers."""
        return self.wan.site_server_addrs.get(
            self.current_l2_site, self.wan.hub_server_addrs
        )

    def _stream_for(self, dest: str) -> List[WanTxn]:
        """The relay stream for ``dest``, created retroactively for sites
        added after this server started (paper §II-D: a new level-1 site
        joins with a fresh start and receives the full filtered history)."""
        stream = self._relay_streams.get(dest)
        if stream is None:
            stream = [
                txn for txn in self._wan_history if txn.serialized_at != dest
            ]
            self._relay_streams[dest] = stream
        return stream

    def _reset_wan_leader_state(self) -> None:
        # Adversarial (nemesis-injected) flag: a stale leader acks
        # fractional-read invalidations but keeps serving its leases. Any
        # restart or leadership change ends the lie with the leadership.
        self.stale_reads = False
        # Level-1 role.
        self._l2_addr: Optional[NodeAddress] = None
        self._replicate_acked: Optional[int] = None
        self._replicate_sent = 0
        self._replicate_progress_at = 0.0
        self._submit_unacked: Dict[Tuple[str, int], Tuple[Txn, float]] = {}
        self._relay_submitted = self._applied_relay_count
        self._releasing: Set[str] = set()
        # "Fresh" as of now: a newly (re)elected leader must observe a full
        # failover window of silence before it may vote the hub dead.
        self._last_hub_contact = self.env.now
        # Level-2 role.
        self._policy: MigrationPolicy = self.wan.policy_factory()
        self._hub_queue: List[_QueuedTxn] = []
        self._hub_queued_ids: Set[Tuple[str, int]] = set()
        # Re-entrancy latch: serializing a queue entry can commit
        # synchronously (single-voter ensembles), and the commit hook
        # pumps again — which would mutate the queue mid-iteration.
        self._hub_pumping = False
        self._hub_pump_again = False
        # Txn ids serialized (proposed) but not yet committed: a retried
        # WanSubmit arriving in that window must not re-serialize.
        self._hub_inflight_ids: Set[Tuple[str, int]] = set()
        self._recall_sent_at: Dict[str, float] = {}
        self._site_leaders: Dict[str, NodeAddress] = {}
        self._site_sessions: Dict[str, Tuple[str, ...]] = {}
        self._relay_acked: Dict[str, Optional[int]] = {
            site: None for site in self.wan.sites if site != self.current_l2_site
        }
        self._relay_sent: Dict[str, int] = {}
        self._relay_progress_at: Dict[str, float] = {}
        self._accepts_in_flight: Set[str] = set()
        self._absorbing_counts: Dict[str, int] = {}
        # TokenReturns whose site's replicate stream we have not yet
        # absorbed up to the release point (TokenReturn.seq): accepting
        # early would let the hub serialize writes for the returned keys
        # against a tree missing the site's final local commits.
        self._deferred_returns: Dict[str, List[TokenReturn]] = {}
        # Sessions awaiting ephemeral garbage collection.
        self._gc_sessions: Dict[str, float] = {}
        # Strong-read state (forward / fractional modes).
        self._leases: Dict[str, LeaseEntry] = {}  # data path -> lease
        self._lease_pending: Dict[int, Tuple[NodeAddress, Any]] = {}
        self._lease_request_counter = 0
        # Hub leader: token key -> {holder server -> lease expiry}.
        self._read_holders: Dict[str, Dict[NodeAddress, float]] = {}
        self._pending_lease_reads: List[Tuple[NodeAddress, Any]] = []
        self._invalidate_sent_at: Dict[str, float] = {}
        # Hub leader: keys of hub-serialized writes proposed, not yet
        # committed (lease grants are withheld for them).
        self._inflight_hub_keys: Dict[str, int] = {}
        # Level-2 failover (volatile).
        self._promotion_epoch = 0
        self._promotion_votes: Set[str] = set()
        self._promotion_committed = False
        self._inventory_needed: Set[str] = set()
        self._send_inventory_next = False

    def start(self) -> None:
        super().start()
        self._spawn_wan_ticker()

    def restart(self) -> None:
        # The peer will replay its durable log from zero: all replicated-
        # derived WAN state must restart empty or it would double-count.
        self._reset_wan_derived_state()
        super().restart()
        # Volatile WAN state is gone with the crash; rebuild and resume
        # the WAN duties (probing, heartbeats, stream retransmission).
        self._reset_wan_leader_state()
        self._spawn_wan_ticker()

    def _on_tree_reset(self, peer) -> None:
        # A SNAP sync rewrites history: derived WAN state rebuilds from
        # zero exactly like the tree does.
        super()._on_tree_reset(peer)
        self._reset_wan_derived_state()

    def _reset_wan_derived_state(self) -> None:
        self.wan_epoch = 0
        self.current_l2_site = self.wan.l2_site
        self.site_tokens = SiteTokenState(
            self.site,
            owned={
                key
                for key, site in self.wan.initial_tokens.items()
                if site == self.site
            },
        )
        self.hub_tokens = HubTokenState(dict(self.wan.initial_tokens))
        self._grant_counts = {}
        self._seen_wan_ids = set()
        self._wan_history = []
        self._relay_streams = {
            site: [] for site in self.wan.sites if site != self.site
        }
        self._absorbed_from_site = {
            site: 0 for site in self.wan.sites if site != self.site
        }
        self._replicate_stream = []
        self._applied_relay_count = 0
        self.token_history = []

    def _spawn_wan_ticker(self) -> None:
        self._wan_proc = self.env.process(
            self._wan_ticker(), name=f"{self.name}.wan"
        )
        self._procs.append(self._wan_proc)

    def _on_wan_leader_activated(self, _peer: ZabPeer) -> None:
        self._reset_wan_leader_state()
        self._relay_submitted = self._applied_relay_count
        for site in self._absorbed_from_site:
            self._relay_acked[site] = None  # wait for the site's heartbeat

    # ------------------------------------------------------------- routing

    def _route_write(self, txn: Txn) -> None:
        if self.peer.is_leader:
            self._leader_route(txn)
        elif self.is_serving:
            self.peer.forward_submit(txn)
        else:
            self._unrouted_txns.append(txn)

    def _on_forwarded_submit(self, payload: Any) -> None:
        """Leader hook for txns forwarded through the site ensemble."""
        if isinstance(payload, WanTxn):
            # Already serialized elsewhere; just broadcast it locally.
            self._propose(payload)
        elif isinstance(payload, Txn):
            self._leader_route(payload)
        else:
            self._propose(payload)

    def _propose(self, payload: Any) -> None:
        if self.peer.is_leader:
            self.peer.submit(payload)

    def _leader_route(self, txn: Txn) -> None:
        """The paper's worker/master request processor (Fig. 3)."""
        op = txn.op
        if isinstance(op, CloseSessionOp):
            # Session teardown spans unknown records; always hub-serialized.
            if self.is_hub_site:
                self._hub_admit(txn, self.site)
            else:
                self._wan_submit(txn)
            return
        needed = token_keys(op)
        if self.is_hub_site:
            if all(
                self.hub_tokens.at_hub(key) for key in needed
            ) and not self._live_lease_holders(needed):
                self._hub_serialize(txn, needed, self.site)
            else:
                self._hub_admit(txn, self.site)
            return
        if self.site_tokens.holds_all(needed):
            self.site_tokens.admit(needed)
            self.local_commits += 1
            if self.sentinel is not None:
                self.sentinel.on_local_admit(self, needed)
            if self._trace is not None:
                self._trace.emit(self.env.now, "wan", "local-admit", self.name,
                                 {"keys": sorted(needed),
                                  "session": txn.session_id,
                                  "cxid": txn.cxid})
            self._propose(
                WanTxn(txn=txn, origin_site=self.site, serialized_at=self.site)
            )
        else:
            self._wan_submit(txn)

    def _wan_submit(self, txn: Txn) -> None:
        """Forward a transaction to the level-2 broker (Fig. 2 step 8)."""
        self.remote_commits += 1
        self._submit_unacked[wan_id_of(txn)] = (txn, self.env.now)
        if self._l2_addr is not None:
            self.net.send(
                self.client_addr,
                self._l2_addr,
                WanSubmit(self.site, self.client_addr, txn),
            )

    # ----------------------------------------------------- hub serialization

    def _hub_needed_keys(self, txn: Txn) -> Set[str]:
        op = txn.op
        if isinstance(op, CloseSessionOp):
            return {
                token_key(path)
                for path in self.tree.ephemerals_of(op.session_id)
            }
        return token_keys(op)

    def assign_token(self, key: str, site: str) -> None:
        """Admin knob (paper §I): move ``key``'s token to ``site`` now.

        Only valid on the acting level-2 leader. Pass the hub's own site to
        pin the token at level-2 (recalled and kept home).
        """
        if not (self.is_hub_site and self.peer.is_leader):
            raise RuntimeError(f"{self.name} is not the level-2 broker")
        if site not in self.wan.site_server_addrs and site not in self.wan.sites:
            raise ValueError(f"unknown site {site!r}")
        self._system_cxid += 1
        txn = Txn(
            session_id=f"__admin__:{self.name}",
            cxid=self._system_cxid,
            origin=self.client_addr,
            op=SyncOp("/"),
            origin_site=self.site,
        )
        self._hub_queue.append(
            _QueuedTxn(
                txn,
                origin_site=self.site,
                admin_keys=(key,),
                admin_grant=site,
            )
        )
        self._hub_queued_ids.add(wan_id_of(txn))
        self._hub_pump()

    def _hub_admit(self, txn: Txn, origin_site: str) -> None:
        wid = wan_id_of(txn)
        if (
            wid in self._seen_wan_ids
            or wid in self._hub_queued_ids
            or wid in self._hub_inflight_ids
        ):
            return
        self._hub_queue.append(_QueuedTxn(txn, origin_site))
        self._hub_queued_ids.add(wid)
        self._hub_pump()

    def _hub_pump(self) -> None:
        """Serialize every queued txn whose tokens are home; recall the rest."""
        if not self.peer.is_leader:
            return
        if self._hub_pumping:
            # Nested pump (a serialize committed synchronously and its
            # commit hook pumped): flag the outer loop for another pass
            # instead of mutating the queue mid-iteration.
            self._hub_pump_again = True
            return
        self._hub_pumping = True
        try:
            progress = True
            while progress:
                progress = False
                self._hub_pump_again = False
                for entry in list(self._hub_queue):
                    if entry not in self._hub_queue:
                        continue  # removed by a deeper call this pass
                    if entry.admin_keys is not None:
                        needed = set(entry.admin_keys)
                    else:
                        needed = self._hub_needed_keys(entry.txn)
                    missing = {
                        key for key in needed if not self.hub_tokens.at_hub(key)
                    }
                    lease_holders = self._live_lease_holders(needed)
                    if missing or lease_holders:
                        if missing:
                            self._request_recalls(missing)
                        if lease_holders:
                            # §VI: a write needs all read tokens back first.
                            self._send_invalidates(lease_holders)
                        continue
                    self._hub_queue.remove(entry)
                    self._hub_queued_ids.discard(wan_id_of(entry.txn))
                    self._hub_serialize(
                        entry.txn, needed, entry.origin_site,
                        admin_grant=entry.admin_grant,
                    )
                    progress = True
                progress = progress or self._hub_pump_again
        finally:
            self._hub_pumping = False

    def _request_recalls(self, keys: Set[str]) -> None:
        now = self.env.now
        by_site: Dict[str, List[str]] = {}
        for key in sorted(keys):
            owner = self.hub_tokens.where(key)
            if owner is None:
                continue
            last = self._recall_sent_at.get(key, -1e18)
            if now - last < self.wan.recall_retry_ms:
                continue
            self._recall_sent_at[key] = now
            by_site.setdefault(owner, []).append(key)
        for site, site_keys in by_site.items():
            counts = tuple(
                self._grant_counts.get((key, site), 0) for key in site_keys
            )
            if site == self.site:
                # A hub can find its own site in the location map — a
                # freshly promoted level-2 still owns tokens granted while
                # it was level-1, and fault injection can corrupt the map
                # the same way. There is no remote leader to message;
                # run the level-1 recall handler directly.
                self.tokens_recalled += len(site_keys)
                self._handle_recall(tuple(site_keys), counts)
                continue
            leader = self._site_leaders.get(site)
            if leader is not None:
                self.tokens_recalled += len(site_keys)
                self.net.send(
                    self.client_addr,
                    leader,
                    TokenRecall(tuple(site_keys), counts),
                )

    def _key_wanted_by_queue(self, key: str) -> bool:
        return any(
            key in self._hub_needed_keys(entry.txn) for entry in self._hub_queue
        )

    def _hub_serialize(
        self,
        txn: Txn,
        needed: Set[str],
        origin_site: str,
        admin_grant: Optional[str] = None,
    ) -> None:
        """Commit a txn in the hub ensemble with policy-decided grants."""
        grants: List[TokenGrant] = []
        if admin_grant is not None:
            # Primary-site assignment knob: force the placement.
            if admin_grant != self.current_l2_site:
                grants = [TokenGrant(key, admin_grant) for key in sorted(needed)]
        else:
            for key in sorted(needed):
                if origin_site == self.current_l2_site:
                    continue  # the hub site's own locality needs no grant
                if isinstance(txn.op, CloseSessionOp):
                    continue  # teardown of dying records: not an access pattern
                migrate = self._policy.observe_and_decide(key, origin_site)
                if (
                    migrate
                    and not self._key_wanted_by_queue(key)
                    and not self._read_holders.get(key)
                ):
                    grants.append(TokenGrant(key, origin_site))
        if self.sentinel is not None:
            self.sentinel.on_hub_serialize(self, needed)
        if self._trace is not None:
            self._trace.emit(self.env.now, "wan", "hub-serialize", self.name,
                             {"keys": sorted(needed),
                              "origin": origin_site,
                              "grants": [(g.key, g.site) for g in grants]})
        self._hub_inflight_ids.add(wan_id_of(txn))
        for key in sorted(needed):
            self._inflight_hub_keys[key] = self._inflight_hub_keys.get(key, 0) + 1
        op = txn.op
        if isinstance(op, CloseSessionOp) and op.paths is None:
            # Pin the exact ephemeral set so all sites delete the same nodes.
            pinned = dataclasses.replace(
                op, paths=tuple(self.tree.ephemerals_of(op.session_id))
            )
            txn = txn.replace_op(pinned)
        self.tokens_granted += len(grants)
        self._propose(
            WanTxn(
                txn=txn,
                origin_site=origin_site,
                serialized_at=HUB,
                grants=tuple(grants),
            )
        )

    # ------------------------------------------------------------- commits

    def _on_commit(self, zxid: Zxid, payload: Any) -> None:
        if isinstance(payload, WanTxn):
            self._commit_wan_txn(zxid, payload)
        elif isinstance(payload, TokenReleaseOp):
            self._commit_release(payload)
        elif isinstance(payload, TokenAcceptOp):
            self._commit_accept(payload)
        elif isinstance(payload, WanEpochOp):
            self._commit_wan_epoch(payload)
        elif isinstance(payload, RelayNoopOp):
            self._seen_wan_ids.add(payload.wan_id)
            self._applied_relay_count += 1
        elif isinstance(payload, TokenSyncOp):
            self._commit_token_sync(payload)
        elif isinstance(payload, Txn):
            # Plain txn (defensive; everything should be wrapped).
            self._commit_client_txn(zxid, payload)
        else:
            raise TypeError(f"{self.name}: unexpected commit payload {payload!r}")

    def _commit_wan_epoch(self, op: WanEpochOp) -> None:
        """Adopt a new WAN epoch: re-point at the (possibly new) hub."""
        if op.epoch <= self.wan_epoch:
            return  # stale/duplicate marker
        self.wan_epoch = op.epoch
        self.current_l2_site = op.l2_site
        if self._trace is not None:
            self._trace.emit(self.env.now, "wan", "wan-epoch", self.name,
                             {"epoch": op.epoch, "l2_site": op.l2_site})
        # The new hub replays its filtered history from seq 1.
        self._applied_relay_count = 0
        if self.peer.is_leader:
            was_committed = self._promotion_committed
            self._reset_wan_leader_state()
            if self.is_hub_site:
                # Freshly promoted hub: learn every site's token inventory
                # and site-leader address via their heartbeats.
                self._promotion_committed = was_committed
                self._inventory_needed = {
                    site for site in self.wan.sites if site != self.site
                }
                self._relay_acked = {
                    site: 0 for site in self.wan.sites if site != self.site
                }

    def _commit_token_sync(self, op: TokenSyncOp) -> None:
        """Inventory reconciliation: ``site`` owns exactly ``keys``."""
        for key in sorted(self.hub_tokens.held_by(op.site)):
            if key not in op.keys:
                self.hub_tokens.accept_return(key)
        for key in op.keys:  # lint: iteration-order-ok (Tuple[str, ...])
            self.hub_tokens.grant(key, op.site)
        if self.peer.is_leader and self.is_hub_site:
            self._hub_pump()

    def _commit_wan_txn(self, zxid: Zxid, wan_txn: WanTxn) -> None:
        self._seen_wan_ids.add(wan_txn.wan_id)
        self._hub_inflight_ids.discard(wan_txn.wan_id)
        for grant in wan_txn.grants:
            self.hub_tokens.grant(grant.key, grant.site)
            counter_key = (grant.key, grant.site)
            self._grant_counts[counter_key] = (
                self._grant_counts.get(counter_key, 0) + 1
            )
            self.token_history.append((self.env.now, grant.key, grant.site))
            if self._trace is not None:
                self._trace.emit(self.env.now, "wan", "token-grant", self.name,
                                 {"key": grant.key, "site": grant.site})
            if grant.site == self.site:
                self.site_tokens.grant(grant.key)
                if self.sentinel is not None and self.peer.is_leader:
                    self.sentinel.on_token_grant(self, grant.key, grant.site)
        # Stream bookkeeping is symmetric (every server maintains it) so
        # any site can take over as hub after a level-2 failover.
        self._wan_history.append(wan_txn)
        for site, stream in self._relay_streams.items():
            if wan_txn.serialized_at != site:
                stream.append(wan_txn)
        if wan_txn.serialized_at == self.site:
            self._replicate_stream.append(wan_txn)
        else:
            self._applied_relay_count += 1
            if wan_txn.serialized_at != HUB:
                origin = wan_txn.serialized_at
                self._absorbed_from_site[origin] = (
                    self._absorbed_from_site.get(origin, 0) + 1
                )

        self._commit_client_txn(zxid, wan_txn.txn)

        if not self.peer.is_leader:
            return
        # ---- leader-only post-commit duties ----
        serialized_at = wan_txn.serialized_at
        if self.is_hub_site:
            if serialized_at == HUB:
                inflight = self._inflight_hub_keys
                for key in token_keys(wan_txn.txn.op):
                    count = inflight.get(key, 0) - 1
                    if count > 0:
                        inflight[key] = count
                    else:
                        inflight.pop(key, None)
            if serialized_at not in (HUB, self.site):
                self._ack_site(serialized_at)
                deferred = self._deferred_returns.pop(serialized_at, None)
                if deferred:
                    # Stream advanced: replay parked returns (any still
                    # ahead of the absorb watermark simply re-park).
                    for parked in deferred:
                        self._handle_return(parked)
                # Replicated local commits feed the learning policies (the
                # broker's access log covers migrated-token activity too).
                # Nearly every op needs exactly one token; skip the sort
                # allocation for that case.
                keys = token_keys(wan_txn.txn.op)
                ordered = keys if len(keys) == 1 else sorted(keys)
                for key in ordered:  # lint: iteration-order-ok (single element or sorted)
                    self._policy.observe(key, serialized_at)
            self._flush_relays()
            self._hub_pump()
            self._pump_lease_reads()
        else:
            if serialized_at == self.site:
                ready = self.site_tokens.retire(token_keys(wan_txn.txn.op))
                if ready:
                    self._release_keys(ready)
                self._flush_replicates()
            else:
                self._submit_unacked.pop(wan_txn.wan_id, None)
                if self._l2_addr is not None:
                    self.net.send(
                        self.client_addr,
                        self._l2_addr,
                        WanAck(self.site, self._applied_relay_count),
                    )

    def _commit_release(self, op: TokenReleaseOp) -> None:
        if self._trace is not None:
            self._trace.emit(self.env.now, "wan", "token-release", self.name,
                             {"keys": list(op.keys)})
        for key in op.keys:  # lint: iteration-order-ok (Tuple[str, ...])
            self.site_tokens.release(key)
            self._releasing.discard(key)
        if self.peer.is_leader and self.is_hub_site:
            # Self-recall completing at the hub: accept the return locally
            # so the location map clears and queued txns pump.
            self._handle_return(
                TokenReturn(self.site, self.client_addr, op.keys)
            )
        elif self.peer.is_leader and not self.is_hub_site and self._l2_addr:
            self.net.send(
                self.client_addr,
                self._l2_addr,
                TokenReturn(
                    self.site,
                    self.client_addr,
                    op.keys,
                    len(self._replicate_stream),
                ),
            )

    def _commit_accept(self, op: TokenAcceptOp) -> None:
        if self._trace is not None:
            self._trace.emit(self.env.now, "wan", "token-accept", self.name,
                             {"keys": list(op.keys), "site": op.site})
        for key in op.keys:  # lint: iteration-order-ok (Tuple[str, ...])
            self.hub_tokens.accept_return(key)
            self.token_history.append((self.env.now, key, None))
            self._accepts_in_flight.discard(key)
            self._recall_sent_at.pop(key, None)
            self._policy.forget(key)
        if self.peer.is_leader and self.is_hub_site:
            self._hub_pump()
            self._pump_lease_reads()

    # --------------------------------------------------------- token recall

    def _handle_recall(
        self,
        keys: Tuple[str, ...],
        grant_counts: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Level-1 leader: the hub terminated our lease on ``keys``."""
        if not self.peer.is_leader:
            return
        if self._trace is not None:
            self._trace.emit(self.env.now, "wan", "token-recall", self.name,
                             {"keys": list(keys)})
        expected = dict(zip(keys, grant_counts or ()))
        releasable: Set[str] = set()
        not_owned: List[str] = []
        for key in keys:  # lint: iteration-order-ok (Tuple[str, ...])
            if key in self._releasing:
                continue
            if key not in self.site_tokens.owned:
                seen = self._grant_counts.get((key, self.site), 0)
                if seen < expected.get(key, 0) and not self.wan.buggy_recall_race:
                    # The recall overtook its grant on the relay stream:
                    # the token is still in flight to us. Answering
                    # "not owned" now would let the hub re-grant the key
                    # elsewhere while our stale grant later lands — two
                    # owners. Stay silent; the hub retries the recall
                    # after recall_retry_ms, by which time the stream has
                    # caught up and the normal release path runs.
                    continue
                not_owned.append(key)
            elif self.site_tokens.start_recall(key):
                releasable.add(key)
            # else: inflight txns drain first; retire() releases later.
        if releasable:
            self._release_keys(releasable)
        if not_owned:
            # Idempotent re-ack: we no longer hold these (return lost?).
            returned = TokenReturn(
                self.site,
                self.client_addr,
                tuple(sorted(not_owned)),
                len(self._replicate_stream),
            )
            if self.is_hub_site:
                self._handle_return(returned)  # self-recall: no network hop
            elif self._l2_addr is not None:
                self.net.send(self.client_addr, self._l2_addr, returned)

    def _release_keys(self, keys: Set[str]) -> None:
        fresh = {key for key in keys if key not in self._releasing}
        if not fresh:
            return
        self._releasing |= fresh
        self._propose(TokenReleaseOp(tuple(sorted(fresh))))

    def _handle_return(self, msg: TokenReturn) -> None:
        """Hub leader: a site released tokens; make it durable."""
        if not self.peer.is_leader:
            return
        if (
            msg.site != self.site
            and self._absorbed_from_site.get(msg.site, 0) < msg.seq
        ):
            # The return overtook the site's replicate stream: its final
            # local commits for these keys are still in flight. Accepting
            # now would re-grant/serialize against a stale tree. Park it;
            # absorbing the stream up to msg.seq replays it.
            queue = self._deferred_returns.setdefault(msg.site, [])
            if msg not in queue:
                queue.append(msg)
            return
        valid = tuple(
            key
            for key in msg.keys  # lint: iteration-order-ok (Tuple)
            if self.hub_tokens.where(key) == msg.site
            and key not in self._accepts_in_flight
        )
        if not valid:
            return
        self._accepts_in_flight.update(valid)
        self._propose(TokenAcceptOp(valid, msg.site))

    # ------------------------------------------------------------ WAN streams

    def _ack_site(self, site: str) -> None:
        leader = self._site_leaders.get(site)
        if leader is not None:
            self.net.send(
                self.client_addr,
                leader,
                WanAck(site, self._absorbed_from_site[site]),
            )

    def _flush_relays(self, force_from_ack: bool = False) -> None:
        """Hub leader: push relay streams to each site (go-back-N)."""
        for site, stream in self._relay_streams.items():
            acked = self._relay_acked.get(site)
            leader = self._site_leaders.get(site)
            if acked is None or leader is None:
                continue
            if force_from_ack:
                self._relay_sent[site] = acked
            sent = max(self._relay_sent.get(site, 0), acked)
            limit = min(len(stream), acked + self.wan.relay_window)
            for seq in range(sent + 1, limit + 1):
                self.net.send(
                    self.client_addr,
                    leader,
                    RemoteApply(seq, stream[seq - 1]),
                )
            if limit > sent:
                self._relay_sent[site] = limit
                self._relay_progress_at[site] = self.env.now

    def _flush_replicates(self, force_from_ack: bool = False) -> None:
        """Site leader: push locally-committed txns to the hub (go-back-N)."""
        if self._l2_addr is None or self._replicate_acked is None:
            return
        acked = self._replicate_acked
        if force_from_ack:
            self._replicate_sent = acked
        sent = max(self._replicate_sent, acked)
        limit = min(len(self._replicate_stream), acked + self.wan.relay_window)
        for seq in range(sent + 1, limit + 1):
            self.net.send(
                self.client_addr,
                self._l2_addr,
                SiteReplicate(
                    self.site,
                    self.client_addr,
                    seq,
                    self._replicate_stream[seq - 1],
                ),
            )
        if limit > sent:
            self._replicate_sent = limit
            self._replicate_progress_at = self.env.now

    # ---------------------------------------------------------- WAN messages

    def _on_client_message(self, src: NodeAddress, msg: Any) -> None:
        handler = self._wan_handlers.get(type(msg))
        if handler is not None:
            handler(src, msg)
        else:
            super()._on_client_message(src, msg)

    def _on_token_recall(self, src: NodeAddress, msg: TokenRecall) -> None:
        if src.site == self.current_l2_site:
            self._handle_recall(msg.keys, msg.grant_counts)

    def _on_token_return(self, src: NodeAddress, msg: TokenReturn) -> None:
        self._handle_return(msg)

    def _on_wan_hello(self, src: NodeAddress, msg: WanHello) -> None:
        if self.is_hub_site and self.peer.is_leader:
            if msg.is_site_leader:
                self._site_leaders[msg.site] = msg.sender
            self.net.send(self.client_addr, msg.sender, WanWelcome(self.client_addr))

    def _on_wan_welcome(self, src: NodeAddress, msg: WanWelcome) -> None:
        self._l2_addr = msg.l2_addr
        self._last_hub_contact = self.env.now

    def _on_wan_submit(self, src: NodeAddress, msg: WanSubmit) -> None:
        if not (self.is_hub_site and self.peer.is_leader):
            return
        self._site_leaders[msg.site] = msg.sender
        self._hub_admit(msg.txn, msg.site)

    def _on_site_replicate(self, src: NodeAddress, msg: SiteReplicate) -> None:
        if not (self.is_hub_site and self.peer.is_leader):
            return
        self._site_leaders[msg.site] = msg.sender
        absorbed = self._absorbed_from_site.get(msg.site, 0)
        if msg.seq <= absorbed:
            self._ack_site(msg.site)
            return
        pending = self._absorbing_counts.setdefault(msg.site, absorbed)
        if msg.seq != pending + 1:
            return  # out of order; go-back-N will retransmit
        self._absorbing_counts[msg.site] = msg.seq
        self._propose(msg.wan_txn)

    def _on_remote_apply(self, src: NodeAddress, msg: RemoteApply) -> None:
        if self.is_hub_site or not self.peer.is_leader:
            return
        if src.site != self.current_l2_site:
            return  # relay from a demoted hub; ignore
        if msg.seq <= self._applied_relay_count:
            if self._l2_addr is not None:
                self.net.send(
                    self.client_addr,
                    self._l2_addr,
                    WanAck(self.site, self._applied_relay_count),
                )
            return
        if msg.seq != self._relay_submitted + 1:
            return  # gap; hub retransmits from our cumulative ack
        self._relay_submitted = msg.seq
        if msg.wan_txn.wan_id in self._seen_wan_ids:
            # Post-promotion replay of an entry we already applied: commit
            # a no-op marker so the derived relay watermark still advances.
            self._propose(RelayNoopOp(msg.wan_txn.wan_id))
        else:
            self._propose(msg.wan_txn)

    def _on_wan_ack(self, src: NodeAddress, msg: WanAck) -> None:
        if self.is_hub_site:
            if self.peer.is_leader and msg.site in self._relay_acked:
                current = self._relay_acked.get(msg.site) or 0
                self._relay_acked[msg.site] = max(current, msg.seq)
        else:
            if self.peer.is_leader:
                current = self._replicate_acked or 0
                self._replicate_acked = max(current, msg.seq)
                self._last_hub_contact = self.env.now

    def _on_wan_heartbeat(self, src: NodeAddress, msg: WanHeartbeat) -> None:
        if not (self.is_hub_site and self.peer.is_leader):
            return
        self._site_leaders[msg.site] = msg.sender
        self._site_sessions[msg.site] = msg.live_sessions
        if msg.site != self.site:
            self._stream_for(msg.site)  # materialize for late-joining sites
            current = self._relay_acked.get(msg.site)
            self._relay_acked[msg.site] = max(current or 0, msg.applied_relay_seq)
        if msg.owned_tokens is not None and msg.site in self._inventory_needed:
            self._inventory_needed.discard(msg.site)
            self._propose(TokenSyncOp(msg.site, msg.owned_tokens))
        self.net.send(
            self.client_addr,
            msg.sender,
            WanHeartbeatAck(
                l2_addr=self.client_addr,
                known_sites=tuple(sorted(self._site_leaders)),
                absorbed=self._absorbed_from_site.get(msg.site, 0),
                need_inventory=msg.site in self._inventory_needed,
            ),
        )

    def _on_wan_heartbeat_ack(self, src: NodeAddress, msg: WanHeartbeatAck) -> None:
        if self.is_hub_site or not self.peer.is_leader:
            return
        if src.site != self.current_l2_site:
            return  # stale ack from a demoted hub
        self._l2_addr = msg.l2_addr
        self._last_hub_contact = self.env.now
        self._send_inventory_next = msg.need_inventory
        current = self._replicate_acked
        self._replicate_acked = max(current or 0, msg.absorbed)

    # ------------------------------------------- level-2 failover (§II-D)

    def _successor_site(self) -> str:
        """Deterministic successor every site leader agrees on."""
        return min(s for s in self.wan.sites if s != self.current_l2_site)

    def _hub_looks_dead(self) -> bool:
        return (
            self.wan.enable_l2_failover
            and self.env.now - self._last_hub_contact
            > self.wan.l2_failover_timeout_ms
        )

    def _broadcast_all_sites(self, message: Any, include_hub: bool = True) -> None:
        for site, addrs in self.wan.site_server_addrs.items():
            if site == self.site:
                continue
            if not include_hub and site == self.current_l2_site:
                continue
            for addr in addrs:
                self.net.send(self.client_addr, addr, message)

    def _start_promotion(self) -> None:
        target = self.wan_epoch + 1
        if self._promotion_epoch != target:
            self._promotion_epoch = target
            self._promotion_votes = {self.site}
            self._promotion_committed = False
        if self._promotion_committed:
            return
        self._broadcast_all_sites(
            L2PromotionRequest(self.site, self.client_addr, target),
            include_hub=False,
        )
        self._maybe_promote()

    def _on_l2_promotion_request(
        self, src: NodeAddress, msg: L2PromotionRequest
    ) -> None:
        if not self.peer.is_leader or self.is_hub_site:
            return
        agree = (
            self.wan.enable_l2_failover
            and msg.epoch == self.wan_epoch + 1
            and msg.candidate_site == self._successor_site()
            and self._hub_looks_dead()
        )
        self.net.send(
            self.client_addr,
            msg.sender,
            L2PromotionVote(self.site, self.client_addr, msg.epoch, agree),
        )

    def _on_l2_promotion_vote(self, src: NodeAddress, msg: L2PromotionVote) -> None:
        if not self.peer.is_leader:
            return
        if not msg.agree or msg.epoch != self._promotion_epoch:
            return
        self._promotion_votes.add(msg.voter_site)
        self._maybe_promote()

    def _maybe_promote(self) -> None:
        majority = len(self.wan.sites) // 2 + 1
        if (
            not self._promotion_committed
            and len(self._promotion_votes) >= majority
        ):
            self._promotion_committed = True
            self._propose(WanEpochOp(self._promotion_epoch, self.site))

    def _on_l2_promoted(self, src: NodeAddress, msg: L2Promoted) -> None:
        if not self.peer.is_leader:
            return
        if msg.epoch > self.wan_epoch:
            self._propose(WanEpochOp(msg.epoch, msg.new_l2_site))

    # --------------------------------------------------------------- ticker

    def _wan_ticker(self):
        while self._alive:
            try:
                yield self.env.sleep(self.wan.wan_tick_ms)
            except Interrupt:
                return
            if not self._alive:
                return
            self._expire_leases()
            if not self.peer.is_leader:
                # Followers in strong-read modes need the hub address for
                # the forwarded-read path.
                if (
                    self.wan.read_mode != "local"
                    and not self.is_hub_site
                    and self._l2_addr is None
                ):
                    for addr in self._hub_addrs():
                        self.net.send(
                            self.client_addr,
                            addr,
                            WanHello(self.site, self.client_addr,
                                     is_site_leader=False),
                        )
                continue
            if self.is_hub_site:
                self._hub_tick()
                self._pump_lease_reads()
            else:
                self._site_tick()
            self._gc_tick()

    def _expire_leases(self) -> None:
        if self.stale_reads or not self._leases:
            return
        now = self.env.now
        self._leases = {
            path: lease
            for path, lease in self._leases.items()
            if lease.expires > now
        }

    def _site_tick(self) -> None:
        now = self.env.now
        if self._hub_looks_dead() and self.site == self._successor_site():
            self._start_promotion()
        if self._l2_addr is None:
            for addr in self._hub_addrs():
                self.net.send(
                    self.client_addr, addr, WanHello(self.site, self.client_addr)
                )
            return
        # Heartbeat with live sessions and our relay watermark (plus the
        # token inventory when a freshly promoted hub asked for it).
        inventory = (
            tuple(sorted(self.site_tokens.owned))
            if self._send_inventory_next
            else None
        )
        self.net.send(
            self.client_addr,
            self._l2_addr,
            WanHeartbeat(
                self.site,
                self.client_addr,
                live_sessions=self.sessions.live_ids_snapshot(),
                applied_relay_seq=self._applied_relay_count,
                owned_tokens=inventory,
            ),
        )
        if now - self._last_hub_contact > 6 * self.wan.wan_tick_ms:
            # Hub leader may have moved; re-probe.
            self._l2_addr = None
            return
        # Retransmit stalled streams and unacked submits.
        stalled = (
            self._replicate_acked is not None
            and self._replicate_sent > self._replicate_acked
            and now - self._replicate_progress_at > self.wan.stream_stall_ms
        )
        self._flush_replicates(force_from_ack=stalled)
        for wid, (txn, sent_at) in list(self._submit_unacked.items()):
            if now - sent_at >= self.wan.submit_retry_ms:
                self._submit_unacked[wid] = (txn, now)
                self.net.send(
                    self.client_addr,
                    self._l2_addr,
                    WanSubmit(self.site, self.client_addr, txn),
                )

    def _hub_tick(self) -> None:
        now = self.env.now
        if self.wan_epoch > 0:
            # Post-failover hubs announce themselves so partitioned-away
            # sites (including the demoted hub) re-point on reconnect.
            self._broadcast_all_sites(
                L2Promoted(self.site, self.wan_epoch, self.client_addr)
            )
        self._hub_pump()
        for site in self._relay_streams:
            acked = self._relay_acked.get(site)
            stalled = (
                acked is not None
                and self._relay_sent.get(site, 0) > acked
                and now - self._relay_progress_at.get(site, 0.0)
                > self.wan.stream_stall_ms
            )
            if stalled:
                self._flush_relays(force_from_ack=True)
                break
        else:
            self._flush_relays()

    def _gc_tick(self) -> None:
        """Re-issue close-session for ephemerals that leaked past a close."""
        now = self.env.now
        for session_id, last in list(self._gc_sessions.items()):
            if now - last < 4 * self.wan.wan_tick_ms:
                continue
            leftovers = self.tree.ephemerals_of(session_id)
            if not leftovers:
                del self._gc_sessions[session_id]
                continue
            self._gc_sessions[session_id] = now
            self.submit_system_txn(CloseSessionOp(session_id))

    def _expire_session(self, session_id: str) -> None:
        super()._expire_session(session_id)
        self._gc_sessions[session_id] = self.env.now

    # ------------------------------------------- strong reads (§VI tokens)

    def _read_delay_ms(self) -> float:
        return self.config.processing_delay_ms + self.wan.marshalling_overhead_ms

    def _handle_read(self, src: NodeAddress, msg: OpRequest) -> None:
        if self.wan.read_mode == "local":
            self._read_reply(src, msg)
            return
        op = msg.op
        key = token_key(op.path)
        # Holding the write token (exclusive: no foreign read leases exist
        # while it is held) makes site-local reads strong; likewise at the
        # hub while the token is home.
        if key in self.site_tokens.owned or (
            self.is_hub_site and self.hub_tokens.at_hub(key)
        ):
            self._read_reply(src, msg)
            return
        if self.wan.read_mode == "fractional" and isinstance(op, GetDataOp):
            lease = self._leases.get(op.path)
            fresh = lease is not None and lease.expires > self.env.now
            if lease is not None and (fresh or self.stale_reads):
                if self.sentinel is not None:
                    self.sentinel.on_lease_read(self, op.path, lease)
                self.reads_served += 1
                self.net.send(
                    self.client_addr,
                    src,
                    OpReply(msg.session_id, msg.cxid, ok=True, value=lease.payload),
                )
                return
        if self._l2_addr is None:
            return  # hub unknown; the client's timeout drives a retry
        self._lease_request_counter += 1
        request_id = self._lease_request_counter
        self._lease_pending[request_id] = (src, msg)
        if isinstance(op, GetDataOp):
            kind = "data"
        elif isinstance(op, ExistsOp):
            kind = "exists"
        else:
            kind = "children"
        want_lease = self.wan.read_mode == "fractional" and kind == "data"
        self.net.send(
            self.client_addr,
            self._l2_addr,
            ReadLeaseRequest(
                self.client_addr, self.site, op.path, key, kind, request_id,
                lease=want_lease,
            ),
        )

    def _on_read_lease_grant(self, src: NodeAddress, msg: ReadLeaseGrant) -> None:
        pending = self._lease_pending.pop(msg.request_id, None)
        if pending is None:
            return
        client_src, op_msg = pending
        self.reads_served += 1
        if msg.ok:
            if msg.lease_until > self.env.now:
                self._leases[msg.path] = LeaseEntry(
                    msg.path, msg.key, msg.payload, msg.lease_until
                )
            reply = OpReply(
                op_msg.session_id, op_msg.cxid, ok=True, value=msg.payload
            )
        else:
            reply = OpReply(
                op_msg.session_id,
                op_msg.cxid,
                ok=False,
                error_code=msg.error_code,
                error_path=msg.path,
            )
        self.net.send(self.client_addr, client_src, reply)

    def _on_read_invalidate(self, src: NodeAddress, msg: ReadInvalidate) -> None:
        keys = set(msg.keys)
        if self.sentinel is not None:
            self.sentinel.on_lease_invalidate_ack(self, keys)
        if not self.stale_reads:
            # A stale (adversarial) leader acks the invalidation like an
            # honest one but keeps the leases — the §VI coherence contract
            # broken at the reader; on_lease_read is the oracle.
            self._leases = {
                path: lease
                for path, lease in self._leases.items()
                if lease.key not in keys
            }
        self.net.send(
            self.client_addr, src, ReadInvalidateAck(self.client_addr, msg.keys)
        )

    # -- hub side -----------------------------------------------------------

    def _on_read_lease_request(self, src: NodeAddress, msg: ReadLeaseRequest) -> None:
        if not (self.is_hub_site and self.peer.is_leader):
            return
        self._pending_lease_reads.append((src, msg))
        self._pump_lease_reads()

    def _pump_lease_reads(self) -> None:
        remaining: List[Tuple[NodeAddress, ReadLeaseRequest]] = []
        for src, msg in self._pending_lease_reads:
            token_home = self.hub_tokens.at_hub(msg.key)
            write_pending = msg.lease and (
                self._key_wanted_by_queue(msg.key)
                or self._inflight_hub_keys.get(msg.key, 0) > 0
            )
            if token_home and not write_pending:
                self._grant_lease_read(src, msg)
            else:
                if not token_home:
                    self._request_recalls({msg.key})
                remaining.append((src, msg))
        self._pending_lease_reads = remaining

    def _grant_lease_read(self, src: NodeAddress, msg: ReadLeaseRequest) -> None:
        ok, payload, error_code = True, None, None
        try:
            if msg.op_kind == "data":
                payload = self.tree.get_data(msg.path)
            elif msg.op_kind == "exists":
                payload = self.tree.exists(msg.path)
            else:
                payload = self.tree.get_children(msg.path)
        except Exception as exc:  # ApiError — ship the code back
            code = getattr(exc, "code", None)
            if code is None:
                raise
            ok, error_code = False, code
        lease_until = 0.0
        if msg.lease and ok:
            lease_until = self.env.now + self.wan.read_lease_ms
            self._read_holders.setdefault(msg.key, {})[src] = lease_until
            if self.sentinel is not None:
                self.sentinel.on_lease_grant(self, msg.key)
            if self._trace is not None:
                self._trace.emit(self.env.now, "wan", "lease-grant", self.name,
                                 {"key": msg.key, "until": lease_until})
        self.net.send(
            self.client_addr,
            src,
            ReadLeaseGrant(
                msg.request_id, msg.path, msg.key, ok, payload, error_code,
                lease_until,
            ),
        )

    def _on_read_invalidate_ack(self, src: NodeAddress, msg: ReadInvalidateAck) -> None:
        if not (self.is_hub_site and self.peer.is_leader):
            return
        for key in msg.keys:  # lint: iteration-order-ok (Tuple[str, ...])
            holders = self._read_holders.get(key)
            if holders is not None:
                holders.pop(msg.sender, None)
                if not holders:
                    del self._read_holders[key]
        self._hub_pump()

    def _live_lease_holders(self, keys) -> Dict[str, List[NodeAddress]]:
        """Unexpired leaseholders per key, pruning expired entries."""
        now = self.env.now
        result: Dict[str, List[NodeAddress]] = {}
        # ``keys`` is often a set; sort so downstream invalidate sends
        # happen in a PYTHONHASHSEED-independent order.
        for key in sorted(keys):
            holders = self._read_holders.get(key)
            if not holders:
                continue
            live = {
                server: expiry
                for server, expiry in holders.items()
                if expiry > now
            }
            if live:
                self._read_holders[key] = live
                result[key] = sorted(live)
            else:
                del self._read_holders[key]
        return result

    def _send_invalidates(self, holders: Dict[str, List[NodeAddress]]) -> None:
        now = self.env.now
        by_server: Dict[NodeAddress, List[str]] = {}
        for key, servers in holders.items():
            last = self._invalidate_sent_at.get(key, -1e18)
            if now - last < self.wan.recall_retry_ms:
                continue
            self._invalidate_sent_at[key] = now
            for server in servers:
                by_server.setdefault(server, []).append(key)
        for server, keys in by_server.items():
            self.net.send(
                self.client_addr, server, ReadInvalidate(tuple(sorted(keys)))
            )

    # ------------------------------------------------------------ inspection

    def owned_token_count(self) -> int:
        return len(self.site_tokens.owned)

    def migrated_token_count(self) -> int:
        return self.hub_tokens.migrated_count()
