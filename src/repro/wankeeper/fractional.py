"""Fractional read/write tokens (paper §VI, future work).

The paper proposes K read-tokens per record (one per site): a site holding
a read-token serves strongly consistent reads locally; a write requires all
K read-tokens at one site, otherwise it is forwarded to the level-2 broker
— which must first invalidate outstanding read-tokens so no site serves a
stale value after the write commits.

The implementation here realizes that design as *read leases*:

* a server lacking a lease (and whose site lacks the write token) forwards
  the read to the hub; the grant carries the hub's current result and a
  lease, cached at the server;
* reads under a valid lease are served from the lease cache — coherent
  because the hub invalidates all leases on a record *before* committing
  any write to it, and write-token grants are withheld while foreign
  leases exist;
* leases expire after ``read_lease_ms`` as a liveness backstop (an
  unreachable leaseholder cannot block writers forever — the lease is the
  paper's token lease, §II-B).

Three read modes compose the ablation (A4): ``local`` (the paper's default
causal reads), ``forward`` (every read pays a WAN trip to the hub —
linearizable but slow), and ``fractional`` (leases amortize the WAN trip
across repeated reads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.net.topology import NodeAddress

__all__ = [
    "ReadInvalidate",
    "ReadInvalidateAck",
    "ReadLeaseGrant",
    "ReadLeaseRequest",
    "LeaseEntry",
]


@dataclass(frozen=True)
class ReadLeaseRequest:
    """Server -> hub: strong read of ``path`` (token key ``key``).

    ``lease`` False = one-shot forwarded read (the "forward" mode);
    True = also grant a read lease (the "fractional" mode).
    """

    sender: NodeAddress
    site: str
    path: str
    key: str
    op_kind: str  # "data" | "exists" | "children"
    request_id: int
    lease: bool = True


@dataclass(frozen=True)
class ReadLeaseGrant:
    """Hub -> server: the read result (+ lease when requested)."""

    request_id: int
    path: str
    key: str
    ok: bool
    payload: Any = None  # (data, stat) | stat|None | [children]
    error_code: Optional[str] = None
    lease_until: float = 0.0  # 0 = no lease granted


@dataclass(frozen=True)
class ReadInvalidate:
    """Hub -> leaseholder: drop your lease on ``keys`` (a write is coming)."""

    keys: Tuple[str, ...]


@dataclass(frozen=True)
class ReadInvalidateAck:
    sender: NodeAddress
    keys: Tuple[str, ...]


@dataclass
class LeaseEntry:
    """A server-side cached read lease for one data path."""

    path: str
    key: str
    payload: Any
    expires: float
