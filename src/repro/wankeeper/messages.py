"""WAN-layer messages and replicated transaction wrappers.

Two kinds of definitions live here:

* **control messages** exchanged between level-1 site leaders and the
  level-2 broker over the WAN (submit, replicate, recall, heartbeat);
* **replicated payloads** committed inside site/hub ensembles: the
  :class:`WanTxn` wrapper around a client transaction (carrying origin and
  piggybacked token grants, per protocol Fig. 2) and the token marker ops
  that make token state recoverable from the log (§II-D fault tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.net.topology import NodeAddress
from repro.zk.ops import Txn

__all__ = [
    "L2Promoted",
    "L2PromotionRequest",
    "L2PromotionVote",
    "RelayNoopOp",
    "RemoteApply",
    "SiteReplicate",
    "TokenAcceptOp",
    "TokenGrant",
    "TokenRecall",
    "TokenReleaseOp",
    "TokenReturn",
    "TokenSyncOp",
    "WanAck",
    "WanEpochOp",
    "WanHeartbeat",
    "WanHeartbeatAck",
    "WanHello",
    "WanSubmit",
    "WanTxn",
    "WanWelcome",
    "wan_id_of",
]


def wan_id_of(txn: Txn) -> Tuple[str, int]:
    """Globally unique id of a client transaction (session ids are unique)."""
    return (txn.session_id, txn.cxid)


# -- replicated payloads -------------------------------------------------------


@dataclass(frozen=True)
class TokenGrant:
    """Hub -> site token migration, piggybacked on a committed WanTxn."""

    key: str
    site: str


@dataclass(frozen=True)
class WanTxn:
    """A client transaction wrapped for WanKeeper replication.

    ``serialized_at`` is either a site name (local commit under a held
    token) or ``"l2"`` (hub serialization). ``grants`` are the token
    migrations decided when the hub serialized this txn — applying the
    commit applies the grant on every replica, which is what makes grants
    recoverable after leader failures.
    """

    txn: Txn
    origin_site: str
    serialized_at: str
    grants: Tuple[TokenGrant, ...] = ()

    @property
    def wan_id(self) -> Tuple[str, int]:
        return wan_id_of(self.txn)


@dataclass(frozen=True)
class TokenReleaseOp:
    """Marker committed in a *site* ensemble: this site gives up ``keys``.

    Committed locally before the TokenReturn control message is sent, so a
    new site leader never believes it still holds a returned token.
    """

    keys: Tuple[str, ...]


@dataclass(frozen=True)
class TokenAcceptOp:
    """Marker committed in the *hub* ensemble: returns from ``site`` landed.

    Once applied, the hub may serialize transactions on ``keys`` again.
    """

    keys: Tuple[str, ...]
    site: str


# -- WAN control messages -----------------------------------------------------


@dataclass(frozen=True)
class WanHello:
    """Site server -> hub-site servers: who is the level-2 leader?

    ``is_site_leader`` distinguishes the site's broker (whose address the
    hub records as the relay target) from followers probing only for the
    strong-read path.
    """

    site: str
    sender: NodeAddress
    is_site_leader: bool = True


@dataclass(frozen=True)
class WanWelcome:
    """Hub leader -> site leader: I'm the level-2 broker."""

    l2_addr: NodeAddress


@dataclass(frozen=True)
class WanSubmit:
    """Site -> hub: serialize this transaction (tokens missing at site)."""

    site: str
    sender: NodeAddress
    txn: Txn


@dataclass(frozen=True)
class SiteReplicate:
    """Site -> hub: a locally committed transaction, for global visibility.

    ``seq`` is the site's WAN replication sequence number (dedup + FIFO
    check); retried until the hub acks.
    """

    site: str
    sender: NodeAddress
    seq: int
    wan_txn: "WanTxn"


@dataclass(frozen=True)
class RemoteApply:
    """Hub -> site: a hub-ensemble commit to apply in the site ensemble.

    Carries hub commit order in ``seq``; ``to_origin`` marks the copy going
    back to the transaction's origin site (whose accepting server replies
    to the client once the site ensemble applies it).
    """

    seq: int
    wan_txn: "WanTxn"
    to_origin: bool = False


@dataclass(frozen=True)
class WanAck:
    """Apply-level ack for SiteReplicate / RemoteApply retry loops."""

    site: str
    seq: int


@dataclass(frozen=True)
class TokenRecall:
    """Hub -> site: terminate the lease on ``keys``; return them.

    ``grant_counts`` carries, per key, how many grants to this site the hub
    has committed. A recall can overtake the granting WanTxn on the relay
    stream (the recall is a direct message, the grant is replicated); the
    count lets the site tell "grant still in flight" apart from "already
    released" instead of wrongly re-acking a token it is about to receive.
    """

    keys: Tuple[str, ...]
    grant_counts: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class TokenReturn:
    """Site -> hub: ``keys`` released (after the local release marker)."""

    site: str
    sender: NodeAddress
    keys: Tuple[str, ...]


@dataclass(frozen=True)
class WanHeartbeat:
    """Site leader -> hub leader: liveness + live client sessions.

    Live-session piggybacking maintains cross-site ephemeral znodes (paper
    §III-B, "WAN Heartbeater"). ``applied_relay_seq`` reports the site's
    cumulative relay watermark so a newly elected hub leader can resume the
    relay stream from the right position. ``owned_tokens`` is the site's
    full token inventory, included when the hub requested it (a freshly
    promoted level-2 site rebuilding its location map).
    """

    site: str
    sender: NodeAddress
    live_sessions: Tuple[str, ...] = ()
    applied_relay_seq: int = 0
    owned_tokens: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class WanHeartbeatAck:
    """Hub leader -> site leader: ack + the hub's absorbed-replicate count
    (lets a newly elected site leader resume its replicate stream).
    ``need_inventory`` asks the site to include its token inventory in the
    next heartbeat (level-2 promotion recovery)."""

    l2_addr: NodeAddress
    known_sites: Tuple[str, ...] = ()
    absorbed: int = 0
    need_inventory: bool = False


# -- level-2 failover (paper §II-D: "flexible level-2 site") -------------------


@dataclass(frozen=True)
class L2PromotionRequest:
    """Successor-site leader -> all site servers: the level-2 site looks
    dead; vote for me as the new level-2 for ``epoch``."""

    candidate_site: str
    sender: NodeAddress
    epoch: int


@dataclass(frozen=True)
class L2PromotionVote:
    voter_site: str
    sender: NodeAddress
    epoch: int
    agree: bool


@dataclass(frozen=True)
class L2Promoted:
    """New hub leader -> all servers everywhere: epoch/new hub announcement.

    Rebroadcast periodically so a partitioned-away old hub site demotes
    itself when it reconnects."""

    new_l2_site: str
    epoch: int
    sender: NodeAddress


# -- replicated markers supporting failover ------------------------------------


@dataclass(frozen=True)
class WanEpochOp:
    """Marker committed in a *site* ensemble: adopt a new WAN epoch with
    ``l2_site`` as the hub. Applying it resets the site's relay watermark
    (the new hub replays its filtered history; duplicates become
    RelayNoopOp markers)."""

    epoch: int
    l2_site: str


@dataclass(frozen=True)
class RelayNoopOp:
    """Marker committed in a *site* ensemble: a replayed relay entry the
    site had already applied. Advances the derived relay watermark without
    touching the tree."""

    wan_id: Tuple[str, int]


@dataclass(frozen=True)
class TokenSyncOp:
    """Marker committed in the *hub* ensemble after promotion: ``site``'s
    token holdings are exactly ``keys`` (inventory reconciliation)."""

    site: str
    keys: Tuple[str, ...]
