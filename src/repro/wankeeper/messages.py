"""WAN-layer messages and replicated transaction wrappers.

Two kinds of definitions live here:

* **control messages** exchanged between level-1 site leaders and the
  level-2 broker over the WAN (submit, replicate, recall, heartbeat);
* **replicated payloads** committed inside site/hub ensembles: the
  :class:`WanTxn` wrapper around a client transaction (carrying origin and
  piggybacked token grants, per protocol Fig. 2) and the token marker ops
  that make token state recoverable from the log (§II-D fault tolerance).

All classes are hand-written ``__slots__`` records (same pattern as
:mod:`repro.net.message` and :mod:`repro.zab.messages`): every committed
write allocates a WanTxn plus one or more control messages, and the frozen
dataclass ``__init__`` showed up in profiles. Equality and hash match the
frozen dataclasses they replaced (field-tuple semantics), so container
iteration orders are unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.topology import NodeAddress
from repro.zk.ops import Txn

__all__ = [
    "L2Promoted",
    "L2PromotionRequest",
    "L2PromotionVote",
    "RelayNoopOp",
    "RemoteApply",
    "SiteReplicate",
    "TokenAcceptOp",
    "TokenGrant",
    "TokenRecall",
    "TokenReleaseOp",
    "TokenReturn",
    "TokenSyncOp",
    "WanAck",
    "WanEpochOp",
    "WanHeartbeat",
    "WanHeartbeatAck",
    "WanHello",
    "WanSubmit",
    "WanTxn",
    "WanWelcome",
    "wan_id_of",
]


def wan_id_of(txn: Txn) -> Tuple[str, int]:
    """Globally unique id of a client transaction (session ids are unique)."""
    return (txn.session_id, txn.cxid)


# -- replicated payloads -------------------------------------------------------


class TokenGrant:
    """Hub -> site token migration, piggybacked on a committed WanTxn."""

    __slots__ = ('key', 'site')

    def __init__(self, key: str, site: str):
        self.key = key
        self.site = site

    def _astuple(self) -> tuple:
        return (self.key, self.site)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not TokenGrant:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"TokenGrant(key={self.key!r}, site={self.site!r})"


class WanTxn:
    """A client transaction wrapped for WanKeeper replication.

    ``serialized_at`` is either a site name (local commit under a held
    token) or ``"l2"`` (hub serialization). ``grants`` are the token
    migrations decided when the hub serialized this txn — applying the
    commit applies the grant on every replica, which is what makes grants
    recoverable after leader failures.
    """

    __slots__ = ('txn', 'origin_site', 'serialized_at', 'grants')

    def __init__(
        self,
        txn: Txn,
        origin_site: str,
        serialized_at: str,
        grants: Tuple[TokenGrant, ...] = (),
    ):
        self.txn = txn
        self.origin_site = origin_site
        self.serialized_at = serialized_at
        self.grants = grants

    @property
    def wan_id(self) -> Tuple[str, int]:
        return wan_id_of(self.txn)

    def _astuple(self) -> tuple:
        return (self.txn, self.origin_site, self.serialized_at, self.grants)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WanTxn:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"WanTxn(txn={self.txn!r}, origin_site={self.origin_site!r}, "
            f"serialized_at={self.serialized_at!r}, grants={self.grants!r})"
        )


class TokenReleaseOp:
    """Marker committed in a *site* ensemble: this site gives up ``keys``.

    Committed locally before the TokenReturn control message is sent, so a
    new site leader never believes it still holds a returned token.
    """

    __slots__ = ('keys',)

    def __init__(self, keys: Tuple[str, ...]):
        self.keys = keys

    def _astuple(self) -> tuple:
        return (self.keys,)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not TokenReleaseOp:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"TokenReleaseOp(keys={self.keys!r})"


class TokenAcceptOp:
    """Marker committed in the *hub* ensemble: returns from ``site`` landed.

    Once applied, the hub may serialize transactions on ``keys`` again.
    """

    __slots__ = ('keys', 'site')

    def __init__(self, keys: Tuple[str, ...], site: str):
        self.keys = keys
        self.site = site

    def _astuple(self) -> tuple:
        return (self.keys, self.site)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not TokenAcceptOp:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"TokenAcceptOp(keys={self.keys!r}, site={self.site!r})"


# -- WAN control messages -----------------------------------------------------


class WanHello:
    """Site server -> hub-site servers: who is the level-2 leader?

    ``is_site_leader`` distinguishes the site's broker (whose address the
    hub records as the relay target) from followers probing only for the
    strong-read path.
    """

    __slots__ = ('site', 'sender', 'is_site_leader')

    def __init__(
        self, site: str, sender: NodeAddress, is_site_leader: bool = True
    ):
        self.site = site
        self.sender = sender
        self.is_site_leader = is_site_leader

    def _astuple(self) -> tuple:
        return (self.site, self.sender, self.is_site_leader)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WanHello:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"WanHello(site={self.site!r}, sender={self.sender!r}, "
            f"is_site_leader={self.is_site_leader!r})"
        )


class WanWelcome:
    """Hub leader -> site leader: I'm the level-2 broker."""

    __slots__ = ('l2_addr',)

    def __init__(self, l2_addr: NodeAddress):
        self.l2_addr = l2_addr

    def _astuple(self) -> tuple:
        return (self.l2_addr,)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WanWelcome:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"WanWelcome(l2_addr={self.l2_addr!r})"


class WanSubmit:
    """Site -> hub: serialize this transaction (tokens missing at site)."""

    __slots__ = ('site', 'sender', 'txn')

    def __init__(self, site: str, sender: NodeAddress, txn: Txn):
        self.site = site
        self.sender = sender
        self.txn = txn

    def _astuple(self) -> tuple:
        return (self.site, self.sender, self.txn)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WanSubmit:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"WanSubmit(site={self.site!r}, sender={self.sender!r}, "
            f"txn={self.txn!r})"
        )


class SiteReplicate:
    """Site -> hub: a locally committed transaction, for global visibility.

    ``seq`` is the site's WAN replication sequence number (dedup + FIFO
    check); retried until the hub acks.
    """

    __slots__ = ('site', 'sender', 'seq', 'wan_txn')

    def __init__(
        self, site: str, sender: NodeAddress, seq: int, wan_txn: WanTxn
    ):
        self.site = site
        self.sender = sender
        self.seq = seq
        self.wan_txn = wan_txn

    def _astuple(self) -> tuple:
        return (self.site, self.sender, self.seq, self.wan_txn)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not SiteReplicate:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"SiteReplicate(site={self.site!r}, sender={self.sender!r}, "
            f"seq={self.seq!r}, wan_txn={self.wan_txn!r})"
        )


class RemoteApply:
    """Hub -> site: a hub-ensemble commit to apply in the site ensemble.

    Carries hub commit order in ``seq``; ``to_origin`` marks the copy going
    back to the transaction's origin site (whose accepting server replies
    to the client once the site ensemble applies it).
    """

    __slots__ = ('seq', 'wan_txn', 'to_origin')

    def __init__(self, seq: int, wan_txn: WanTxn, to_origin: bool = False):
        self.seq = seq
        self.wan_txn = wan_txn
        self.to_origin = to_origin

    def _astuple(self) -> tuple:
        return (self.seq, self.wan_txn, self.to_origin)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not RemoteApply:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"RemoteApply(seq={self.seq!r}, wan_txn={self.wan_txn!r}, "
            f"to_origin={self.to_origin!r})"
        )


class WanAck:
    """Apply-level ack for SiteReplicate / RemoteApply retry loops."""

    __slots__ = ('site', 'seq')

    def __init__(self, site: str, seq: int):
        self.site = site
        self.seq = seq

    def _astuple(self) -> tuple:
        return (self.site, self.seq)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WanAck:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"WanAck(site={self.site!r}, seq={self.seq!r})"


class TokenRecall:
    """Hub -> site: terminate the lease on ``keys``; return them.

    ``grant_counts`` carries, per key, how many grants to this site the hub
    has committed. A recall can overtake the granting WanTxn on the relay
    stream (the recall is a direct message, the grant is replicated); the
    count lets the site tell "grant still in flight" apart from "already
    released" instead of wrongly re-acking a token it is about to receive.
    """

    __slots__ = ('keys', 'grant_counts')

    def __init__(
        self,
        keys: Tuple[str, ...],
        grant_counts: Optional[Tuple[int, ...]] = None,
    ):
        self.keys = keys
        self.grant_counts = grant_counts

    def _astuple(self) -> tuple:
        return (self.keys, self.grant_counts)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not TokenRecall:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"TokenRecall(keys={self.keys!r}, grant_counts={self.grant_counts!r})"


class TokenReturn:
    """Site -> hub: ``keys`` released (after the local release marker).

    ``seq`` is the releasing site's replicate-stream length at the release
    commit — every local commit the site made while holding the keys sits
    at or below it. The hub must absorb the site's stream up to ``seq``
    before accepting the return: the return travels outside the go-back-N
    stream, so under loss it can overtake the very commits (e.g. the
    create of a returned key) the next hub-serialized write depends on.
    """

    __slots__ = ('site', 'sender', 'keys', 'seq')

    def __init__(
        self,
        site: str,
        sender: NodeAddress,
        keys: Tuple[str, ...],
        seq: int = 0,
    ):
        self.site = site
        self.sender = sender
        self.keys = keys
        self.seq = seq

    def _astuple(self) -> tuple:
        return (self.site, self.sender, self.keys, self.seq)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not TokenReturn:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"TokenReturn(site={self.site!r}, sender={self.sender!r}, "
            f"keys={self.keys!r}, seq={self.seq})"
        )


class WanHeartbeat:
    """Site leader -> hub leader: liveness + live client sessions.

    Live-session piggybacking maintains cross-site ephemeral znodes (paper
    §III-B, "WAN Heartbeater"). ``applied_relay_seq`` reports the site's
    cumulative relay watermark so a newly elected hub leader can resume the
    relay stream from the right position. ``owned_tokens`` is the site's
    full token inventory, included when the hub requested it (a freshly
    promoted level-2 site rebuilding its location map).
    """

    __slots__ = (
        'site',
        'sender',
        'live_sessions',
        'applied_relay_seq',
        'owned_tokens',
    )

    def __init__(
        self,
        site: str,
        sender: NodeAddress,
        live_sessions: Tuple[str, ...] = (),
        applied_relay_seq: int = 0,
        owned_tokens: Optional[Tuple[str, ...]] = None,
    ):
        self.site = site
        self.sender = sender
        self.live_sessions = live_sessions
        self.applied_relay_seq = applied_relay_seq
        self.owned_tokens = owned_tokens

    def _astuple(self) -> tuple:
        return (
            self.site,
            self.sender,
            self.live_sessions,
            self.applied_relay_seq,
            self.owned_tokens,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WanHeartbeat:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"WanHeartbeat(site={self.site!r}, sender={self.sender!r}, "
            f"live_sessions={self.live_sessions!r}, "
            f"applied_relay_seq={self.applied_relay_seq!r}, "
            f"owned_tokens={self.owned_tokens!r})"
        )


class WanHeartbeatAck:
    """Hub leader -> site leader: ack + the hub's absorbed-replicate count
    (lets a newly elected site leader resume its replicate stream).
    ``need_inventory`` asks the site to include its token inventory in the
    next heartbeat (level-2 promotion recovery)."""

    __slots__ = ('l2_addr', 'known_sites', 'absorbed', 'need_inventory')

    def __init__(
        self,
        l2_addr: NodeAddress,
        known_sites: Tuple[str, ...] = (),
        absorbed: int = 0,
        need_inventory: bool = False,
    ):
        self.l2_addr = l2_addr
        self.known_sites = known_sites
        self.absorbed = absorbed
        self.need_inventory = need_inventory

    def _astuple(self) -> tuple:
        return (self.l2_addr, self.known_sites, self.absorbed, self.need_inventory)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WanHeartbeatAck:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"WanHeartbeatAck(l2_addr={self.l2_addr!r}, "
            f"known_sites={self.known_sites!r}, absorbed={self.absorbed!r}, "
            f"need_inventory={self.need_inventory!r})"
        )


# -- level-2 failover (paper §II-D: "flexible level-2 site") -------------------


class L2PromotionRequest:
    """Successor-site leader -> all site servers: the level-2 site looks
    dead; vote for me as the new level-2 for ``epoch``."""

    __slots__ = ('candidate_site', 'sender', 'epoch')

    def __init__(self, candidate_site: str, sender: NodeAddress, epoch: int):
        self.candidate_site = candidate_site
        self.sender = sender
        self.epoch = epoch

    def _astuple(self) -> tuple:
        return (self.candidate_site, self.sender, self.epoch)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not L2PromotionRequest:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"L2PromotionRequest(candidate_site={self.candidate_site!r}, "
            f"sender={self.sender!r}, epoch={self.epoch!r})"
        )


class L2PromotionVote:
    __slots__ = ('voter_site', 'sender', 'epoch', 'agree')

    def __init__(
        self, voter_site: str, sender: NodeAddress, epoch: int, agree: bool
    ):
        self.voter_site = voter_site
        self.sender = sender
        self.epoch = epoch
        self.agree = agree

    def _astuple(self) -> tuple:
        return (self.voter_site, self.sender, self.epoch, self.agree)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not L2PromotionVote:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"L2PromotionVote(voter_site={self.voter_site!r}, "
            f"sender={self.sender!r}, epoch={self.epoch!r}, "
            f"agree={self.agree!r})"
        )


class L2Promoted:
    """New hub leader -> all servers everywhere: epoch/new hub announcement.

    Rebroadcast periodically so a partitioned-away old hub site demotes
    itself when it reconnects."""

    __slots__ = ('new_l2_site', 'epoch', 'sender')

    def __init__(self, new_l2_site: str, epoch: int, sender: NodeAddress):
        self.new_l2_site = new_l2_site
        self.epoch = epoch
        self.sender = sender

    def _astuple(self) -> tuple:
        return (self.new_l2_site, self.epoch, self.sender)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not L2Promoted:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"L2Promoted(new_l2_site={self.new_l2_site!r}, "
            f"epoch={self.epoch!r}, sender={self.sender!r})"
        )


# -- replicated markers supporting failover ------------------------------------


class WanEpochOp:
    """Marker committed in a *site* ensemble: adopt a new WAN epoch with
    ``l2_site`` as the hub. Applying it resets the site's relay watermark
    (the new hub replays its filtered history; duplicates become
    RelayNoopOp markers)."""

    __slots__ = ('epoch', 'l2_site')

    def __init__(self, epoch: int, l2_site: str):
        self.epoch = epoch
        self.l2_site = l2_site

    def _astuple(self) -> tuple:
        return (self.epoch, self.l2_site)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not WanEpochOp:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"WanEpochOp(epoch={self.epoch!r}, l2_site={self.l2_site!r})"


class RelayNoopOp:
    """Marker committed in a *site* ensemble: a replayed relay entry the
    site had already applied. Advances the derived relay watermark without
    touching the tree."""

    __slots__ = ('wan_id',)

    def __init__(self, wan_id: Tuple[str, int]):
        self.wan_id = wan_id

    def _astuple(self) -> tuple:
        return (self.wan_id,)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not RelayNoopOp:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"RelayNoopOp(wan_id={self.wan_id!r})"


class TokenSyncOp:
    """Marker committed in the *hub* ensemble after promotion: ``site``'s
    token holdings are exactly ``keys`` (inventory reconciliation)."""

    __slots__ = ('site', 'keys')

    def __init__(self, site: str, keys: Tuple[str, ...]):
        self.site = site
        self.keys = keys

    def _astuple(self) -> tuple:
        return (self.site, self.keys)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not TokenSyncOp:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"TokenSyncOp(site={self.site!r}, keys={self.keys!r})"
