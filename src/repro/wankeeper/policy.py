"""Token migration policies.

The level-2 broker consults a :class:`MigrationPolicy` every time it
serializes a transaction: should the token for this record move to the
requesting site? The paper's production rule (§II-B) is *r consecutive
requests from the same server* with ``r = 2`` as the recommended default;
the policy interface also hosts the paper's knobs — never/always migrate
and Markov-model proactive prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.wankeeper.prediction import MarkovPredictor

__all__ = [
    "AlwaysMigratePolicy",
    "ConsecutiveAccessPolicy",
    "MarkovPolicy",
    "MigrationPolicy",
    "NeverMigratePolicy",
]


class MigrationPolicy:
    """Decides, per hub-serialized access, whether to migrate a token."""

    def observe_and_decide(self, key: str, site: str) -> bool:
        """Record an access of ``key`` by ``site``; True = migrate now."""
        raise NotImplementedError

    def observe(self, key: str, site: str) -> None:
        """Record an access the hub did *not* serialize (a replicated
        local commit). Keeps learning-based policies informed about
        accesses happening under migrated tokens; default: ignore."""

    def forget(self, key: str) -> None:
        """The token for ``key`` came home (recall); reset its history."""


@dataclass
class ConsecutiveAccessPolicy(MigrationPolicy):
    """The paper's rule: migrate after ``r`` consecutive same-site accesses.

    ``r = 2`` is the paper's recommended heuristic ("we identify r = 2 as a
    good heuristic for reaping benefits of access locality").
    """

    r: int = 2
    _streaks: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.r < 1:
            raise ValueError(f"r must be a positive integer, got {self.r}")

    def observe_and_decide(self, key: str, site: str) -> bool:
        last_site, count = self._streaks.get(key, (None, 0))
        count = count + 1 if site == last_site else 1
        self._streaks[key] = (site, count)
        if count >= self.r:
            del self._streaks[key]
            return True
        return False

    def forget(self, key: str) -> None:
        self._streaks.pop(key, None)


class NeverMigratePolicy(MigrationPolicy):
    """Tokens pinned at the hub: every write is serialized by level-2.

    This degenerates WanKeeper into a centralized coordinator (akin to the
    ZooKeeper-with-observers baseline) and anchors the ablation benches.
    """

    def observe_and_decide(self, key: str, site: str) -> bool:
        return False


class AlwaysMigratePolicy(MigrationPolicy):
    """Migrate on first access (``r = 1``): maximum locality, maximum
    thrash under contention."""

    def observe_and_decide(self, key: str, site: str) -> bool:
        return True


@dataclass
class MarkovPolicy(MigrationPolicy):
    """Proactive policy: consult a Markov model of access patterns.

    Falls back to the consecutive-``r`` rule, but additionally migrates on
    the *first* access when the model predicts the same site accesses the
    record next with probability at least ``threshold`` (§II-B).
    """

    r: int = 2
    threshold: float = 0.6
    window: int = 256
    predictor: MarkovPredictor = field(default=None)  # type: ignore[assignment]
    _fallback: ConsecutiveAccessPolicy = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if self.predictor is None:
            self.predictor = MarkovPredictor(window=self.window)
        self._fallback = ConsecutiveAccessPolicy(r=self.r)

    def observe_and_decide(self, key: str, site: str) -> bool:
        prediction: Optional[Tuple[str, float]] = self.predictor.predict_next_site(
            key, site
        )
        self.predictor.observe(key, site)
        streak_says = self._fallback.observe_and_decide(key, site)
        if streak_says:
            return True
        if prediction is not None:
            predicted_site, probability = prediction
            if predicted_site == site and probability >= self.threshold:
                self._fallback.forget(key)
                return True
        return False

    def observe(self, key: str, site: str) -> None:
        """Replicated local commits train the model (the broker's "lock
        access log" includes them) without advancing migration streaks."""
        self.predictor.observe(key, site)

    def forget(self, key: str) -> None:
        self._fallback.forget(key)
