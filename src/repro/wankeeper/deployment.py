"""WanKeeper deployment builder.

Builds the paper's deployment shape (§III): one ZooKeeper-style ensemble
per site, the designated level-2 site's ensemble doubling as the hub.
Clients connect to a server in their own site and enjoy local reads always
and local writes whenever their site holds the tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.invariants import maybe_attach_sentinel
from repro.net.topology import NodeAddress, Topology, VIRGINIA
from repro.net.transport import Network
from repro.sim.kernel import Environment, SimulationError
from repro.wankeeper.policy import ConsecutiveAccessPolicy, MigrationPolicy
from repro.wankeeper.server import WanConfig, WanKeeperServer
from repro.zab.config import EnsembleConfig
from repro.zk.client import ZkClient

__all__ = ["WanKeeperDeployment", "build_wankeeper_deployment"]


@dataclass
class WanKeeperDeployment:
    """A running WanKeeper system: one ensemble per site."""

    env: Environment
    net: Network
    topology: Topology
    wan: WanConfig
    servers: List[WanKeeperServer]
    by_site: Dict[str, List[WanKeeperServer]]
    sentinel: Optional[object] = None
    _clients: List[ZkClient] = field(default_factory=list)
    _client_counter: int = 0

    def start(self) -> None:
        for server in self.servers:
            server.start()

    def stabilize(self, max_ms: float = 60000.0) -> None:
        """Run until every site has a leader and knows the level-2 broker."""
        deadline = self.env.now + max_ms
        while self.env.now < deadline:
            if self._stable():
                return
            self.env.run(until=self.env.now + 50.0)
        raise SimulationError("WanKeeper deployment failed to stabilize")

    def _stable(self) -> bool:
        for site, servers in self.by_site.items():
            leader = next((s for s in servers if s.is_leader), None)
            if leader is None:
                return False
            if site != self.wan.l2_site and leader._l2_addr is None:
                return False
        return True

    def site_leader(self, site: str) -> Optional[WanKeeperServer]:
        for server in self.by_site[site]:
            if server.is_leader:
                return server
        return None

    @property
    def current_l2_site(self) -> str:
        """The acting hub site (may differ from config after failover)."""
        live = [s for s in self.servers if s.is_alive]
        if not live:
            return self.wan.l2_site
        best = max(live, key=lambda s: s.wan_epoch)
        return best.current_l2_site

    @property
    def hub_leader(self) -> Optional[WanKeeperServer]:
        return self.site_leader(self.current_l2_site)

    def server_at(self, site: str) -> WanKeeperServer:
        for server in self.by_site[site]:
            if server.is_alive:
                return server
        raise ValueError(f"no live server in site {site!r}")

    def client(
        self,
        site: str,
        name: str = "",
        session_timeout_ms: float = 6000.0,
        request_timeout_ms: float = 10000.0,
    ) -> ZkClient:
        """Create a client in ``site`` bound to that site's local server."""
        self._client_counter += 1
        client_name = name or f"client{self._client_counter}"
        addr = self.topology.site(site).address(f"{client_name}@{site}")
        client = ZkClient(
            self.env,
            self.net,
            addr,
            self.server_at(site).client_addr,
            session_timeout_ms=session_timeout_ms,
            request_timeout_ms=request_timeout_ms,
            name=client_name,
        )
        self._clients.append(client)
        return client

    def tokens_owned_by(self, site: str) -> int:
        leader = self.site_leader(site)
        return len(leader.site_tokens.owned) if leader else 0

    def pin_token(self, key: str, site: str) -> None:
        """Admin knob (paper §I): move/pin a record's token to ``site``."""
        hub = self.hub_leader
        if hub is None:
            raise RuntimeError("no level-2 broker available")
        hub.assign_token(key, site)

    def add_site(
        self,
        site_name: str,
        one_way_ms: Dict[str, float],
        voters: int = 3,
    ) -> List[WanKeeperServer]:
        """Dynamically add a level-1 site (paper §II-D: "a new l1 site can
        be dynamically added with a fresh start").

        ``one_way_ms`` gives the one-way WAN delay to each existing site.
        The new site starts with no tokens: its first writes are serialized
        at level-2 and it receives the full relay history; tokens then
        migrate to it under the normal policy. Note: the site does not
        join the level-2 failover electorate (founding sites only).
        """
        from repro.net.topology import Site

        if site_name in self.by_site:
            raise ValueError(f"site {site_name!r} already exists")
        if site_name not in self.topology.sites:
            self.topology.sites[site_name] = Site(site_name)
        for other in list(self.by_site):
            if other not in one_way_ms:
                raise ValueError(f"missing latency to existing site {other!r}")
            self.topology.set_one_way(site_name, other, one_way_ms[other])

        from repro.zab.config import EnsembleConfig

        zab_addrs = [
            self.topology.site(site_name).address(f"wk{i}.zab")
            for i in range(voters)
        ]
        config = EnsembleConfig(voters=zab_addrs)
        client_addrs = []
        new_servers: List[WanKeeperServer] = []
        for zab_addr in zab_addrs:
            client_name = zab_addr.name.replace(".zab", "")
            client_addr = self.topology.site(site_name).address(client_name)
            client_addrs.append(client_addr)
            server = WanKeeperServer(
                self.env,
                self.net,
                zab_addr,
                client_addr,
                config,
                self.wan,
                name=f"{site_name}/{client_name}",
            )
            new_servers.append(server)
        # Visible to every existing server (shared WanConfig instance):
        # promotion broadcasts and L2Promoted now reach the new site.
        self.wan.site_server_addrs[site_name] = tuple(client_addrs)
        self.by_site[site_name] = new_servers
        self.servers.extend(new_servers)
        if self.sentinel is not None:
            # Late-joining servers watch the same trace and invariants.
            if self.env.trace is not None:
                for server in new_servers:
                    server._trace = self.env.trace
                    server.peer._trace = self.env.trace
            self.sentinel.adopt(new_servers)
        for server in new_servers:
            server.start()
        return new_servers

    def content_fingerprints(self) -> Dict[str, int]:
        return {server.name: server.tree.fingerprint() for server in self.servers}


def build_wankeeper_deployment(
    env: Environment,
    net: Network,
    topology: Topology,
    sites: Optional[Sequence[str]] = None,
    l2_site: str = VIRGINIA,
    voters_per_site: int = 3,
    policy_factory: Callable[[], MigrationPolicy] = ConsecutiveAccessPolicy,
    initial_tokens: Optional[Dict[str, str]] = None,
    heartbeat_interval_ms: float = 50.0,
    election_timeout_ms: float = 300.0,
    processing_delay_ms: float = 0.02,
    wan_tick_ms: float = 100.0,
    read_mode: str = "local",
    read_lease_ms: float = 3000.0,
    enable_l2_failover: bool = False,
    substrate: str = "zab",
) -> WanKeeperDeployment:
    """Build a WanKeeper deployment: one ensemble per site, hub at l2_site.

    ``substrate`` selects the broadcast protocol under every site
    ensemble (must be single-leader; see :mod:`repro.substrate`). The
    shared :class:`WanConfig` carries it so dynamically added sites
    (:meth:`WanKeeperDeployment.add_site`) build on the same substrate.
    """
    sites = tuple(sites if sites is not None else topology.site_names())
    if l2_site not in sites:
        raise ValueError(f"l2 site {l2_site!r} not among sites {sites}")

    hub_client_addrs: List[NodeAddress] = []
    site_server_addrs: Dict[str, tuple] = {}
    site_configs: Dict[str, EnsembleConfig] = {}
    addresses: Dict[str, List] = {}
    for site in sites:
        voters = [
            topology.site(site).address(f"wk{i}.zab") for i in range(voters_per_site)
        ]
        site_configs[site] = EnsembleConfig(
            voters=voters,
            heartbeat_interval_ms=heartbeat_interval_ms,
            election_timeout_ms=election_timeout_ms,
            processing_delay_ms=processing_delay_ms,
        )
        addresses[site] = voters
        client_addrs = []
        for voter in voters:
            client_addr = topology.site(site).address(voter.name.replace(".zab", ""))
            client_addrs.append(client_addr)
            if site == l2_site:
                hub_client_addrs.append(client_addr)
        site_server_addrs[site] = tuple(client_addrs)

    wan = WanConfig(
        sites=sites,
        l2_site=l2_site,
        hub_server_addrs=tuple(hub_client_addrs),
        policy_factory=policy_factory,
        initial_tokens=dict(initial_tokens or {}),
        wan_tick_ms=wan_tick_ms,
        read_mode=read_mode,
        read_lease_ms=read_lease_ms,
        enable_l2_failover=enable_l2_failover,
        site_server_addrs=site_server_addrs,
        substrate=substrate,
    )

    servers: List[WanKeeperServer] = []
    by_site: Dict[str, List[WanKeeperServer]] = {site: [] for site in sites}
    for site in sites:
        for zab_addr in addresses[site]:
            client_name = zab_addr.name.replace(".zab", "")
            client_addr = topology.site(site).address(client_name)
            server = WanKeeperServer(
                env,
                net,
                zab_addr,
                client_addr,
                site_configs[site],
                wan,
                name=f"{site}/{client_name}",
            )
            servers.append(server)
            by_site[site].append(server)

    deployment = WanKeeperDeployment(env, net, topology, wan, servers, by_site)
    deployment.sentinel = maybe_attach_sentinel(deployment)
    return deployment
