"""Experiment harness: one module per paper figure plus ablations.

Each module exposes a ``run_*`` function that builds a fresh simulated
world, drives the workload, and returns structured results; the
``benchmarks/`` suite wraps these to regenerate the paper's tables/figures
and assert their shapes, and the ``examples/`` scripts reuse them.
"""

from repro.experiments.common import (
    SYSTEMS,
    World,
    build_world,
    format_table,
)

__all__ = ["SYSTEMS", "World", "build_world", "format_table"]
