"""Ablations of WanKeeper's design choices (DESIGN.md A1–A4).

* **A1** — migration threshold ``r``: the paper recommends ``r = 2``; the
  sweep shows r=1 thrashing under contention and large r wasting locality.
* **A2** — Markov token prediction (§II-B): a phase-shifting workload where
  proactive migration beats the reactive consecutive-``r`` rule.
* **A3** — bulk tokens for sequential znodes (§III-B): fair-lock throughput
  when the lock is used from one site, with and without token migration.
* **A4** — fractional read/write tokens (§VI): read-mostly cross-site
  workload under the three read modes (local / forward / fractional).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import build_world
from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA
from repro.wankeeper import (
    ConsecutiveAccessPolicy,
    MarkovPolicy,
    NeverMigratePolicy,
)
from repro.workloads import LatencyRecorder, OverlapChooser, UniformChooser, YcsbSpec
from repro.workloads.driver import ClientPlan, run_ycsb
from repro.zk.recipes import FairLock

__all__ = [
    "run_ablation_bulk_tokens",
    "run_ablation_hub_placement",
    "run_ablation_migration_threshold",
    "run_ablation_prediction",
    "run_ablation_read_modes",
    "run_bulk_token_cell",
    "run_hub_placement_cell",
    "run_prediction_cell",
    "run_read_mode_cell",
    "run_threshold_cell",
]


# ---------------------------------------------------------------- A1: r sweep


@dataclass
class ThresholdCell:
    label: str
    total_throughput: float
    write_mean_ms: float
    tokens_recalled: int


def run_threshold_cell(
    r: Optional[int],
    seed: int = 42,
    record_count: int = 300,
    operations_per_client: int = 1500,
    overlap: float = 0.3,
) -> ThresholdCell:
    """One cell of A1: two contending sites at threshold ``r`` (None = never)."""
    if r is None:
        factory = NeverMigratePolicy
        label = "never"
    else:
        def factory(r=r):
            return ConsecutiveAccessPolicy(r=r)

        label = f"r={r}"
    world = build_world("wk", seed=seed, policy_factory=factory)
    spec = YcsbSpec(
        record_count=record_count,
        operation_count=operations_per_client,
        write_fraction=1.0,
    )
    recorders = {}
    plans = []
    for index, site in enumerate((CALIFORNIA, FRANKFURT)):
        recorder = LatencyRecorder(f"A1-{label}-{site}")
        recorders[site] = recorder
        plans.append(
            ClientPlan(
                world.client(site),
                world.rngs.stream(f"a1-{site}"),
                recorder,
                chooser=OverlapChooser(record_count, overlap, index),
            )
        )
    run_ycsb(world.env, plans, spec, load_client=world.client(VIRGINIA))
    merged = recorders[CALIFORNIA].merged(recorders[FRANKFURT])
    hub = world.deployment.hub_leader
    return ThresholdCell(
        label=label,
        total_throughput=sum(
            r.throughput_ops_per_sec() for r in recorders.values()
        ),
        write_mean_ms=merged.mean_latency("write"),
        tokens_recalled=hub.tokens_recalled if hub else 0,
    )


def run_ablation_migration_threshold(
    r_values: Sequence[Optional[int]] = (1, 2, 4, 8, None),
    seed: int = 42,
    record_count: int = 300,
    operations_per_client: int = 1500,
    overlap: float = 0.3,
) -> List[ThresholdCell]:
    """Two contending sites, 100% writes, varying ``r`` (None = never)."""
    return [
        run_threshold_cell(
            r,
            seed=seed,
            record_count=record_count,
            operations_per_client=operations_per_client,
            overlap=overlap,
        )
        for r in r_values
    ]


# ---------------------------------------------------------- A2: Markov model


@dataclass
class PredictionCell:
    policy: str
    total_throughput: float
    write_mean_ms: float


def _phase_shifting_client(world, client, spec, rng, recorder, phase_len, phases):
    """A client whose site-locality arrives in phases: it writes a small
    key set repeatedly, interleaved with the other site's phases."""
    env = world.env

    def body():
        if not client.connected:
            yield client.connect()
        for _phase in range(phases):
            for _ in range(phase_len):
                index = rng.randrange(spec.record_count)
                start = env.now
                yield client.set_data(spec.key(index), b"v")
                recorder.record("write", start, env.now - start)
    return body()


#: A2 policy labels -> factory, in presentation order.
PREDICTION_POLICIES = {
    "consecutive(r=2)": lambda: ConsecutiveAccessPolicy(r=2),
    "markov(r=2,t=0.6)": lambda: MarkovPolicy(r=2, threshold=0.6),
}


def run_prediction_cell(
    policy: str,
    seed: int = 42,
    record_count: int = 8,
    phase_len: int = 32,
    phases: int = 6,
) -> PredictionCell:
    """One cell of A2: the phase-shifting workload under one policy."""
    factory = PREDICTION_POLICIES[policy]
    world = build_world("wk", seed=seed, policy_factory=factory)
    env = world.env
    spec = YcsbSpec(
        record_count=record_count, operation_count=0, write_fraction=1.0
    )
    recorder = LatencyRecorder(f"A2-{policy}")

    def orchestrate():
        loader = world.client(VIRGINIA)
        yield loader.connect()
        from repro.workloads.driver import load_records

        yield env.process(load_records(loader, spec))
        yield env.timeout(500.0)
        ca = world.client(CALIFORNIA)
        fr = world.client(FRANKFURT)
        rng_ca = world.rngs.stream("a2-ca")
        rng_fr = world.rngs.stream("a2-fr")
        # Phases strictly alternate between the sites.
        for phase in range(phases):
            client = ca if phase % 2 == 0 else fr
            rng = rng_ca if phase % 2 == 0 else rng_fr
            yield env.process(
                _phase_shifting_client(
                    world, client, spec, rng, recorder, phase_len, 1
                )
            )

    process = env.process(orchestrate())
    while not process.triggered:
        env.run(until=env.now + 5000.0)
    if not process.ok:
        raise process.exception
    return PredictionCell(
        policy=policy,
        total_throughput=recorder.throughput_ops_per_sec(),
        write_mean_ms=recorder.mean_latency("write"),
    )


def run_ablation_prediction(
    seed: int = 42,
    record_count: int = 8,
    phase_len: int = 32,
    phases: int = 6,
) -> List[PredictionCell]:
    """Alternating site phases over a shared key set.

    The Markov model learns that, once a site touches a record, the same
    site keeps touching it through the phase — and migrates on the first
    access of each phase instead of the second.
    """
    return [
        run_prediction_cell(
            policy,
            seed=seed,
            record_count=record_count,
            phase_len=phase_len,
            phases=phases,
        )
        for policy in PREDICTION_POLICIES
    ]


# --------------------------------------------------------- A3: bulk tokens


@dataclass
class BulkTokenCell:
    label: str
    acquisitions_per_sec: float


#: A3 policy labels -> factory, in presentation order.
BULK_TOKEN_POLICIES = {
    "bulk-migrating": ConsecutiveAccessPolicy,
    "pinned-at-hub": NeverMigratePolicy,
}


def run_bulk_token_cell(
    policy: str,
    seed: int = 42,
    rounds: int = 30,
) -> BulkTokenCell:
    """One cell of A3: fair-lock rounds under one migration policy."""
    factory = BULK_TOKEN_POLICIES[policy]
    world = build_world("wk", seed=seed, policy_factory=factory)
    env = world.env
    count = {"rounds": 0}

    def contender(client, lock):
        yield client.connect()
        for _ in range(rounds):
            yield from lock.acquire()
            count["rounds"] += 1
            yield env.timeout(1.0)  # tiny critical section
            yield from lock.release()

    def orchestrate():
        start = env.now
        procs = []
        for index in range(2):
            client = world.client(CALIFORNIA, request_timeout_ms=30000.0)
            lock = FairLock(env, client, "/biglock")
            procs.append(env.process(contender(client, lock)))
        for proc in procs:
            yield proc
        return env.now - start

    process = env.process(orchestrate())
    while not process.triggered:
        env.run(until=env.now + 5000.0)
    if not process.ok:
        raise process.exception
    elapsed_ms = process.value
    return BulkTokenCell(
        label=policy,
        acquisitions_per_sec=count["rounds"] / (elapsed_ms / 1000.0),
    )


def run_ablation_bulk_tokens(
    seed: int = 42,
    rounds: int = 30,
) -> List[BulkTokenCell]:
    """Fair-lock throughput when all contenders live in one site.

    With migration on, the lock root's bulk token moves to California and
    every acquire/release round is site-local; pinned at the hub
    (NeverMigrate), every round pays WAN trips.
    """
    return [
        run_bulk_token_cell(policy, seed=seed, rounds=rounds)
        for policy in BULK_TOKEN_POLICIES
    ]


# --------------------------------------------------------- A4: read modes


@dataclass
class ReadModeCell:
    mode: str
    read_mean_ms: float
    total_throughput: float


def run_read_mode_cell(
    mode: str,
    seed: int = 42,
    record_count: int = 100,
    operations_per_client: int = 1000,
    write_fraction: float = 0.05,
) -> ReadModeCell:
    """One cell of A4: the cross-site workload under one read mode."""
    world = build_world("wk", seed=seed, read_mode=mode)
    spec = YcsbSpec(
        record_count=record_count,
        operation_count=operations_per_client,
        write_fraction=write_fraction,
    )
    recorders = {}
    plans = []
    for index, site in enumerate((CALIFORNIA, FRANKFURT)):
        recorder = LatencyRecorder(f"A4-{mode}-{site}")
        recorders[site] = recorder
        plans.append(
            ClientPlan(
                world.client(site),
                world.rngs.stream(f"a4-{site}"),
                recorder,
                chooser=UniformChooser(record_count),
            )
        )
    run_ycsb(world.env, plans, spec, load_client=world.client(VIRGINIA))
    merged = recorders[CALIFORNIA].merged(recorders[FRANKFURT])
    return ReadModeCell(
        mode=mode,
        read_mean_ms=merged.mean_latency("read"),
        total_throughput=sum(
            r.throughput_ops_per_sec() for r in recorders.values()
        ),
    )


def run_ablation_read_modes(
    seed: int = 42,
    record_count: int = 100,
    operations_per_client: int = 1000,
    write_fraction: float = 0.05,
) -> List[ReadModeCell]:
    """Read-mostly cross-site workload under the three read modes."""
    return [
        run_read_mode_cell(
            mode,
            seed=seed,
            record_count=record_count,
            operations_per_client=operations_per_client,
            write_fraction=write_fraction,
        )
        for mode in ("local", "forward", "fractional")
    ]


# ------------------------------------------------- A5: hub placement


@dataclass
class HubPlacementCell:
    l2_site: str
    total_throughput: float
    write_mean_ms: float


def run_hub_placement_cell(
    l2_site: str,
    seed: int = 42,
    record_count: int = 200,
    operations_per_client: int = 1000,
    write_fraction: float = 0.5,
) -> HubPlacementCell:
    """One cell of A5: the CA-heavy workload with the hub at ``l2_site``."""
    from repro.net import wan_topology
    from repro.net.transport import Network
    from repro.sim import Environment, RngRegistry, seeded_rng
    from repro.wankeeper import build_wankeeper_deployment

    env = Environment()
    topo = wan_topology()
    net = Network(env, topo, rng=seeded_rng(seed, "net"))
    deployment = build_wankeeper_deployment(env, net, topo, l2_site=l2_site)
    deployment.start()
    deployment.stabilize()
    rngs = RngRegistry(seed)
    spec = YcsbSpec(
        record_count=record_count,
        operation_count=operations_per_client,
        write_fraction=write_fraction,
    )
    recorders = []
    plans = []
    client_sites = (CALIFORNIA, CALIFORNIA, FRANKFURT)
    for index, site in enumerate(client_sites):
        recorder = LatencyRecorder(f"A5-{l2_site}-{index}")
        recorders.append(recorder)
        plans.append(
            ClientPlan(
                deployment.client(site),
                rngs.stream(f"a5-{index}"),
                recorder,
                chooser=OverlapChooser(
                    record_count, 0.3, client_index=index, client_total=3
                ),
            )
        )
    run_ycsb(env, plans, spec, load_client=deployment.client(l2_site))
    merged = recorders[0]
    for recorder in recorders[1:]:
        merged = merged.merged(recorder)
    return HubPlacementCell(
        l2_site=l2_site,
        total_throughput=sum(
            r.throughput_ops_per_sec() for r in recorders
        ),
        write_mean_ms=merged.mean_latency("write"),
    )


def run_ablation_hub_placement(
    seed: int = 42,
    record_count: int = 200,
    operations_per_client: int = 1000,
    write_fraction: float = 0.5,
) -> List[HubPlacementCell]:
    """Paper §I tuning knob: "changing the primary site assignment".

    A California-heavy workload (two CA clients, one FR client) measured
    with the level-2 broker placed in each region. Placing the hub where
    the traffic is minimizes the WAN cost of the remote-serialization path.
    """
    return [
        run_hub_placement_cell(
            l2_site,
            seed=seed,
            record_count=record_count,
            operations_per_client=operations_per_client,
            write_fraction=write_fraction,
        )
        for l2_site in (VIRGINIA, CALIFORNIA, FRANKFURT)
    ]
