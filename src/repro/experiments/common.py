"""Shared experiment plumbing: world construction and result formatting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA, Network, wan_topology
from repro.sim import Environment, RngRegistry, seeded_rng
from repro.wankeeper import ConsecutiveAccessPolicy, build_wankeeper_deployment
from repro.zk import build_zk_deployment

__all__ = ["SYSTEMS", "World", "build_world", "format_table"]

#: The comparison systems of §IV — plain ZooKeeper with WAN voters,
#: ZooKeeper with observers, WanKeeper cold, and WanKeeper hot-started —
#: plus the WPaxos design point the fig_wpaxos suite compares against:
#: a flat multi-site ensemble on the multileader substrate, where
#: per-object ownership (stolen on demand) plays the role of WanKeeper's
#: tokens and commits for owned objects need only a zone-local quorum.
SYSTEMS = ("zk", "zk_observer", "wk", "wk_hot", "wpaxos")

SYSTEM_LABELS = {
    "zk": "ZooKeeper",
    "zk_observer": "ZooKeeper+observers",
    "wk": "WanKeeper (cold)",
    "wk_hot": "WanKeeper (hot)",
    "wpaxos": "WPaxos (multileader)",
}


@dataclass
class World:
    """A freshly built simulated deployment plus its RNG registry."""

    kind: str
    env: Environment
    topology: Any
    net: Network
    deployment: Any
    rngs: RngRegistry

    def client(self, site: str, **kwargs):
        return self.deployment.client(site, **kwargs)


def build_world(
    system: str,
    seed: int = 42,
    jitter: float = 0.0,
    initial_tokens: Optional[Dict[str, str]] = None,
    policy_factory: Callable = ConsecutiveAccessPolicy,
    read_mode: str = "local",
    processing_delay_ms: float = 0.02,
) -> World:
    """Build one of the paper's deployments on a fresh simulation."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; pick from {SYSTEMS}")
    env = Environment()
    topology = wan_topology(jitter_fraction=jitter)
    net = Network(env, topology, rng=seeded_rng(seed, "net"))
    if system == "zk":
        deployment = build_zk_deployment(
            env,
            net,
            topology,
            leader_site=VIRGINIA,
            voting_sites=(VIRGINIA, CALIFORNIA, FRANKFURT),
            processing_delay_ms=processing_delay_ms,
        )
    elif system == "zk_observer":
        deployment = build_zk_deployment(
            env,
            net,
            topology,
            leader_site=VIRGINIA,
            voters_in_leader_site=3,
            observer_sites=(CALIFORNIA, FRANKFURT),
            processing_delay_ms=processing_delay_ms,
        )
    elif system == "wpaxos":
        # Same node budget as WanKeeper (three voters per site), one flat
        # ensemble on the multileader substrate: zones are the sites, so a
        # locally-owned object commits in an intra-site quorum and only
        # steals cross the WAN.
        deployment = build_zk_deployment(
            env,
            net,
            topology,
            leader_site=VIRGINIA,
            voting_sites=(VIRGINIA,) * 3 + (CALIFORNIA,) * 3 + (FRANKFURT,) * 3,
            processing_delay_ms=processing_delay_ms,
            substrate="wpaxos",
        )
    else:
        deployment = build_wankeeper_deployment(
            env,
            net,
            topology,
            l2_site=VIRGINIA,
            initial_tokens=initial_tokens if system == "wk_hot" else None,
            policy_factory=policy_factory,
            read_mode=read_mode,
            processing_delay_ms=processing_delay_ms,
        )
    deployment.start()
    deployment.stabilize()
    return World(system, env, topology, net, deployment, RngRegistry(seed))


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Plain-text table for benchmark output."""
    text_rows = [
        [
            f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
