"""Figure 8: BookKeeper WAN write throughput with iterating writers (§IV-B).

Topology of Fig. 8a: three regions with their own bookies; Virginia hosts
the coordination leader/hub and has no writers; California has 3 writers,
Frankfurt 1 ("the log has a home-region ... while allowing a writer from
another region"). Writers iterate: take the coordination lock on the shared
logical log, record region+ledger in the shared metadata znode, append
entries to their local bookies for a fixed *write duration*, record the
finish, release.

The sweep varies the write duration: the shorter the duration, the more
often coordination happens and the more the coordination system's WAN
latency dominates (Fig. 8b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bookkeeper import Bookie, BookKeeperClient
from repro.experiments.common import World, build_world
from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA
from repro.workloads import LatencyRecorder
from repro.zk.recipes import DistributedLock

__all__ = ["Fig8Cell", "run_fig8", "run_fig8_cell"]

DEFAULT_WRITE_DURATIONS_MS = (200.0, 400.0, 800.0, 1600.0, 3200.0)
DEFAULT_SYSTEMS = ("zk", "zk_observer", "wk")

LOCK_PATH = "/log/lock"
META_PATH = "/log/meta"


@dataclass
class Fig8Cell:
    system: str
    write_duration_ms: float
    entries_per_sec: float
    handovers: int
    entries_total: int


def _writer(
    world: World,
    bk: BookKeeperClient,
    lock: DistributedLock,
    region: str,
    write_duration_ms: float,
    deadline_ms: float,
    recorder: LatencyRecorder,
    stats: Dict[str, int],
):
    env = world.env
    zk = bk.zk
    yield zk.connect()
    while env.now < deadline_ms:
        yield from lock.acquire()
        if env.now >= deadline_ms:
            yield from lock.release()
            break
        try:
            handle = yield from bk.create_ledger()
            # Record region + ledger in the shared log metadata (the
            # BookKeeper protocol's writer-registration step).
            yield zk.set_data(
                META_PATH, f"region={region};ledger={handle.ledger_id}".encode()
            )
            stats["handovers"] += 1
            slice_end = min(env.now + write_duration_ms, deadline_ms)
            while env.now < slice_end:
                start = env.now
                yield from bk.add_entry(handle, b"x" * 64)
                recorder.record("entry", start, env.now - start)
                stats["entries"] += 1
            yield zk.set_data(
                META_PATH,
                f"region={region};ledger={handle.ledger_id};"
                f"finished={env.now}".encode(),
            )
            yield from bk.close_ledger(handle)
        finally:
            yield from lock.release()


def run_fig8_cell(
    system: str,
    write_duration_ms: float,
    seed: int = 42,
    total_duration_ms: float = 30000.0,
    bookies_per_site: int = 3,
) -> Fig8Cell:
    """One (system, write duration) cell of Fig. 8b."""
    world = build_world(system, seed=seed)
    env, topo, net = world.env, world.topology, world.net

    bookies_by_site: Dict[str, List[Bookie]] = {}
    for site in (VIRGINIA, CALIFORNIA, FRANKFURT):
        bookies = []
        for index in range(bookies_per_site):
            bookie = Bookie(env, net, topo.site(site).address(f"bookie{index}"))
            bookie.start()
            bookies.append(bookie)
        bookies_by_site[site] = bookies

    # Writers: 3 in California, 1 in Frankfurt (Fig. 8a).
    writer_sites = [CALIFORNIA, CALIFORNIA, CALIFORNIA, FRANKFURT]
    recorder = LatencyRecorder(f"fig8-{system}-{write_duration_ms}")
    stats = {"entries": 0, "handovers": 0}

    def orchestrate():
        # Create the shared metadata znode once.
        setup = world.client(VIRGINIA)
        yield setup.connect()
        yield setup.create("/log", b"")
        yield setup.create(META_PATH, b"")
        start = env.now
        deadline = start + total_duration_ms
        procs = []
        for index, site in enumerate(writer_sites):
            zk = world.client(site, request_timeout_ms=30000.0)
            bk = BookKeeperClient(
                env,
                net,
                topo.site(site).address(f"bkwriter{index}"),
                zk,
                [b.addr for b in bookies_by_site[site]],
            )
            lock = DistributedLock(env, zk, LOCK_PATH)
            procs.append(
                env.process(
                    _writer(
                        world, bk, lock, site, write_duration_ms, deadline,
                        recorder, stats,
                    )
                )
            )
        for proc in procs:
            yield proc
        return env.now - start

    process = env.process(orchestrate())
    guard = total_duration_ms * 4
    while not process.triggered and env.now < guard + total_duration_ms * 2:
        env.run(until=env.now + 5000.0)
    if not process.triggered:
        raise RuntimeError("fig8 cell did not finish")
    if not process.ok:
        raise process.exception
    elapsed_ms = process.value
    return Fig8Cell(
        system=system,
        write_duration_ms=write_duration_ms,
        entries_per_sec=stats["entries"] / (elapsed_ms / 1000.0),
        handovers=stats["handovers"],
        entries_total=stats["entries"],
    )


def run_fig8(
    write_durations_ms: Sequence[float] = DEFAULT_WRITE_DURATIONS_MS,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 42,
    total_duration_ms: float = 30000.0,
) -> Dict[str, List[Fig8Cell]]:
    """The Fig. 8b sweep: system -> cells in write-duration order."""
    return {
        system: [
            run_fig8_cell(
                system, duration, seed=seed, total_duration_ms=total_duration_ms
            )
            for duration in write_durations_ms
        ]
        for system in systems
    }
