"""Figure 7: contention sweep — overlapping access, 100% writes (§IV-A).

Two clients (California, Frankfurt) write with a varying fraction of
overlapping records. Expected shape: ZooKeeper flat in overlap (no local
commits to lose); WanKeeper declines smoothly as contention rises, and even
at 100% overlap stays ~20% above ZooKeeper-with-observers by exploiting
random locality in the access sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.common import build_world
from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA
from repro.workloads import LatencyRecorder, OverlapChooser, YcsbSpec
from repro.workloads.driver import ClientPlan, run_ycsb

__all__ = ["Fig7Cell", "run_fig7", "run_fig7_cell"]

DEFAULT_OVERLAPS = (0.0, 0.25, 0.5, 0.75, 1.0)
DEFAULT_SYSTEMS = ("zk", "zk_observer", "wk")


@dataclass
class Fig7Cell:
    system: str
    overlap: float
    total_throughput: float
    write_mean_ms: float


def run_fig7_cell(
    system: str,
    overlap: float,
    seed: int = 42,
    record_count: int = 500,
    operations_per_client: int = 3000,
) -> Fig7Cell:
    """One (system, overlap) cell of the contention sweep."""
    spec = YcsbSpec(
        record_count=record_count,
        operation_count=operations_per_client,
        write_fraction=1.0,
    )
    world = build_world(system, seed=seed)
    recorders = {}
    plans = []
    for index, site in enumerate((CALIFORNIA, FRANKFURT)):
        chooser = OverlapChooser(
            record_count, overlap, client_index=index
        )
        recorder = LatencyRecorder(f"{system}@{site}@{overlap}")
        recorders[site] = recorder
        plans.append(
            ClientPlan(
                world.client(site),
                world.rngs.stream(f"ycsb-{site}"),
                recorder,
                chooser=chooser,
            )
        )
    run_ycsb(world.env, plans, spec, load_client=world.client(VIRGINIA))
    merged = recorders[CALIFORNIA].merged(recorders[FRANKFURT])
    return Fig7Cell(
        system=system,
        overlap=overlap,
        total_throughput=sum(
            recorder.throughput_ops_per_sec()
            for recorder in recorders.values()
        ),
        write_mean_ms=merged.mean_latency("write"),
    )


def run_fig7(
    overlaps: Sequence[float] = DEFAULT_OVERLAPS,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 42,
    record_count: int = 500,
    operations_per_client: int = 3000,
) -> Dict[str, List[Fig7Cell]]:
    """The contention sweep; returns system -> cells in overlap order."""
    return {
        system: [
            run_fig7_cell(
                system,
                overlap,
                seed=seed,
                record_count=record_count,
                operations_per_client=operations_per_client,
            )
            for overlap in overlaps
        ]
        for system in systems
    }
