"""Figure 5: CDF of write latency at 50% and 100% write ratios (§IV-A).

The paper's observation: 80–90% of WanKeeper writes commit at local
(couple-of-ms) latency thanks to migrated tokens, while all writes under
ZooKeeper-with-observers pay one WAN RTT and most plain-ZooKeeper writes
pay two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.fig4 import run_write_ratio_cell
from repro.workloads import LatencyRecorder

__all__ = ["Fig5Result", "run_fig5"]

DEFAULT_SYSTEMS = ("zk", "zk_observer", "wk")
DEFAULT_WRITE_FRACTIONS = (0.5, 1.0)


@dataclass
class Fig5Result:
    system: str
    write_fraction: float
    cdf: List[Tuple[float, float]]  # (latency ms, cumulative fraction)
    local_fraction: float  # writes under the local-commit threshold
    recorder: LatencyRecorder

    LOCAL_THRESHOLD_MS = 10.0


def run_fig5(
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    write_fractions: Sequence[float] = DEFAULT_WRITE_FRACTIONS,
    seed: int = 42,
    record_count: int = 1000,
    operation_count: int = 10000,
) -> Dict[Tuple[str, float], Fig5Result]:
    """Write-latency CDFs per (system, write fraction)."""
    results: Dict[Tuple[str, float], Fig5Result] = {}
    for system in systems:
        for fraction in write_fractions:
            cell = run_write_ratio_cell(
                system,
                fraction,
                seed=seed,
                record_count=record_count,
                operation_count=operation_count,
            )
            recorder = cell.recorder
            results[(system, fraction)] = Fig5Result(
                system=system,
                write_fraction=fraction,
                cdf=recorder.cdf("write"),
                local_fraction=recorder.fraction_below(
                    Fig5Result.LOCAL_THRESHOLD_MS, "write"
                ),
                recorder=recorder,
            )
    return results
