"""Figure 6: two-site throughput on disjoint partitions, 50% writes (§IV-A).

Two clients (California, Frankfurt) access disjoint halves of the record
space. Four setups: plain ZK, ZK with observers, WanKeeper cold (all tokens
start at Virginia) and WanKeeper hot (each site pre-holds its partition's
tokens). Expected shape: ZK+obs ≈ 2× ZK; WK-hot > WK-cold > ZK+obs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.experiments.common import build_world
from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA
from repro.workloads import LatencyRecorder, OverlapChooser, YcsbSpec
from repro.workloads.driver import ClientPlan, run_ycsb

__all__ = ["Fig6Result", "run_fig6", "run_fig6_cell"]

DEFAULT_SETUPS = ("zk", "zk_observer", "wk", "wk_hot")


@dataclass
class Fig6Result:
    setup: str
    total_throughput: float
    per_site_throughput: Dict[str, float]
    write_mean_ms: float


def run_fig6_cell(
    setup: str,
    seed: int = 42,
    record_count: int = 1000,
    operations_per_client: int = 5000,
    write_fraction: float = 0.5,
) -> Fig6Result:
    """Run one Fig. 6 setup as an independent cell."""
    spec = YcsbSpec(
        record_count=record_count,
        operation_count=operations_per_client,
        write_fraction=write_fraction,
    )
    choosers = {
        CALIFORNIA: OverlapChooser(record_count, 0.0, client_index=0),
        FRANKFURT: OverlapChooser(record_count, 0.0, client_index=1),
    }
    # WK-hot: "each site holds half of the tokens at the beginning".
    initial_tokens = {}
    for site, chooser in choosers.items():
        for index in chooser.private_indices:
            initial_tokens[spec.key(index)] = site

    world = build_world(setup, seed=seed, initial_tokens=initial_tokens)
    recorders = {
        site: LatencyRecorder(f"{setup}@{site}") for site in choosers
    }
    plans = [
        ClientPlan(
            world.client(site),
            world.rngs.stream(f"ycsb-{site}"),
            recorders[site],
            chooser=choosers[site],
        )
        for site in (CALIFORNIA, FRANKFURT)
    ]
    if setup == "wk_hot":
        # Create each partition from the site that pre-holds its
        # tokens, so the hot placement survives the load phase.
        load_plan = [
            (plans[index].client, list(choosers[site].private_indices))
            for index, site in enumerate((CALIFORNIA, FRANKFURT))
        ]
        run_ycsb(world.env, plans, spec, load_plan=load_plan)
    else:
        run_ycsb(world.env, plans, spec, load_client=world.client(VIRGINIA))
    merged = recorders[CALIFORNIA].merged(recorders[FRANKFURT])
    return Fig6Result(
        setup=setup,
        total_throughput=sum(
            recorder.throughput_ops_per_sec()
            for recorder in recorders.values()
        ),
        per_site_throughput={
            site: recorder.throughput_ops_per_sec()
            for site, recorder in recorders.items()
        },
        write_mean_ms=merged.mean_latency("write"),
    )


def run_fig6(
    setups: Sequence[str] = DEFAULT_SETUPS,
    seed: int = 42,
    record_count: int = 1000,
    operations_per_client: int = 5000,
    write_fraction: float = 0.5,
) -> Dict[str, Fig6Result]:
    """Run the four Fig. 6 setups; returns setup -> result."""
    return {
        setup: run_fig6_cell(
            setup,
            seed=seed,
            record_count=record_count,
            operations_per_client=operations_per_client,
            write_fraction=write_fraction,
        )
        for setup in setups
    }
