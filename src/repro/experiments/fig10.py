"""Figure 10: SCFS metadata updates from two sites (§IV-C).

Clients in California and Frankfurt share every file and drive metadata
updates (the paper's YCSB microbenchmark over the SCFS metadata service):

* Fig. 10a — no hotspot: throughput/latency vs access overlap, ZooKeeper
  with observers (ZKO) vs WanKeeper cold (WK);
* Fig. 10b — 20% hotspot ("80% of operations updating 20% of data");
* Fig. 10c — per-10-second throughput timeline at 10% and 50% overlap,
  showing faster token migration (and a Frankfurt speed-up once
  California finishes) under low contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import build_world
from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA
from repro.workloads import (
    HotspotChooser,
    LatencyRecorder,
    OverlapChooser,
    UniformChooser,
    YcsbSpec,
)
from repro.workloads.driver import ClientPlan, run_ycsb

__all__ = [
    "Fig10Cell",
    "run_fig10_cell",
    "run_fig10a",
    "run_fig10b",
    "run_fig10c",
]

DEFAULT_OVERLAPS = (0.0, 0.1, 0.5, 0.8, 1.0)
DEFAULT_SYSTEMS = ("zk_observer", "wk")
SITES = (CALIFORNIA, FRANKFURT)


def _scfs_spec(record_count: int, operations: int) -> YcsbSpec:
    return YcsbSpec(
        record_count=record_count,
        operation_count=operations,
        write_fraction=1.0,  # metadata *updates*
        table="/scfs/files",
        key_prefix="file",
    )


@dataclass
class Fig10Cell:
    system: str
    overlap: float
    hotspot: bool
    per_site_throughput: Dict[str, float]
    per_site_latency_ms: Dict[str, float]
    total_throughput: float


def run_fig10_cell(
    system: str,
    overlap: float,
    hotspot: bool,
    seed: int = 42,
    record_count: int = 500,
    operations_per_client: int = 3000,
) -> Tuple[Fig10Cell, Dict[str, LatencyRecorder]]:
    spec = _scfs_spec(record_count, operations_per_client)
    world = build_world(system, seed=seed)
    recorders: Dict[str, LatencyRecorder] = {}
    plans = []
    for index, site in enumerate(SITES):
        if hotspot:
            # Each site has its *own* 20% hotspot (rotated within the
            # region) — "a 20% hotspot at both sites" (Fig. 10b).
            def inner(count, client=index):
                return HotspotChooser(
                    count,
                    hot_data_fraction=0.2,
                    hot_op_fraction=0.8,
                    rotation=(client * count) // 2,
                )
        else:
            inner = UniformChooser
        chooser = OverlapChooser(
            record_count, overlap, client_index=index, inner_factory=inner
        )
        recorder = LatencyRecorder(f"fig10-{system}-{site}")
        recorders[site] = recorder
        plans.append(
            ClientPlan(
                world.client(site),
                world.rngs.stream(f"scfs-{site}"),
                recorder,
                chooser=chooser,
            )
        )
    run_ycsb(world.env, plans, spec, load_client=world.client(VIRGINIA))
    cell = Fig10Cell(
        system=system,
        overlap=overlap,
        hotspot=hotspot,
        per_site_throughput={
            site: recorder.throughput_ops_per_sec()
            for site, recorder in recorders.items()
        },
        per_site_latency_ms={
            site: recorder.mean_latency("write")
            for site, recorder in recorders.items()
        },
        total_throughput=sum(
            recorder.throughput_ops_per_sec() for recorder in recorders.values()
        ),
    )
    return cell, recorders


def run_fig10a(
    overlaps: Sequence[float] = DEFAULT_OVERLAPS,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 42,
    record_count: int = 500,
    operations_per_client: int = 3000,
) -> Dict[str, List[Fig10Cell]]:
    """Fig. 10a: no hotspot."""
    return {
        system: [
            run_fig10_cell(
                system, overlap, False, seed, record_count, operations_per_client
            )[0]
            for overlap in overlaps
        ]
        for system in systems
    }


def run_fig10b(
    overlaps: Sequence[float] = DEFAULT_OVERLAPS,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 42,
    record_count: int = 500,
    operations_per_client: int = 3000,
) -> Dict[str, List[Fig10Cell]]:
    """Fig. 10b: 80% of operations on 20% of the data."""
    return {
        system: [
            run_fig10_cell(
                system, overlap, True, seed, record_count, operations_per_client
            )[0]
            for overlap in overlaps
        ]
        for system in systems
    }


def run_fig10c(
    overlaps: Sequence[float] = (0.1, 0.5),
    seed: int = 42,
    record_count: int = 500,
    operations_per_client: int = 3000,
    bucket_ms: float = 10000.0,
) -> Dict[float, Dict[str, List[Tuple[float, float]]]]:
    """Fig. 10c: WanKeeper throughput timelines (per-10s buckets) per site."""
    results: Dict[float, Dict[str, List[Tuple[float, float]]]] = {}
    for overlap in overlaps:
        _cell, recorders = run_fig10_cell(
            "wk", overlap, True, seed, record_count, operations_per_client
        )
        results[overlap] = {
            site: recorder.timeseries(bucket_ms)
            for site, recorder in recorders.items()
        }
    return results
