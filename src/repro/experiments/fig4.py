"""Figure 4: single-client YCSB over varying read/write ratios (§IV-A).

A single client in California runs YCSB (1000 records, 10K ops, Zipfian)
against each system; Virginia hosts the ZooKeeper leader / WanKeeper
level-2 broker. Fig. 4a reports overall throughput per write ratio;
Fig. 4b the average per-operation read and write latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import build_world
from repro.net import CALIFORNIA, VIRGINIA
from repro.workloads import LatencyRecorder, YcsbSpec
from repro.workloads.driver import ClientPlan, run_ycsb

__all__ = ["Fig4Cell", "run_fig4", "run_write_ratio_cell"]

#: The paper's write-ratio sweep (write % of operations).
DEFAULT_WRITE_FRACTIONS = (0.0, 0.05, 0.25, 0.5, 1.0)
DEFAULT_SYSTEMS = ("zk", "zk_observer", "wk")


@dataclass
class Fig4Cell:
    """One (system, write ratio) measurement."""

    system: str
    write_fraction: float
    throughput: float
    read_mean_ms: Optional[float]
    write_mean_ms: Optional[float]
    read_p99_ms: Optional[float]
    write_p99_ms: Optional[float]
    recorder: LatencyRecorder


def run_write_ratio_cell(
    system: str,
    write_fraction: float,
    seed: int = 42,
    record_count: int = 1000,
    operation_count: int = 10000,
    client_site: str = CALIFORNIA,
) -> Fig4Cell:
    """Run one cell of the Fig. 4 sweep and return its measurements."""
    world = build_world(system, seed=seed)
    spec = YcsbSpec(
        record_count=record_count,
        operation_count=operation_count,
        write_fraction=write_fraction,
    )
    recorder = LatencyRecorder(f"{system}@{write_fraction}")
    client = world.client(client_site)
    loader = world.client(VIRGINIA)
    plan = ClientPlan(client, world.rngs.stream("ycsb"), recorder)
    run_ycsb(world.env, [plan], spec, load_client=loader)

    def maybe(fn, *args):
        try:
            return fn(*args)
        except ValueError:
            return None

    return Fig4Cell(
        system=system,
        write_fraction=write_fraction,
        throughput=recorder.throughput_ops_per_sec(),
        read_mean_ms=maybe(recorder.mean_latency, "read"),
        write_mean_ms=maybe(recorder.mean_latency, "write"),
        read_p99_ms=maybe(recorder.percentile_latency, 99, "read"),
        write_p99_ms=maybe(recorder.percentile_latency, 99, "write"),
        recorder=recorder,
    )


def run_fig4(
    write_fractions: Sequence[float] = DEFAULT_WRITE_FRACTIONS,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 42,
    record_count: int = 1000,
    operation_count: int = 10000,
) -> Dict[str, List[Fig4Cell]]:
    """The full Fig. 4 sweep: system -> cells in write-ratio order."""
    results: Dict[str, List[Fig4Cell]] = {}
    for system in systems:
        results[system] = [
            run_write_ratio_cell(
                system,
                fraction,
                seed=seed,
                record_count=record_count,
                operation_count=operation_count,
            )
            for fraction in write_fractions
        ]
    return results
