"""Nemesis: scheduled, seeded fault injection for whole-system tests.

A :class:`Nemesis` runs alongside a deployment and injects faults from a
seeded random schedule — server crashes and restarts, WAN partitions and
heals — while recording everything it did. Soak tests drive a workload
under a nemesis and then check the global invariants (replica convergence,
token exclusivity, history consistency) after a final quiet period.

The design follows the Jepsen idea adapted to a deterministic simulator:
because the schedule derives from the experiment seed, any failure found
is perfectly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.kernel import Environment, Interrupt

__all__ = ["FaultEvent", "Nemesis", "NemesisConfig"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or repair)."""

    time: float
    kind: str  # crash | restart | partition | heal
    target: str


@dataclass
class NemesisConfig:
    """Probabilities and pacing of the fault schedule."""

    interval_ms: float = 2000.0
    crash_probability: float = 0.25
    partition_probability: float = 0.15
    #: Mean dwell before a crash/partition is repaired (exponential,
    #: capped at ``repair_cap_factor`` times the mean so tail draws stay
    #: bounded — e.g. below a failover timeout when that matters).
    repair_after_ms: float = 6000.0
    repair_cap_factor: float = 3.0
    #: Never crash below this many live voters per ensemble (quorum guard);
    #: the nemesis tests liveness under *tolerable* faults by default.
    min_live_fraction: float = 0.6
    #: Never partition more than one site pair at a time.
    max_active_partitions: int = 1


class Nemesis:
    """Injects faults into a WanKeeper (or ZK) deployment on a schedule."""

    def __init__(
        self,
        env: Environment,
        net,
        deployment,
        rng: random.Random,
        config: Optional[NemesisConfig] = None,
    ):
        self.env = env
        self.net = net
        self.deployment = deployment
        self.rng = rng
        self.config = config or NemesisConfig()
        self.events: List[FaultEvent] = []
        self._down: List[Tuple[float, Any]] = []  # (repair_at, server)
        self._partitions: List[Tuple[float, str, str]] = []
        self._proc = None
        self._active = False

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        if self._active:
            raise RuntimeError("nemesis already running")
        self._active = True
        self._proc = self.env.process(self._run(), name="nemesis")

    def stop_and_repair(self) -> None:
        """Stop injecting and repair everything (for the quiet period)."""
        self._active = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("nemesis stopped")
        for _at, server in self._down:
            if not server.is_alive:
                server.restart()
                self._log("restart", server.name)
        self._down = []
        for _at, site_a, site_b in self._partitions:
            self.net.heal(site_a, site_b)
            self._log("heal", f"{site_a}~{site_b}")
        self._partitions = []

    # ----------------------------------------------------------------- guts

    def _log(self, kind: str, target: str) -> None:
        self.events.append(FaultEvent(self.env.now, kind, target))

    def _run(self):
        while self._active:
            try:
                yield self.env.timeout(self.config.interval_ms)
            except Interrupt:
                return
            if not self._active:
                return
            self._repair_due()
            roll = self.rng.random()
            if roll < self.config.crash_probability:
                self._maybe_crash()
            elif roll < (
                self.config.crash_probability + self.config.partition_probability
            ):
                self._maybe_partition()

    def _repair_due(self) -> None:
        now = self.env.now
        still_down = []
        for repair_at, server in self._down:
            if now >= repair_at and not server.is_alive:
                server.restart()
                self._log("restart", server.name)
            elif not server.is_alive:
                still_down.append((repair_at, server))
        self._down = still_down
        open_partitions = []
        for heal_at, site_a, site_b in self._partitions:
            if now >= heal_at:
                self.net.heal(site_a, site_b)
                self._log("heal", f"{site_a}~{site_b}")
            else:
                open_partitions.append((heal_at, site_a, site_b))
        self._partitions = open_partitions

    def _sites(self) -> List[str]:
        by_site = getattr(self.deployment, "by_site", None)
        if by_site is not None:
            return sorted(by_site)
        return sorted({server.site for server in self.deployment.servers})

    def _servers_in(self, site: str) -> List[Any]:
        by_site = getattr(self.deployment, "by_site", None)
        if by_site is not None:
            return by_site[site]
        return [s for s in self.deployment.servers if s.site == site]

    def _maybe_crash(self) -> None:
        site = self.rng.choice(self._sites())
        servers = self._servers_in(site)
        live = [server for server in servers if server.is_alive]
        # Quorum guard: keep a strict majority of each ensemble alive.
        min_keep = max(
            len(servers) // 2 + 1,
            int(len(servers) * self.config.min_live_fraction),
        )
        if len(live) - 1 < min_keep:
            return
        victim = self.rng.choice(live)
        victim.crash()
        self._log("crash", victim.name)
        self._down.append((self.env.now + self._dwell(), victim))

    def _maybe_partition(self) -> None:
        if len(self._partitions) >= self.config.max_active_partitions:
            return
        sites = self._sites()
        if len(sites) < 2:
            return
        site_a, site_b = self.rng.sample(sites, 2)
        if self.net.partitioned(site_a, site_b):
            return
        self.net.partition(site_a, site_b)
        self._log("partition", f"{site_a}~{site_b}")
        self._partitions.append((self.env.now + self._dwell(), site_a, site_b))

    def _dwell(self) -> float:
        raw = self.rng.expovariate(1.0 / self.config.repair_after_ms)
        return min(raw, self.config.repair_after_ms * self.config.repair_cap_factor)

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
