"""Nemesis: scheduled, seeded fault injection for whole-system tests.

A :class:`Nemesis` runs alongside a deployment and injects faults from a
seeded random schedule — server crashes and restarts, WAN partitions and
heals, flaky links (loss + duplication), asymmetric one-way partitions,
and gray degradations (pathological delay) — while recording everything it
did. Soak tests drive a workload under a nemesis and then check the global
invariants (replica convergence, token exclusivity, history consistency)
after a final quiet period.

The design follows the Jepsen idea adapted to a deterministic simulator:
because the schedule derives from the experiment seed, any failure found
is perfectly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.net.transport import LinkProfile
from repro.sim.kernel import Environment, Interrupt

__all__ = ["FaultEvent", "Nemesis", "NemesisConfig"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or repair)."""

    time: float
    kind: str  # crash | restart | partition | heal | flaky-link | restore
    #        # | oneway-partition | oneway-heal | gray-degrade
    target: str


@dataclass
class NemesisConfig:
    """Probabilities and pacing of the fault schedule."""

    interval_ms: float = 2000.0
    crash_probability: float = 0.25
    partition_probability: float = 0.15
    #: Degrade a random WAN link with loss + duplication (a flaky path).
    flaky_link_probability: float = 0.0
    #: Sever only one direction of a random site pair (gray failure: the
    #: other end still believes the link is healthy).
    oneway_partition_probability: float = 0.0
    #: Multiply a random link's latency (gray failure: up but very slow).
    gray_degrade_probability: float = 0.0
    #: LinkProfile applied by flaky-link faults.
    flaky_profile: LinkProfile = LinkProfile(loss=0.05, duplicate=0.05)
    #: Delay multiplier applied by gray-degradation faults.
    gray_delay_factor: float = 8.0
    #: Mean dwell before a crash/partition is repaired (exponential,
    #: capped at ``repair_cap_factor`` times the mean so tail draws stay
    #: bounded — e.g. below a failover timeout when that matters).
    repair_after_ms: float = 6000.0
    repair_cap_factor: float = 3.0
    #: Never crash below this many live voters per ensemble (quorum guard);
    #: the nemesis tests liveness under *tolerable* faults by default.
    min_live_fraction: float = 0.6
    #: Never partition more than one site pair at a time (symmetric and
    #: one-way partitions count toward the same budget).
    max_active_partitions: int = 1
    #: Never degrade more than this many links at a time (flaky + gray).
    max_active_degradations: int = 2


class Nemesis:
    """Injects faults into a WanKeeper (or ZK) deployment on a schedule."""

    def __init__(
        self,
        env: Environment,
        net,
        deployment,
        rng: random.Random,
        config: Optional[NemesisConfig] = None,
    ):
        self.env = env
        self.net = net
        self.deployment = deployment
        self.rng = rng
        self.config = config or NemesisConfig()
        self.events: List[FaultEvent] = []
        self._down: List[Tuple[float, Any]] = []  # (repair_at, server)
        self._partitions: List[Tuple[float, str, str]] = []
        self._oneway: List[Tuple[float, str, str]] = []  # (heal_at, src, dst)
        # (restore_at, site_a, site_b, previous profile or None). Keeping
        # the previous profile lets a nemesis degradation stack on top of a
        # baseline link profile (e.g. a soak's ambient loss) and put it
        # back on repair instead of wiping it.
        self._degraded: List[
            Tuple[float, str, str, Optional[LinkProfile]]
        ] = []
        self._proc = None
        self._active = False

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        if self._active:
            raise RuntimeError("nemesis already running")
        self._active = True
        self._proc = self.env.process(self._run(), name="nemesis")

    def stop_and_repair(self) -> None:
        """Stop injecting and repair everything (for the quiet period)."""
        self._active = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("nemesis stopped")
        for _at, server in self._down:
            if not server.is_alive:
                server.restart()
                self._log("restart", server.name)
        self._down = []
        for _at, site_a, site_b in self._partitions:
            self.net.heal(site_a, site_b)
            self._log("heal", f"{site_a}~{site_b}")
        self._partitions = []
        for _at, src, dst in self._oneway:
            self.net.heal_one_way(src, dst)
            self._log("oneway-heal", f"{src}->{dst}")
        self._oneway = []
        for _at, site_a, site_b, previous in self._degraded:
            self._restore_link(site_a, site_b, previous)
        self._degraded = []

    # ----------------------------------------------------------------- guts

    def _log(self, kind: str, target: str) -> None:
        self.events.append(FaultEvent(self.env.now, kind, target))
        trace = self.net.trace
        if trace is not None:
            trace.emit(self.env.now, "nemesis", kind, "nemesis",
                       {"target": target})

    def _run(self):
        while self._active:
            try:
                yield self.env.timeout(self.config.interval_ms)
            except Interrupt:
                return
            if not self._active:
                return
            self._repair_due()
            cfg = self.config
            roll = self.rng.random()
            threshold = cfg.crash_probability
            if roll < threshold:
                self._maybe_crash()
                continue
            threshold += cfg.partition_probability
            if roll < threshold:
                self._maybe_partition()
                continue
            threshold += cfg.flaky_link_probability
            if roll < threshold:
                self._maybe_flaky_link()
                continue
            threshold += cfg.oneway_partition_probability
            if roll < threshold:
                self._maybe_oneway_partition()
                continue
            threshold += cfg.gray_degrade_probability
            if roll < threshold:
                self._maybe_gray_degrade()

    def _repair_due(self) -> None:
        now = self.env.now
        still_down = []
        for repair_at, server in self._down:
            if now >= repair_at and not server.is_alive:
                server.restart()
                self._log("restart", server.name)
            elif not server.is_alive:
                still_down.append((repair_at, server))
        self._down = still_down
        open_partitions = []
        for heal_at, site_a, site_b in self._partitions:
            if now >= heal_at:
                self.net.heal(site_a, site_b)
                self._log("heal", f"{site_a}~{site_b}")
            else:
                open_partitions.append((heal_at, site_a, site_b))
        self._partitions = open_partitions
        open_oneway = []
        for heal_at, src, dst in self._oneway:
            if now >= heal_at:
                self.net.heal_one_way(src, dst)
                self._log("oneway-heal", f"{src}->{dst}")
            else:
                open_oneway.append((heal_at, src, dst))
        self._oneway = open_oneway
        still_degraded = []
        for restore_at, site_a, site_b, previous in self._degraded:
            if now >= restore_at:
                self._restore_link(site_a, site_b, previous)
            else:
                still_degraded.append((restore_at, site_a, site_b, previous))
        self._degraded = still_degraded

    def _restore_link(
        self, site_a: str, site_b: str, previous: Optional[LinkProfile]
    ) -> None:
        if previous is None:
            self.net.restore(site_a, site_b)
        else:
            self.net.degrade(site_a, site_b, previous)
        self._log("restore", f"{site_a}~{site_b}")

    def _sites(self) -> List[str]:
        by_site = getattr(self.deployment, "by_site", None)
        if by_site is not None:
            return sorted(by_site)
        return sorted({server.site for server in self.deployment.servers})

    def _servers_in(self, site: str) -> List[Any]:
        by_site = getattr(self.deployment, "by_site", None)
        if by_site is not None:
            return by_site[site]
        return [s for s in self.deployment.servers if s.site == site]

    def _maybe_crash(self) -> None:
        site = self.rng.choice(self._sites())
        servers = self._servers_in(site)
        live = [server for server in servers if server.is_alive]
        # Quorum guard: keep a strict majority of each ensemble alive.
        min_keep = max(
            len(servers) // 2 + 1,
            int(len(servers) * self.config.min_live_fraction),
        )
        if len(live) - 1 < min_keep:
            return
        victim = self.rng.choice(live)
        victim.crash()
        self._log("crash", victim.name)
        self._down.append((self.env.now + self._dwell(), victim))

    def _maybe_partition(self) -> None:
        if len(self._partitions) >= self.config.max_active_partitions:
            return
        sites = self._sites()
        if len(sites) < 2:
            return
        site_a, site_b = self.rng.sample(sites, 2)
        if self.net.partitioned(site_a, site_b):
            return
        self.net.partition(site_a, site_b)
        self._log("partition", f"{site_a}~{site_b}")
        self._partitions.append((self.env.now + self._dwell(), site_a, site_b))

    def _pick_link(self) -> Optional[Tuple[str, str]]:
        sites = self._sites()
        if len(sites) < 2:
            return None
        site_a, site_b = self.rng.sample(sites, 2)
        return site_a, site_b

    def _nemesis_degraded(self, site_a: str, site_b: str) -> bool:
        return any(
            {site_a, site_b} == {a, b} for _at, a, b, _prev in self._degraded
        )

    def _maybe_flaky_link(self) -> None:
        if len(self._degraded) >= self.config.max_active_degradations:
            return
        link = self._pick_link()
        if link is None:
            return
        site_a, site_b = link
        if self._nemesis_degraded(site_a, site_b):
            return
        previous = self.net.link_profile(site_a, site_b)
        flaky = self.config.flaky_profile
        if previous is not None:
            # Stack on any ambient degradation: keep the worse loss/dup and
            # the ambient delay factor, and restore the ambient profile later.
            flaky = LinkProfile(
                loss=max(previous.loss, flaky.loss),
                duplicate=max(previous.duplicate, flaky.duplicate),
                delay_factor=previous.delay_factor,
            )
        self.net.degrade(site_a, site_b, flaky)
        self._log("flaky-link", f"{site_a}~{site_b}")
        self._degraded.append(
            (self.env.now + self._dwell(), site_a, site_b, previous)
        )

    def _maybe_oneway_partition(self) -> None:
        total_partitions = len(self._partitions) + len(self._oneway)
        if total_partitions >= self.config.max_active_partitions:
            return
        link = self._pick_link()
        if link is None:
            return
        src, dst = link
        if self.net.partitioned_one_way(src, dst):
            return
        self.net.partition_one_way(src, dst)
        self._log("oneway-partition", f"{src}->{dst}")
        self._oneway.append((self.env.now + self._dwell(), src, dst))

    def _maybe_gray_degrade(self) -> None:
        if len(self._degraded) >= self.config.max_active_degradations:
            return
        link = self._pick_link()
        if link is None:
            return
        site_a, site_b = link
        if self._nemesis_degraded(site_a, site_b):
            return
        previous = self.net.link_profile(site_a, site_b)
        gray = LinkProfile(delay_factor=self.config.gray_delay_factor)
        if previous is not None:
            # Keep ambient loss/duplication; only the latency goes gray.
            gray = LinkProfile(
                loss=previous.loss,
                duplicate=previous.duplicate,
                delay_factor=self.config.gray_delay_factor,
            )
        self.net.degrade(site_a, site_b, gray)
        self._log("gray-degrade", f"{site_a}~{site_b}")
        self._degraded.append(
            (self.env.now + self._dwell(), site_a, site_b, previous)
        )

    def _dwell(self) -> float:
        raw = self.rng.expovariate(1.0 / self.config.repair_after_ms)
        return min(raw, self.config.repair_after_ms * self.config.repair_cap_factor)

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
