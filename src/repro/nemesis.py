"""Nemesis: scheduled, seeded fault injection for whole-system tests.

A :class:`Nemesis` runs alongside a deployment and injects faults from a
seeded random schedule — server crashes and restarts, WAN partitions and
heals, flaky links (loss + duplication), asymmetric one-way partitions,
gray degradations (pathological delay), and two *adversarial* actors (a
site leader that falsely claims token ownership, and a stale leader that
keeps serving fractional-read leases it was told to drop) — while
recording everything it did. Soak tests drive a workload under a nemesis
and then check the global invariants (replica convergence, token
exclusivity, history consistency) after a final quiet period.

The design follows the Jepsen idea adapted to a deterministic simulator:
because the schedule derives from the experiment seed, any failure found
is perfectly reproducible. Each fault kind draws from its own *named
substream* of the seed (see :func:`repro.sim.rng.seeded_rng`), so adding
a new fault kind never reshuffles the schedules of the existing ones.

:class:`ScheduleNemesis` replaces the probabilistic scheduler with an
explicit declarative schedule — a sorted list of ``{"at", "kind", ...}``
entries. It is the executor for the fuzzer's generated fault schedules
(:mod:`repro.fuzz`) and for checked-in regression artifacts, and shares
every injection primitive (and the quorum guard) with the random nemesis.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.net.transport import LinkProfile
from repro.sim.kernel import Environment, Interrupt
from repro.sim.rng import seeded_rng

__all__ = ["FaultEvent", "Nemesis", "NemesisConfig", "ScheduleNemesis"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or repair)."""

    time: float
    kind: str  # crash | restart | partition | heal | flaky-link | restore
    #        # | oneway-partition | oneway-heal | gray-degrade
    #        # | token-usurper | usurper-repair | stale-leader | stale-repair
    target: str
    #: Optional structured payload (dwell, parameters); absent for events
    #: recorded by older call sites, so ``(e.time, e.kind, e.target)``
    #: tuples stay the stable comparison form.
    info: Optional[Dict[str, Any]] = None


@dataclass
class NemesisConfig:
    """Probabilities and pacing of the fault schedule."""

    interval_ms: float = 2000.0
    crash_probability: float = 0.25
    partition_probability: float = 0.15
    #: Degrade a random WAN link with loss + duplication (a flaky path).
    flaky_link_probability: float = 0.0
    #: Sever only one direction of a random site pair (gray failure: the
    #: other end still believes the link is healthy).
    oneway_partition_probability: float = 0.0
    #: Multiply a random link's latency (gray failure: up but very slow).
    gray_degrade_probability: float = 0.0
    #: Adversarial: a site leader silently adds a token it was never
    #: granted to its owned set and starts admitting local writes under it
    #: (a Byzantine broker; the sentinel's exclusivity checks are the
    #: oracle that must catch the resulting dual ownership).
    token_usurper_probability: float = 0.0
    #: Adversarial: a site leader acks fractional-read invalidations but
    #: keeps serving (even expired) leases — the paper's §VI coherence
    #: contract broken at the reader.
    stale_leader_probability: float = 0.0
    #: LinkProfile applied by flaky-link faults.
    flaky_profile: LinkProfile = LinkProfile(loss=0.05, duplicate=0.05)
    #: Delay multiplier applied by gray-degradation faults.
    gray_delay_factor: float = 8.0
    #: Mean dwell before a crash/partition is repaired (exponential,
    #: capped at ``repair_cap_factor`` times the mean so tail draws stay
    #: bounded — e.g. below a failover timeout when that matters).
    repair_after_ms: float = 6000.0
    repair_cap_factor: float = 3.0
    #: Never crash below this many live voters per ensemble (quorum guard);
    #: the nemesis tests liveness under *tolerable* faults by default.
    min_live_fraction: float = 0.6
    #: Never partition more than one site pair at a time (symmetric and
    #: one-way partitions count toward the same budget).
    max_active_partitions: int = 1
    #: Never degrade more than this many links at a time (flaky + gray).
    max_active_degradations: int = 2


class Nemesis:
    """Injects faults into a WanKeeper (or ZK) deployment on a schedule."""

    def __init__(
        self,
        env: Environment,
        net,
        deployment,
        rng: random.Random,
        config: Optional[NemesisConfig] = None,
    ):
        self.env = env
        self.net = net
        self.deployment = deployment
        self.rng = rng
        # One draw from the caller's rng fixes this nemesis's identity;
        # every fault kind then gets its own named substream, so enabling
        # a new kind (or a kind drawing more numbers) never reshuffles the
        # schedules of the others.
        self._base_seed = rng.getrandbits(64)
        self._streams: Dict[str, random.Random] = {}
        self.config = config or NemesisConfig()
        self.events: List[FaultEvent] = []
        self._down: List[Tuple[float, Any]] = []  # (repair_at, server)
        self._partitions: List[Tuple[float, str, str]] = []
        self._oneway: List[Tuple[float, str, str]] = []  # (heal_at, src, dst)
        # (restore_at, site_a, site_b, previous profile or None). Keeping
        # the previous profile lets a nemesis degradation stack on top of a
        # baseline link profile (e.g. a soak's ambient loss) and put it
        # back on repair instead of wiping it.
        self._degraded: List[
            Tuple[float, str, str, Optional[LinkProfile]]
        ] = []
        self._stale: List[Tuple[float, Any]] = []  # (repair_at, server)
        self._usurped: List[Tuple[float, Any, str]] = []  # (at, server, key)
        self._proc = None
        self._active = False

    # ------------------------------------------------------------------ API

    def start(self) -> None:
        if self._active:
            raise RuntimeError("nemesis already running")
        self._active = True
        self._proc = self.env.process(self._run(), name="nemesis")

    def stop_and_repair(self) -> None:
        """Stop injecting and repair everything (for the quiet period)."""
        self._active = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("nemesis stopped")
        for _at, server in self._down:
            if not server.is_alive:
                server.restart()
                self._log("restart", server.name)
        self._down = []
        for _at, site_a, site_b in self._partitions:
            self.net.heal(site_a, site_b)
            self._log("heal", f"{site_a}~{site_b}")
        self._partitions = []
        for _at, src, dst in self._oneway:
            self.net.heal_one_way(src, dst)
            self._log("oneway-heal", f"{src}->{dst}")
        self._oneway = []
        for _at, site_a, site_b, previous in self._degraded:
            self._restore_link(site_a, site_b, previous)
        self._degraded = []
        for _at, server in self._stale:
            self._repair_stale_leader(server)
        self._stale = []
        for _at, server, key in self._usurped:
            self._repair_usurped(server, key)
        self._usurped = []

    # ----------------------------------------------------------------- guts

    def _stream(self, name: str) -> random.Random:
        """The named substream for one fault kind (created on first use)."""
        stream = self._streams.get(name)
        if stream is None:
            stream = seeded_rng(self._base_seed, f"nemesis:{name}")
            self._streams[name] = stream
        return stream

    def _log(
        self, kind: str, target: str, info: Optional[Dict[str, Any]] = None
    ) -> None:
        self.events.append(FaultEvent(self.env.now, kind, target, info))
        trace = self.net.trace
        if trace is not None:
            detail: Dict[str, Any] = {"target": target}
            if info:
                detail.update(info)
            trace.emit(self.env.now, "nemesis", kind, "nemesis", detail)

    def _run(self):
        while self._active:
            try:
                yield self.env.timeout(self.config.interval_ms)
            except Interrupt:
                return
            if not self._active:
                return
            self._repair_due()
            cfg = self.config
            roll = self._stream("schedule").random()
            threshold = cfg.crash_probability
            if roll < threshold:
                self._maybe_crash()
                continue
            threshold += cfg.partition_probability
            if roll < threshold:
                self._maybe_partition()
                continue
            threshold += cfg.flaky_link_probability
            if roll < threshold:
                self._maybe_flaky_link()
                continue
            threshold += cfg.oneway_partition_probability
            if roll < threshold:
                self._maybe_oneway_partition()
                continue
            threshold += cfg.gray_degrade_probability
            if roll < threshold:
                self._maybe_gray_degrade()
                continue
            threshold += cfg.token_usurper_probability
            if roll < threshold:
                self._maybe_token_usurper()
                continue
            threshold += cfg.stale_leader_probability
            if roll < threshold:
                self._maybe_stale_leader()

    def _repair_due(self) -> None:
        now = self.env.now
        still_down = []
        for repair_at, server in self._down:
            if now >= repair_at and not server.is_alive:
                server.restart()
                self._log("restart", server.name)
            elif not server.is_alive:
                still_down.append((repair_at, server))
        self._down = still_down
        open_partitions = []
        for heal_at, site_a, site_b in self._partitions:
            if now >= heal_at:
                self.net.heal(site_a, site_b)
                self._log("heal", f"{site_a}~{site_b}")
            else:
                open_partitions.append((heal_at, site_a, site_b))
        self._partitions = open_partitions
        open_oneway = []
        for heal_at, src, dst in self._oneway:
            if now >= heal_at:
                self.net.heal_one_way(src, dst)
                self._log("oneway-heal", f"{src}->{dst}")
            else:
                open_oneway.append((heal_at, src, dst))
        self._oneway = open_oneway
        still_degraded = []
        for restore_at, site_a, site_b, previous in self._degraded:
            if now >= restore_at:
                self._restore_link(site_a, site_b, previous)
            else:
                still_degraded.append((restore_at, site_a, site_b, previous))
        self._degraded = still_degraded
        still_stale = []
        for repair_at, server in self._stale:
            if now >= repair_at:
                self._repair_stale_leader(server)
            else:
                still_stale.append((repair_at, server))
        self._stale = still_stale
        still_usurped = []
        for repair_at, server, key in self._usurped:
            if now >= repair_at:
                self._repair_usurped(server, key)
            else:
                still_usurped.append((repair_at, server, key))
        self._usurped = still_usurped

    def _restore_link(
        self, site_a: str, site_b: str, previous: Optional[LinkProfile]
    ) -> None:
        if previous is None:
            self.net.restore(site_a, site_b)
        else:
            self.net.degrade(site_a, site_b, previous)
        self._log("restore", f"{site_a}~{site_b}")

    def _repair_stale_leader(self, server) -> None:
        if getattr(server, "stale_reads", False):
            server.stale_reads = False
            server._leases.clear()
            self._log("stale-repair", server.name)

    def _repair_usurped(self, server, key: str) -> None:
        """Take a usurped token back, unless a later legitimate grant made
        the ownership genuine (the hub's location map is the authority)."""
        tokens = getattr(server, "site_tokens", None)
        if tokens is None or key not in tokens.owned:
            return
        hub = getattr(self.deployment, "hub_leader", None)
        if hub is not None and hub.hub_tokens.where(key) == server.site:
            return
        tokens.owned.discard(key)
        tokens.outgoing.discard(key)
        tokens.inflight.pop(key, None)
        self._log(
            "usurper-repair", f"{server.site}:{key}",
            {"server": server.name, "key": key},
        )

    def _sites(self) -> List[str]:
        by_site = getattr(self.deployment, "by_site", None)
        if by_site is not None:
            return sorted(by_site)
        return sorted({server.site for server in self.deployment.servers})

    def _servers_in(self, site: str) -> List[Any]:
        by_site = getattr(self.deployment, "by_site", None)
        if by_site is not None:
            return by_site[site]
        return [s for s in self.deployment.servers if s.site == site]

    def _site_leader(self, site: str) -> Optional[Any]:
        for server in self._servers_in(site):
            if server.is_alive and server.peer.is_leader:
                return server
        return None

    def _usurpable_keys(self, site: str) -> List[str]:
        """Tokens the hub believes belong to *another* site: stealing one
        of those is the strongest lie a Byzantine leader at ``site`` can
        tell, because a legitimate owner exists to collide with."""
        hub = getattr(self.deployment, "hub_leader", None)
        if hub is None or getattr(hub, "hub_tokens", None) is None:
            return []
        return sorted(
            key
            for key, where in hub.hub_tokens.location.items()
            if where is not None and where != site
        )

    # ----------------------------------------------- injection primitives
    #
    # Each _inject_* applies one fault if its guard allows it, logs it, and
    # schedules the repair. The probabilistic _maybe_* drivers draw targets
    # from their kind's substream; ScheduleNemesis calls the primitives
    # directly with targets resolved from declarative schedule entries.

    def _inject_crash(self, victim, dwell: float) -> bool:
        servers = self._servers_in(victim.site)
        live = [server for server in servers if server.is_alive]
        # Quorum guard: keep a strict majority of each ensemble alive.
        min_keep = max(
            len(servers) // 2 + 1,
            int(len(servers) * self.config.min_live_fraction),
        )
        if victim not in live or len(live) - 1 < min_keep:
            return False
        victim.crash()
        self._log("crash", victim.name, {"dwell_ms": round(dwell, 3)})
        self._down.append((self.env.now + dwell, victim))
        return True

    def _inject_partition(
        self, site_a: str, site_b: str, dwell: float
    ) -> bool:
        if len(self._partitions) >= self.config.max_active_partitions:
            return False
        if site_a == site_b or self.net.partitioned(site_a, site_b):
            return False
        self.net.partition(site_a, site_b)
        self._log(
            "partition", f"{site_a}~{site_b}", {"dwell_ms": round(dwell, 3)}
        )
        self._partitions.append((self.env.now + dwell, site_a, site_b))
        return True

    def _inject_oneway(self, src: str, dst: str, dwell: float) -> bool:
        total_partitions = len(self._partitions) + len(self._oneway)
        if total_partitions >= self.config.max_active_partitions:
            return False
        if src == dst or self.net.partitioned_one_way(src, dst):
            return False
        self.net.partition_one_way(src, dst)
        self._log(
            "oneway-partition", f"{src}->{dst}",
            {"dwell_ms": round(dwell, 3)},
        )
        self._oneway.append((self.env.now + dwell, src, dst))
        return True

    def _inject_flaky(
        self, site_a: str, site_b: str, profile: LinkProfile, dwell: float
    ) -> bool:
        if len(self._degraded) >= self.config.max_active_degradations:
            return False
        if site_a == site_b or self._nemesis_degraded(site_a, site_b):
            return False
        previous = self.net.link_profile(site_a, site_b)
        if previous is not None:
            # Stack on any ambient degradation: keep the worse loss/dup and
            # the ambient delay factor, and restore the ambient profile later.
            profile = LinkProfile(
                loss=max(previous.loss, profile.loss),
                duplicate=max(previous.duplicate, profile.duplicate),
                delay_factor=previous.delay_factor,
            )
        self.net.degrade(site_a, site_b, profile)
        self._log(
            "flaky-link", f"{site_a}~{site_b}",
            {"loss": profile.loss, "duplicate": profile.duplicate,
             "dwell_ms": round(dwell, 3)},
        )
        self._degraded.append(
            (self.env.now + dwell, site_a, site_b, previous)
        )
        return True

    def _inject_gray(
        self, site_a: str, site_b: str, factor: float, dwell: float
    ) -> bool:
        if len(self._degraded) >= self.config.max_active_degradations:
            return False
        if site_a == site_b or self._nemesis_degraded(site_a, site_b):
            return False
        previous = self.net.link_profile(site_a, site_b)
        gray = LinkProfile(delay_factor=factor)
        if previous is not None:
            # Keep ambient loss/duplication; only the latency goes gray.
            gray = LinkProfile(
                loss=previous.loss,
                duplicate=previous.duplicate,
                delay_factor=factor,
            )
        self.net.degrade(site_a, site_b, gray)
        self._log(
            "gray-degrade", f"{site_a}~{site_b}",
            {"delay_factor": factor, "dwell_ms": round(dwell, 3)},
        )
        self._degraded.append(
            (self.env.now + dwell, site_a, site_b, previous)
        )
        return True

    def _inject_token_usurper(self, leader, key: str, dwell: float) -> bool:
        tokens = getattr(leader, "site_tokens", None)
        if tokens is None or key in tokens.owned:
            return False
        # The Byzantine move: claim the token without any committed grant.
        tokens.grant(key)
        self._log(
            "token-usurper", f"{leader.site}:{key}",
            {"server": leader.name, "key": key, "dwell_ms": round(dwell, 3)},
        )
        self._usurped.append((self.env.now + dwell, leader, key))
        return True

    def _inject_stale_leader(self, leader, dwell: float) -> bool:
        if getattr(leader, "stale_reads", None) is not False:
            return False  # not a WanKeeper server, or already stale
        leader.stale_reads = True
        self._log(
            "stale-leader", leader.name,
            {"site": leader.site, "dwell_ms": round(dwell, 3)},
        )
        self._stale.append((self.env.now + dwell, leader))
        return True

    # ------------------------------------------------ probabilistic drivers

    def _maybe_crash(self) -> None:
        rng = self._stream("crash")
        site = rng.choice(self._sites())
        live = [s for s in self._servers_in(site) if s.is_alive]
        if not live:
            return
        victim = rng.choice(live)
        self._inject_crash(victim, self._dwell(rng))

    def _maybe_partition(self) -> None:
        rng = self._stream("partition")
        link = self._pick_link(rng)
        if link is None:
            return
        self._inject_partition(link[0], link[1], self._dwell(rng))

    def _pick_link(
        self, rng: Optional[random.Random] = None
    ) -> Optional[Tuple[str, str]]:
        rng = rng if rng is not None else self._stream("link")
        sites = self._sites()
        if len(sites) < 2:
            return None
        site_a, site_b = rng.sample(sites, 2)
        return site_a, site_b

    def _nemesis_degraded(self, site_a: str, site_b: str) -> bool:
        return any(
            {site_a, site_b} == {a, b} for _at, a, b, _prev in self._degraded
        )

    def _maybe_flaky_link(self) -> None:
        rng = self._stream("flaky-link")
        link = self._pick_link(rng)
        if link is None:
            return
        self._inject_flaky(
            link[0], link[1], self.config.flaky_profile, self._dwell(rng)
        )

    def _maybe_oneway_partition(self) -> None:
        rng = self._stream("oneway-partition")
        link = self._pick_link(rng)
        if link is None:
            return
        self._inject_oneway(link[0], link[1], self._dwell(rng))

    def _maybe_gray_degrade(self) -> None:
        rng = self._stream("gray-degrade")
        link = self._pick_link(rng)
        if link is None:
            return
        self._inject_gray(
            link[0], link[1], self.config.gray_delay_factor, self._dwell(rng)
        )

    def _maybe_token_usurper(self) -> None:
        rng = self._stream("token-usurper")
        site = rng.choice(self._sites())
        leader = self._site_leader(site)
        if leader is None:
            return
        candidates = self._usurpable_keys(site)
        if not candidates:
            return
        key = rng.choice(candidates)
        self._inject_token_usurper(leader, key, self._dwell(rng))

    def _maybe_stale_leader(self) -> None:
        rng = self._stream("stale-leader")
        site = rng.choice(self._sites())
        leader = self._site_leader(site)
        if leader is None:
            return
        self._inject_stale_leader(leader, self._dwell(rng))

    def _dwell(self, rng: Optional[random.Random] = None) -> float:
        rng = rng if rng is not None else self._stream("dwell")
        raw = rng.expovariate(1.0 / self.config.repair_after_ms)
        return min(raw, self.config.repair_after_ms * self.config.repair_cap_factor)

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


class ScheduleNemesis(Nemesis):
    """Plays an explicit, declarative fault schedule.

    Each entry is a JSON-plain dict::

        {"at": 1200.0, "kind": "crash", "site": 1, "victim": 0,
         "dwell": 2500.0}

    ``at`` is milliseconds after :meth:`start`; ``site``/``victim``/``a``/
    ``b``/``key`` are *indices* resolved at apply time against the sorted
    live topology (modulo the candidate count), so a schedule stays valid
    — and deterministic — under shrinking and across topology mutations.
    Entries whose guard refuses (quorum, partition budget, dead target)
    are logged as ``skip`` events rather than silently dropped, so the
    fuzzer's coverage signal sees them and shrinking stays honest.
    """

    #: Schedule entry kinds understood by :meth:`_apply_entry`.
    KINDS = (
        "crash",
        "partition",
        "oneway-partition",
        "flaky-link",
        "gray-degrade",
        "token-usurper",
        "stale-leader",
    )

    def __init__(
        self,
        env: Environment,
        net,
        deployment,
        schedule: Iterable[Dict[str, Any]],
        config: Optional[NemesisConfig] = None,
        keys: Iterable[str] = (),
        rng: Optional[random.Random] = None,
    ):
        super().__init__(env, net, deployment, rng or random.Random(0), config)
        self.schedule = sorted(
            (dict(entry) for entry in schedule),
            key=lambda e: (
                float(e.get("at", 0.0)),
                str(e.get("kind", "")),
                json.dumps(e, sort_keys=True, default=repr),
            ),
        )
        self.keys = tuple(keys)
        self.applied = 0
        self.skipped = 0

    def _run(self):
        start = self.env.now
        for entry in self.schedule:
            target_t = start + float(entry.get("at", 0.0))
            while self.env.now < target_t:
                try:
                    yield self.env.timeout(target_t - self.env.now)
                except Interrupt:
                    return
            if not self._active:
                return
            self._repair_due()
            self._apply_entry(entry)
        # Past the last entry: keep servicing repairs until stopped.
        while self._active:
            try:
                yield self.env.timeout(self.config.interval_ms)
            except Interrupt:
                return
            self._repair_due()

    # ------------------------------------------------------------- resolve

    def _pick_site(self, index: Any) -> Optional[str]:
        sites = self._sites()
        if not sites:
            return None
        return sites[int(index) % len(sites)]

    def _pick_pair(
        self, entry: Dict[str, Any]
    ) -> Optional[Tuple[str, str]]:
        sites = self._sites()
        if len(sites) < 2:
            return None
        a = sites[int(entry.get("a", 0)) % len(sites)]
        b = sites[int(entry.get("b", 1)) % len(sites)]
        if a == b:
            b = sites[(sites.index(b) + 1) % len(sites)]
        return a, b

    def _apply_entry(self, entry: Dict[str, Any]) -> bool:
        kind = str(entry.get("kind", ""))
        dwell = float(entry.get("dwell", self.config.repair_after_ms))
        applied = False
        if kind == "crash":
            site = self._pick_site(entry.get("site", 0))
            if site is not None:
                live = sorted(
                    (s for s in self._servers_in(site) if s.is_alive),
                    key=lambda s: s.name,
                )
                if live:
                    victim = live[int(entry.get("victim", 0)) % len(live)]
                    applied = self._inject_crash(victim, dwell)
        elif kind == "partition":
            pair = self._pick_pair(entry)
            if pair is not None:
                applied = self._inject_partition(pair[0], pair[1], dwell)
        elif kind == "oneway-partition":
            pair = self._pick_pair(entry)
            if pair is not None:
                applied = self._inject_oneway(pair[0], pair[1], dwell)
        elif kind == "flaky-link":
            pair = self._pick_pair(entry)
            if pair is not None:
                profile = LinkProfile(
                    loss=float(entry.get("loss", self.config.flaky_profile.loss)),
                    duplicate=float(
                        entry.get("duplicate", self.config.flaky_profile.duplicate)
                    ),
                )
                applied = self._inject_flaky(pair[0], pair[1], profile, dwell)
        elif kind == "gray-degrade":
            pair = self._pick_pair(entry)
            if pair is not None:
                factor = float(
                    entry.get("factor", self.config.gray_delay_factor)
                )
                applied = self._inject_gray(pair[0], pair[1], factor, dwell)
        elif kind == "token-usurper":
            site = self._pick_site(entry.get("site", 0))
            leader = self._site_leader(site) if site is not None else None
            if leader is not None:
                candidates = self._usurpable_keys(site)
                if not candidates and self.keys:
                    tokens = getattr(leader, "site_tokens", None)
                    owned = tokens.owned if tokens is not None else set()
                    candidates = sorted(set(self.keys) - owned)
                if candidates:
                    key = candidates[int(entry.get("key", 0)) % len(candidates)]
                    applied = self._inject_token_usurper(leader, key, dwell)
        elif kind == "stale-leader":
            site = self._pick_site(entry.get("site", 0))
            leader = self._site_leader(site) if site is not None else None
            if leader is not None:
                applied = self._inject_stale_leader(leader, dwell)
        if applied:
            self.applied += 1
        else:
            self.skipped += 1
            self._log("skip", kind, {"entry": json.dumps(
                entry, sort_keys=True, default=repr)})
        return applied
