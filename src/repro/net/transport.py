"""The simulated network: registration, FIFO delivery, partitions, crashes.

Default delivery semantics mirror TCP as the paper assumes:

* **reliable** — a message between two live, connected nodes is always
  delivered;
* **FIFO per (src, dst) pair** — delivery times are forced monotone per
  ordered pair, so jitter can never reorder two messages on one connection;
* **connection-loss on partition/crash** — messages to a crashed node or
  across a partition are silently dropped (the sender's protocol timeouts
  are responsible for recovery, as with a broken TCP connection).

Real WANs are worse than that, so every link can additionally be *degraded*
with a :class:`LinkProfile`: independent per-message loss, duplication, and
a "gray failure" delay multiplier (the link is up but pathologically slow).
Partitions may also be **asymmetric** (one direction severed), which is the
classic gray-failure shape Jepsen-style evaluations probe. Degradation
never reorders messages on a connection — duplicated copies arrive after
the original and FIFO stays monotone per ordered pair — matching a flaky
TCP path where the kernel retransmits but the application-visible stream
stays ordered, while *lost* messages model connection resets whose
in-flight data vanished.

Every drop is tagged with a reason (``crash``, ``partition``, ``loss``,
``inbox-closed``) and counted in :attr:`Network.drops_by_reason`.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.message import Envelope
from repro.net.topology import NodeAddress, Topology
from heapq import heappush

from repro.sim.kernel import PRIORITY_NORMAL, Environment
from repro.sim.store import Store

__all__ = ["LinkProfile", "Network", "NodeDownError"]


class NodeDownError(Exception):
    """Raised when interacting with a crashed node's endpoint."""


@dataclass(frozen=True)
class LinkProfile:
    """Fault characteristics of one directed site-to-site link.

    ``loss`` and ``duplicate`` are independent per-message probabilities;
    ``delay_factor`` multiplies the link's one-way latency (a gray failure:
    the link works, just pathologically slowly).
    """

    loss: float = 0.0
    duplicate: float = 0.0
    delay_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be a probability, got {self.loss}")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ValueError(
                f"duplicate must be a probability, got {self.duplicate}"
            )
        if self.delay_factor <= 0.0:
            raise ValueError(
                f"delay_factor must be positive, got {self.delay_factor}"
            )


class Network:
    """Routes messages between registered node inboxes with WAN delays."""

    __slots__ = (
        "env",
        "topology",
        "rng",
        "_inboxes",
        "_down",
        "_partitions",
        "_oneway_partitions",
        "_link_profiles",
        "_last_delivery",
        "_fast",
        "_fast_horizon",
        "_slow_floor",
        "_fast_ok_after",
        "_jitter_free",
        "_pair_delay",
        "_seq",
        "messages_sent",
        "messages_dropped",
        "messages_duplicated",
        "drops_by_reason",
        "bytes_sent",
        "_taps",
        "_deliver_cb",
        "trace",
    )

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        rng: Optional[random.Random] = None,
    ):
        self.env = env
        self.topology = topology
        self.rng = rng or random.Random(0)
        self._inboxes: Dict[NodeAddress, Store] = {}
        self._down: Set[NodeAddress] = set()
        self._partitions: Set[FrozenSet[str]] = set()
        self._oneway_partitions: Set[Tuple[str, str]] = set()
        # Directed (src site, dst site) -> degradation profile.
        self._link_profiles: Dict[Tuple[str, str], LinkProfile] = {}
        self._last_delivery: Dict[Tuple[NodeAddress, NodeAddress], float] = {}
        # Fast-path state: while no fault of any kind is injected (and the
        # topology is jitter-free) a send needs no RNG draws and no per-pair
        # FIFO bookkeeping — delays are per-pair constants, so delivery
        # times are monotone by construction. The watermarks make the
        # transitions safe:
        #  * _fast_horizon   — latest delivery time ever scheduled by the
        #    fast path (fast sends are not tracked in _last_delivery);
        #  * _slow_floor     — _fast_horizon frozen at the moment a fault
        #    appears; a shrinking link (delay_factor < 1) may not undercut
        #    untracked fast-path messages still in flight;
        #  * _fast_ok_after  — when faults clear, the fast path re-arms only
        #    once every tracked slow-path delivery is in the past.
        self._fast = True
        self._fast_horizon = 0.0
        self._slow_floor = 0.0
        self._fast_ok_after = 0.0
        # Hoisted per-send invariants: jitter_fraction is fixed at topology
        # construction, and _pair_delay (which includes same-site pairs) is
        # mutated in place by Topology.set_one_way, so holding the dict
        # itself stays in sync.
        self._jitter_free = topology.jitter_fraction == 0.0
        self._pair_delay = topology._pair_delay
        self._seq = 0
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.drops_by_reason: Counter = Counter()
        self.bytes_sent = 0
        self._taps: List[Callable[[Envelope], None]] = []
        #: Optional structured trace buffer (repro.trace.TraceBuffer).
        #: Drops and fault transitions are traced; per-message sends are
        #: not (they are the hot path and the taps already observe them).
        self.trace = None
        # One bound method reused for every scheduled delivery.
        self._deliver_cb = self._deliver

    # -- endpoints ----------------------------------------------------------

    def register(self, addr: NodeAddress) -> Store:
        """Register ``addr`` and return its inbox store."""
        if addr in self._inboxes:
            raise ValueError(f"address already registered: {addr}")
        inbox = Store(self.env, name=str(addr))
        self._inboxes[addr] = inbox
        return inbox

    def register_alias(self, addr: NodeAddress, inbox: Store) -> None:
        """Map an extra address onto an already-registered inbox.

        The flyweight client layer gives every logical session its own
        address (servers key connect-dedup, watches, and expiry notices by
        client address) while thousands of sessions share one physical
        inbox store and one consumer callback. Routing, crash state, and
        FIFO bookkeeping treat an alias exactly like any other address.
        """
        if addr in self._inboxes:
            raise ValueError(f"address already registered: {addr}")
        self._inboxes[addr] = inbox

    def inbox(self, addr: NodeAddress) -> Store:
        return self._inboxes[addr]

    def is_registered(self, addr: NodeAddress) -> bool:
        return addr in self._inboxes

    # -- failure injection ----------------------------------------------------

    def _refresh_fast_path(self) -> None:
        """Recompute the fast-path flag after any fault-state mutation."""
        clear = not (
            self._down
            or self._partitions
            or self._oneway_partitions
            or self._link_profiles
        )
        if clear:
            if not self._fast:
                self._fast_ok_after = max(
                    self._last_delivery.values(), default=0.0
                )
                self._fast = True
        elif self._fast:
            self._slow_floor = self._fast_horizon
            self._fast = False

    def crash(self, addr: NodeAddress) -> None:
        """Crash a node: close its inbox and drop in-flight messages to it."""
        if addr not in self._inboxes:
            raise ValueError(f"unknown address: {addr}")
        self._down.add(addr)
        self._inboxes[addr].close()
        self._trace_fault("crash", str(addr))
        self._refresh_fast_path()

    def restart(self, addr: NodeAddress) -> None:
        """Restart a crashed node with an empty inbox."""
        if addr not in self._down:
            raise ValueError(f"node not down: {addr}")
        self._down.discard(addr)
        self._inboxes[addr].reopen()
        self._trace_fault("restart", str(addr))
        self._refresh_fast_path()

    def is_down(self, addr: NodeAddress) -> bool:
        return addr in self._down

    def partition(self, site_a: str, site_b: str) -> None:
        """Sever connectivity between two sites (both directions)."""
        if site_a == site_b:
            raise ValueError("cannot partition a site from itself")
        self._partitions.add(frozenset({site_a, site_b}))
        self._trace_fault("partition", f"{site_a}~{site_b}")
        self._refresh_fast_path()

    def partition_one_way(self, src_site: str, dst_site: str) -> None:
        """Sever only the ``src -> dst`` direction (asymmetric partition).

        The reverse direction keeps working — the gray-failure shape where
        one end believes the link is healthy.
        """
        if src_site == dst_site:
            raise ValueError("cannot partition a site from itself")
        self._oneway_partitions.add((src_site, dst_site))
        self._trace_fault("oneway-partition", f"{src_site}->{dst_site}")
        self._refresh_fast_path()

    def heal(self, site_a: str, site_b: str) -> None:
        """Restore connectivity between two sites (both directions)."""
        self._partitions.discard(frozenset({site_a, site_b}))
        self._oneway_partitions.discard((site_a, site_b))
        self._oneway_partitions.discard((site_b, site_a))
        self._trace_fault("heal", f"{site_a}~{site_b}")
        self._refresh_fast_path()

    def heal_one_way(self, src_site: str, dst_site: str) -> None:
        self._oneway_partitions.discard((src_site, dst_site))
        self._refresh_fast_path()

    def heal_all(self) -> None:
        self._partitions.clear()
        self._oneway_partitions.clear()
        self._refresh_fast_path()

    def partitioned(self, site_a: str, site_b: str) -> bool:
        if site_a == site_b:
            return False
        return frozenset({site_a, site_b}) in self._partitions

    def partitioned_one_way(self, src_site: str, dst_site: str) -> bool:
        """Is the directed path ``src -> dst`` severed (either kind)?"""
        if self.partitioned(src_site, dst_site):
            return True
        return (src_site, dst_site) in self._oneway_partitions

    # -- link degradation -----------------------------------------------------

    def degrade(
        self,
        site_a: str,
        site_b: str,
        profile: LinkProfile,
        symmetric: bool = True,
    ) -> None:
        """Degrade the link between two sites with ``profile``.

        With ``symmetric=False`` only the ``site_a -> site_b`` direction is
        degraded (asymmetric gray failure).
        """
        self._link_profiles[(site_a, site_b)] = profile
        if symmetric:
            self._link_profiles[(site_b, site_a)] = profile
        self._trace_fault("degrade", f"{site_a}~{site_b}")
        self._refresh_fast_path()

    def restore(self, site_a: str, site_b: str) -> None:
        """Remove any degradation between two sites (both directions)."""
        self._link_profiles.pop((site_a, site_b), None)
        self._link_profiles.pop((site_b, site_a), None)
        self._trace_fault("restore", f"{site_a}~{site_b}")
        self._refresh_fast_path()

    def restore_all(self) -> None:
        self._link_profiles.clear()
        self._refresh_fast_path()

    def link_profile(self, src_site: str, dst_site: str) -> Optional[LinkProfile]:
        """The active degradation on the directed ``src -> dst`` link."""
        return self._link_profiles.get((src_site, dst_site))

    # -- observation ----------------------------------------------------------

    def tap(self, callback: Callable[[Envelope], None]) -> None:
        """Register an observer invoked for every *sent* envelope."""
        self._taps.append(callback)

    def _drop(self, reason: str, envelope: Optional[Envelope] = None) -> None:
        self.messages_dropped += 1
        self.drops_by_reason[reason] += 1
        trace = self.trace
        if trace is not None:
            detail = {"reason": reason}
            if envelope is not None:
                detail["src"] = str(envelope.src)
                detail["dst"] = str(envelope.dst)
                detail["type"] = type(envelope.body).__name__
            trace.emit(self.env._now, "net", "drop", "net", detail)

    def _trace_fault(self, kind: str, target: str) -> None:
        trace = self.trace
        if trace is not None:
            trace.emit(self.env._now, "net", kind, "net", {"target": target})

    # -- sending ----------------------------------------------------------

    def send(self, src: NodeAddress, dst: NodeAddress, body: Any,
             size_bytes: int = 256) -> None:
        """Send ``body`` from ``src`` to ``dst``; returns immediately.

        Dropped (not raised) if either endpoint is down, the sites are
        partitioned in the sending direction, or the link's degradation
        profile loses the message — matching a broken TCP connection, where
        the sender discovers the failure only through its own timeouts.
        """
        try:
            inbox = self._inboxes[dst]
        except KeyError:
            raise ValueError(f"unknown destination: {dst}") from None
        env = self.env
        self._seq += 1
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        envelope = Envelope(src, dst, body, env._now, 0.0, self._seq, size_bytes)
        if self._taps:
            for tap in self._taps:
                tap(envelope)

        if (
            self._fast
            and self._jitter_free
            and env._now >= self._fast_ok_after
        ):
            # Fast path: no faults anywhere and no jitter. The one-way delay
            # is a per-pair constant, so delivery times are monotone per
            # ordered pair without any bookkeeping, and no RNG is consumed.
            try:
                delay = self._pair_delay[(src.site, dst.site)]
            except KeyError:
                delay = self.topology.one_way(src, dst)  # raises ValueError
            deliver_at = env._now + delay
            envelope.deliver_time = deliver_at
            if deliver_at > self._fast_horizon:
                self._fast_horizon = deliver_at
            env._seq += 1
            if deliver_at == env._now:
                # Zero-latency pair (same-site loopback): same-instant
                # bucket keeps the kernel's no-heap-entries-at-now
                # invariant intact.
                env._normal_now.append(
                    (self._deliver_cb, (inbox, envelope))
                )
            else:
                heappush(
                    env._queue,
                    (deliver_at, PRIORITY_NORMAL, env._seq,
                     (self._deliver_cb, (inbox, envelope))),
                )
            return

        if src in self._down or dst in self._down:
            self._drop("crash", envelope)
            return
        if self.partitioned_one_way(src.site, dst.site):
            self._drop("partition", envelope)
            return

        profile = self._link_profiles.get((src.site, dst.site))
        if profile is not None and profile.loss > 0.0:
            if self.rng.random() < profile.loss:
                self._drop("loss", envelope)
                return
        copies = 1
        if profile is not None and profile.duplicate > 0.0:
            if self.rng.random() < profile.duplicate:
                copies = 2
                self.messages_duplicated += 1
        for _copy in range(copies):
            self._schedule_delivery(inbox, envelope, profile)

    def _schedule_delivery(
        self, inbox: Store, envelope: Envelope, profile: Optional[LinkProfile]
    ) -> None:
        delay = self.topology.one_way(envelope.src, envelope.dst)
        if profile is not None:
            delay *= profile.delay_factor
        jitter = self.topology.jitter_fraction
        if jitter > 0:
            delay *= 1.0 + self.rng.uniform(0.0, jitter)

        # Enforce FIFO per ordered pair: never deliver before the previous
        # message (or copy) on this connection.
        key = (envelope.src, envelope.dst)
        deliver_at = max(self.env.now + delay, self._last_delivery.get(key, 0.0))
        if profile is not None and profile.delay_factor < 1.0:
            # A shrinking link may not undercut fast-path messages that were
            # in flight (untracked) when the degradation was installed.
            deliver_at = max(deliver_at, self._slow_floor)
        self._last_delivery[key] = deliver_at
        envelope.deliver_time = deliver_at
        self.env.call_in(
            deliver_at - self.env.now, self._deliver_cb, (inbox, envelope)
        )

    def _deliver(self, item: Tuple[Store, Envelope]) -> None:
        # Re-check liveness at delivery time: a crash or partition that
        # happened while the message was in flight kills it. The inbox was
        # resolved at send time (inboxes persist across crash/restart); only
        # its state is re-checked here.
        inbox, envelope = item
        if self._down and envelope.dst in self._down:
            self._drop("crash", envelope)
            return
        if (self._partitions or self._oneway_partitions) and (
            self.partitioned_one_way(envelope.src.site, envelope.dst.site)
        ):
            self._drop("partition", envelope)
            return
        if inbox._closed:
            self._drop("inbox-closed", envelope)
            return
        # Inlined Store.put for the consumer-mode inbox (every protocol
        # endpoint registers a consumer); the closed check above already
        # covers put()'s guard.
        if inbox._consumer is not None:
            if inbox._consumer_busy:
                inbox._items.append(envelope)
            else:
                inbox._consumer_busy = True
                env = self.env
                env._seq += 1
                env._normal_now.append((inbox._run_consumer, envelope))
        else:
            inbox.put(envelope)
