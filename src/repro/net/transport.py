"""The simulated network: registration, FIFO delivery, partitions, crashes.

Delivery semantics mirror TCP as the paper assumes:

* **reliable** — a message between two live, connected nodes is always
  delivered;
* **FIFO per (src, dst) pair** — delivery times are forced monotone per
  ordered pair, so jitter can never reorder two messages on one connection;
* **connection-loss on partition/crash** — messages to a crashed node or
  across a partition are silently dropped (the sender's protocol timeouts
  are responsible for recovery, as with a broken TCP connection).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.message import Envelope
from repro.net.topology import NodeAddress, Topology
from repro.sim.kernel import Environment
from repro.sim.store import Store

__all__ = ["Network", "NodeDownError"]


class NodeDownError(Exception):
    """Raised when interacting with a crashed node's endpoint."""


class Network:
    """Routes messages between registered node inboxes with WAN delays."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        rng: Optional[random.Random] = None,
    ):
        self.env = env
        self.topology = topology
        self.rng = rng or random.Random(0)
        self._inboxes: Dict[NodeAddress, Store] = {}
        self._down: Set[NodeAddress] = set()
        self._partitions: Set[FrozenSet[str]] = set()
        self._last_delivery: Dict[Tuple[NodeAddress, NodeAddress], float] = {}
        self._seq = 0
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self._taps: List[Callable[[Envelope], None]] = []

    # -- endpoints ----------------------------------------------------------

    def register(self, addr: NodeAddress) -> Store:
        """Register ``addr`` and return its inbox store."""
        if addr in self._inboxes:
            raise ValueError(f"address already registered: {addr}")
        inbox = Store(self.env, name=str(addr))
        self._inboxes[addr] = inbox
        return inbox

    def inbox(self, addr: NodeAddress) -> Store:
        return self._inboxes[addr]

    def is_registered(self, addr: NodeAddress) -> bool:
        return addr in self._inboxes

    # -- failure injection ----------------------------------------------------

    def crash(self, addr: NodeAddress) -> None:
        """Crash a node: close its inbox and drop in-flight messages to it."""
        if addr not in self._inboxes:
            raise ValueError(f"unknown address: {addr}")
        self._down.add(addr)
        self._inboxes[addr].close()

    def restart(self, addr: NodeAddress) -> None:
        """Restart a crashed node with an empty inbox."""
        if addr not in self._down:
            raise ValueError(f"node not down: {addr}")
        self._down.discard(addr)
        self._inboxes[addr].reopen()

    def is_down(self, addr: NodeAddress) -> bool:
        return addr in self._down

    def partition(self, site_a: str, site_b: str) -> None:
        """Sever connectivity between two sites (both directions)."""
        if site_a == site_b:
            raise ValueError("cannot partition a site from itself")
        self._partitions.add(frozenset({site_a, site_b}))

    def heal(self, site_a: str, site_b: str) -> None:
        """Restore connectivity between two sites."""
        self._partitions.discard(frozenset({site_a, site_b}))

    def heal_all(self) -> None:
        self._partitions.clear()

    def partitioned(self, site_a: str, site_b: str) -> bool:
        if site_a == site_b:
            return False
        return frozenset({site_a, site_b}) in self._partitions

    # -- observation ----------------------------------------------------------

    def tap(self, callback: Callable[[Envelope], None]) -> None:
        """Register an observer invoked for every *sent* envelope."""
        self._taps.append(callback)

    # -- sending ----------------------------------------------------------

    def send(self, src: NodeAddress, dst: NodeAddress, body: Any,
             size_bytes: int = 256) -> None:
        """Send ``body`` from ``src`` to ``dst``; returns immediately.

        Dropped (not raised) if either endpoint is down or the sites are
        partitioned — matching a broken TCP connection, where the sender
        discovers the failure only through its own timeouts.
        """
        if dst not in self._inboxes:
            raise ValueError(f"unknown destination: {dst}")
        self._seq += 1
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        envelope = Envelope(
            src=src,
            dst=dst,
            body=body,
            send_time=self.env.now,
            seq=self._seq,
            size_bytes=size_bytes,
        )
        for tap in self._taps:
            tap(envelope)
        if src in self._down or dst in self._down or self.partitioned(src.site, dst.site):
            self.messages_dropped += 1
            return

        delay = self.topology.one_way(src, dst)
        jitter = self.topology.jitter_fraction
        if jitter > 0:
            delay *= 1.0 + self.rng.uniform(0.0, jitter)

        # Enforce FIFO per ordered pair: never deliver before the previous
        # message on this connection.
        key = (src, dst)
        deliver_at = max(self.env.now + delay, self._last_delivery.get(key, 0.0))
        self._last_delivery[key] = deliver_at
        envelope.deliver_time = deliver_at

        def deliver(_event: Any, envelope: Envelope = envelope) -> None:
            # Re-check liveness at delivery time: a crash or partition that
            # happened while the message was in flight kills it.
            if (
                envelope.dst in self._down
                or self.partitioned(envelope.src.site, envelope.dst.site)
            ):
                self.messages_dropped += 1
                return
            inbox = self._inboxes[envelope.dst]
            if inbox.closed:
                self.messages_dropped += 1
                return
            inbox.put(envelope)

        timer = self.env.timeout(deliver_at - self.env.now)
        timer._add_callback(deliver)
