"""The simulated network: registration, FIFO delivery, partitions, crashes.

Default delivery semantics mirror TCP as the paper assumes:

* **reliable** — a message between two live, connected nodes is always
  delivered;
* **FIFO per (src, dst) pair** — delivery times are forced monotone per
  ordered pair, so jitter can never reorder two messages on one connection;
* **connection-loss on partition/crash** — messages to a crashed node or
  across a partition are silently dropped (the sender's protocol timeouts
  are responsible for recovery, as with a broken TCP connection).

Real WANs are worse than that, so every link can additionally be *degraded*
with a :class:`LinkProfile`: independent per-message loss, duplication, and
a "gray failure" delay multiplier (the link is up but pathologically slow).
Partitions may also be **asymmetric** (one direction severed), which is the
classic gray-failure shape Jepsen-style evaluations probe. Degradation
never reorders messages on a connection — duplicated copies arrive after
the original and FIFO stays monotone per ordered pair — matching a flaky
TCP path where the kernel retransmits but the application-visible stream
stays ordered, while *lost* messages model connection resets whose
in-flight data vanished.

Every drop is tagged with a reason (``crash``, ``partition``, ``loss``,
``inbox-closed``) and counted in :attr:`Network.drops_by_reason`.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.net.message import Envelope
from repro.net.topology import NodeAddress, Topology
from repro.sim.kernel import Environment
from repro.sim.store import Store

__all__ = ["LinkProfile", "Network", "NodeDownError"]


class NodeDownError(Exception):
    """Raised when interacting with a crashed node's endpoint."""


@dataclass(frozen=True)
class LinkProfile:
    """Fault characteristics of one directed site-to-site link.

    ``loss`` and ``duplicate`` are independent per-message probabilities;
    ``delay_factor`` multiplies the link's one-way latency (a gray failure:
    the link works, just pathologically slowly).
    """

    loss: float = 0.0
    duplicate: float = 0.0
    delay_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss must be a probability, got {self.loss}")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ValueError(
                f"duplicate must be a probability, got {self.duplicate}"
            )
        if self.delay_factor <= 0.0:
            raise ValueError(
                f"delay_factor must be positive, got {self.delay_factor}"
            )


class Network:
    """Routes messages between registered node inboxes with WAN delays."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        rng: Optional[random.Random] = None,
    ):
        self.env = env
        self.topology = topology
        self.rng = rng or random.Random(0)
        self._inboxes: Dict[NodeAddress, Store] = {}
        self._down: Set[NodeAddress] = set()
        self._partitions: Set[FrozenSet[str]] = set()
        self._oneway_partitions: Set[Tuple[str, str]] = set()
        # Directed (src site, dst site) -> degradation profile.
        self._link_profiles: Dict[Tuple[str, str], LinkProfile] = {}
        self._last_delivery: Dict[Tuple[NodeAddress, NodeAddress], float] = {}
        self._seq = 0
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.drops_by_reason: Counter = Counter()
        self.bytes_sent = 0
        self._taps: List[Callable[[Envelope], None]] = []

    # -- endpoints ----------------------------------------------------------

    def register(self, addr: NodeAddress) -> Store:
        """Register ``addr`` and return its inbox store."""
        if addr in self._inboxes:
            raise ValueError(f"address already registered: {addr}")
        inbox = Store(self.env, name=str(addr))
        self._inboxes[addr] = inbox
        return inbox

    def inbox(self, addr: NodeAddress) -> Store:
        return self._inboxes[addr]

    def is_registered(self, addr: NodeAddress) -> bool:
        return addr in self._inboxes

    # -- failure injection ----------------------------------------------------

    def crash(self, addr: NodeAddress) -> None:
        """Crash a node: close its inbox and drop in-flight messages to it."""
        if addr not in self._inboxes:
            raise ValueError(f"unknown address: {addr}")
        self._down.add(addr)
        self._inboxes[addr].close()

    def restart(self, addr: NodeAddress) -> None:
        """Restart a crashed node with an empty inbox."""
        if addr not in self._down:
            raise ValueError(f"node not down: {addr}")
        self._down.discard(addr)
        self._inboxes[addr].reopen()

    def is_down(self, addr: NodeAddress) -> bool:
        return addr in self._down

    def partition(self, site_a: str, site_b: str) -> None:
        """Sever connectivity between two sites (both directions)."""
        if site_a == site_b:
            raise ValueError("cannot partition a site from itself")
        self._partitions.add(frozenset({site_a, site_b}))

    def partition_one_way(self, src_site: str, dst_site: str) -> None:
        """Sever only the ``src -> dst`` direction (asymmetric partition).

        The reverse direction keeps working — the gray-failure shape where
        one end believes the link is healthy.
        """
        if src_site == dst_site:
            raise ValueError("cannot partition a site from itself")
        self._oneway_partitions.add((src_site, dst_site))

    def heal(self, site_a: str, site_b: str) -> None:
        """Restore connectivity between two sites (both directions)."""
        self._partitions.discard(frozenset({site_a, site_b}))
        self._oneway_partitions.discard((site_a, site_b))
        self._oneway_partitions.discard((site_b, site_a))

    def heal_one_way(self, src_site: str, dst_site: str) -> None:
        self._oneway_partitions.discard((src_site, dst_site))

    def heal_all(self) -> None:
        self._partitions.clear()
        self._oneway_partitions.clear()

    def partitioned(self, site_a: str, site_b: str) -> bool:
        if site_a == site_b:
            return False
        return frozenset({site_a, site_b}) in self._partitions

    def partitioned_one_way(self, src_site: str, dst_site: str) -> bool:
        """Is the directed path ``src -> dst`` severed (either kind)?"""
        if self.partitioned(src_site, dst_site):
            return True
        return (src_site, dst_site) in self._oneway_partitions

    # -- link degradation -----------------------------------------------------

    def degrade(
        self,
        site_a: str,
        site_b: str,
        profile: LinkProfile,
        symmetric: bool = True,
    ) -> None:
        """Degrade the link between two sites with ``profile``.

        With ``symmetric=False`` only the ``site_a -> site_b`` direction is
        degraded (asymmetric gray failure).
        """
        self._link_profiles[(site_a, site_b)] = profile
        if symmetric:
            self._link_profiles[(site_b, site_a)] = profile

    def restore(self, site_a: str, site_b: str) -> None:
        """Remove any degradation between two sites (both directions)."""
        self._link_profiles.pop((site_a, site_b), None)
        self._link_profiles.pop((site_b, site_a), None)

    def restore_all(self) -> None:
        self._link_profiles.clear()

    def link_profile(self, src_site: str, dst_site: str) -> Optional[LinkProfile]:
        """The active degradation on the directed ``src -> dst`` link."""
        return self._link_profiles.get((src_site, dst_site))

    # -- observation ----------------------------------------------------------

    def tap(self, callback: Callable[[Envelope], None]) -> None:
        """Register an observer invoked for every *sent* envelope."""
        self._taps.append(callback)

    def _drop(self, reason: str) -> None:
        self.messages_dropped += 1
        self.drops_by_reason[reason] += 1

    # -- sending ----------------------------------------------------------

    def send(self, src: NodeAddress, dst: NodeAddress, body: Any,
             size_bytes: int = 256) -> None:
        """Send ``body`` from ``src`` to ``dst``; returns immediately.

        Dropped (not raised) if either endpoint is down, the sites are
        partitioned in the sending direction, or the link's degradation
        profile loses the message — matching a broken TCP connection, where
        the sender discovers the failure only through its own timeouts.
        """
        if dst not in self._inboxes:
            raise ValueError(f"unknown destination: {dst}")
        self._seq += 1
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        envelope = Envelope(
            src=src,
            dst=dst,
            body=body,
            send_time=self.env.now,
            seq=self._seq,
            size_bytes=size_bytes,
        )
        for tap in self._taps:
            tap(envelope)
        if src in self._down or dst in self._down:
            self._drop("crash")
            return
        if self.partitioned_one_way(src.site, dst.site):
            self._drop("partition")
            return

        profile = self._link_profiles.get((src.site, dst.site))
        if profile is not None and profile.loss > 0.0:
            if self.rng.random() < profile.loss:
                self._drop("loss")
                return
        copies = 1
        if profile is not None and profile.duplicate > 0.0:
            if self.rng.random() < profile.duplicate:
                copies = 2
                self.messages_duplicated += 1
        for _copy in range(copies):
            self._schedule_delivery(envelope, profile)

    def _schedule_delivery(
        self, envelope: Envelope, profile: Optional[LinkProfile]
    ) -> None:
        delay = self.topology.one_way(envelope.src, envelope.dst)
        if profile is not None:
            delay *= profile.delay_factor
        jitter = self.topology.jitter_fraction
        if jitter > 0:
            delay *= 1.0 + self.rng.uniform(0.0, jitter)

        # Enforce FIFO per ordered pair: never deliver before the previous
        # message (or copy) on this connection.
        key = (envelope.src, envelope.dst)
        deliver_at = max(self.env.now + delay, self._last_delivery.get(key, 0.0))
        self._last_delivery[key] = deliver_at
        envelope.deliver_time = deliver_at

        def deliver(_event: Any, envelope: Envelope = envelope) -> None:
            # Re-check liveness at delivery time: a crash or partition that
            # happened while the message was in flight kills it.
            if envelope.dst in self._down:
                self._drop("crash")
                return
            if self.partitioned_one_way(envelope.src.site, envelope.dst.site):
                self._drop("partition")
                return
            inbox = self._inboxes[envelope.dst]
            if inbox.closed:
                self._drop("inbox-closed")
                return
            inbox.put(envelope)

        timer = self.env.timeout(deliver_at - self.env.now)
        timer._add_callback(deliver)
