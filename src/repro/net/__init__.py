"""Simulated wide-area network substrate.

Models the paper's deployment: nodes grouped into datacenter *sites*
(Virginia, California, Frankfurt in the evaluation), with an intra-site
latency of well under a millisecond and inter-site latencies of tens of
milliseconds. Channels are reliable and FIFO per sender/receiver pair,
standing in for TCP as the paper requires (§II-B: "we require FIFO channels
between brokers/servers, which can be ensured by using TCP").
"""

from repro.net.message import Envelope
from repro.net.topology import (
    CALIFORNIA,
    FRANKFURT,
    VIRGINIA,
    NodeAddress,
    Site,
    Topology,
    wan_topology,
)
from repro.net.transport import LinkProfile, Network, NodeDownError

__all__ = [
    "CALIFORNIA",
    "Envelope",
    "FRANKFURT",
    "LinkProfile",
    "Network",
    "NodeAddress",
    "NodeDownError",
    "Site",
    "Topology",
    "VIRGINIA",
    "wan_topology",
]
