"""Sites, node addresses, and the WAN latency matrix.

Latencies default to measured AWS inter-region round-trip times for the
three regions used in the paper's evaluation (us-east-1 Virginia, us-west-1
California, eu-central-1 Frankfurt), circa the paper's 2016/2017 experiments:

* Virginia <-> California : ~70 ms RTT
* Virginia <-> Frankfurt  : ~90 ms RTT
* California <-> Frankfurt: ~150 ms RTT
* within a datacenter     : ~0.5 ms RTT

The topology stores **one-way** delays; ``Topology.rtt`` doubles them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = [
    "CALIFORNIA",
    "FRANKFURT",
    "NodeAddress",
    "Site",
    "Topology",
    "VIRGINIA",
    "wan_topology",
]

VIRGINIA = "virginia"
CALIFORNIA = "california"
FRANKFURT = "frankfurt"

# One-way delays in milliseconds between the paper's AWS regions.
DEFAULT_WAN_ONE_WAY_MS: Dict[FrozenSet[str], float] = {
    frozenset({VIRGINIA, CALIFORNIA}): 35.0,
    frozenset({VIRGINIA, FRANKFURT}): 45.0,
    frozenset({CALIFORNIA, FRANKFURT}): 75.0,
}

DEFAULT_LOCAL_ONE_WAY_MS = 0.25


class NodeAddress:
    """Address of a simulated node: ``site`` plus a name unique in the run.

    Immutable and hashable, like the frozen ordered dataclass it replaces —
    but with the hash computed once at construction: addresses key every
    inbox/FIFO/routing dict on the message hot path, so the per-lookup
    tuple-build of the generated ``__hash__`` was measurable.
    """

    __slots__ = ("site", "name", "_hash")

    def __init__(self, site: str, name: str):
        object.__setattr__(self, "site", site)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((site, name)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"NodeAddress is immutable (tried to set {key!r})")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not NodeAddress:
            return NotImplemented
        return self.site == other.site and self.name == other.name

    def __ne__(self, other: object) -> bool:
        if other.__class__ is not NodeAddress:
            return NotImplemented
        return self.site != other.site or self.name != other.name

    def __lt__(self, other: "NodeAddress") -> bool:
        return (self.site, self.name) < (other.site, other.name)

    def __le__(self, other: "NodeAddress") -> bool:
        return (self.site, self.name) <= (other.site, other.name)

    def __gt__(self, other: "NodeAddress") -> bool:
        return (self.site, self.name) > (other.site, other.name)

    def __ge__(self, other: "NodeAddress") -> bool:
        return (self.site, self.name) >= (other.site, other.name)

    def __repr__(self) -> str:
        return f"NodeAddress(site={self.site!r}, name={self.name!r})"

    def __str__(self) -> str:
        return f"{self.site}/{self.name}"


@dataclass
class Site:
    """A datacenter hosting a set of nodes."""

    name: str
    nodes: List[NodeAddress] = field(default_factory=list)

    def address(self, node_name: str) -> NodeAddress:
        """Create (and register) an address for ``node_name`` at this site."""
        addr = NodeAddress(self.name, node_name)
        if addr not in self.nodes:
            self.nodes.append(addr)
        return addr


class Topology:
    """Sites plus the pairwise one-way latency matrix."""

    def __init__(
        self,
        site_names: Iterable[str],
        one_way_ms: Optional[Dict[FrozenSet[str], float]] = None,
        local_one_way_ms: float = DEFAULT_LOCAL_ONE_WAY_MS,
        jitter_fraction: float = 0.05,
    ):
        self.sites: Dict[str, Site] = {name: Site(name) for name in site_names}
        if not self.sites:
            raise ValueError("topology needs at least one site")
        self._one_way = dict(one_way_ms or {})
        self.local_one_way_ms = local_one_way_ms
        self.jitter_fraction = jitter_fraction
        # Directed (src site, dst site) -> delay. A flat tuple-keyed mirror
        # of _one_way so the per-message lookup in one_way() never builds a
        # frozenset; kept in sync by _validate() and set_one_way(). Same-site
        # pairs are seeded with local_one_way_ms so the message fast path is
        # a single dict probe with no intra/inter-site branch.
        self._pair_delay: Dict[Tuple[str, str], float] = {}
        self._validate()

    def _validate(self) -> None:
        for pair, delay in self._one_way.items():
            if delay <= 0:
                raise ValueError(f"non-positive latency for {set(pair)}: {delay}")
            for site in pair:
                if site not in self.sites:
                    raise ValueError(f"latency given for unknown site {site!r}")
        for a in self.sites:
            for b in self.sites:
                if a != b and frozenset({a, b}) not in self._one_way:
                    raise ValueError(f"missing latency between {a!r} and {b!r}")
        self._pair_delay = {}
        for pair, delay in self._one_way.items():
            a, b = sorted(pair)
            self._pair_delay[(a, b)] = delay
            self._pair_delay[(b, a)] = delay
        for name in self.sites:
            self._pair_delay[(name, name)] = self.local_one_way_ms

    def site(self, name: str) -> Site:
        return self.sites[name]

    def site_names(self) -> List[str]:
        return list(self.sites)

    def set_one_way(self, site_a: str, site_b: str, delay_ms: float) -> None:
        """Override the one-way delay between two sites."""
        if site_a == site_b:
            raise ValueError("use local_one_way_ms for intra-site latency")
        if delay_ms <= 0:
            raise ValueError(f"non-positive latency: {delay_ms}")
        self._one_way[frozenset({site_a, site_b})] = delay_ms
        self._pair_delay[(site_a, site_b)] = delay_ms
        self._pair_delay[(site_b, site_a)] = delay_ms

    def one_way(self, src: NodeAddress, dst: NodeAddress) -> float:
        """One-way delay in ms between two node addresses."""
        if src.site == dst.site:
            return self.local_one_way_ms
        try:
            return self._pair_delay[(src.site, dst.site)]
        except KeyError:
            raise ValueError(
                f"no latency configured between {src.site!r} and {dst.site!r}"
            ) from None

    def rtt(self, site_a: str, site_b: str) -> float:
        """Round-trip time in ms between two sites."""
        if site_a == site_b:
            return 2 * self.local_one_way_ms
        return 2 * self._one_way[frozenset({site_a, site_b})]

    def wan_pairs(self) -> List[Tuple[str, str, float]]:
        """All inter-site pairs with their one-way delays (for reporting)."""
        result = []
        for pair, delay in sorted(self._one_way.items(), key=lambda kv: sorted(kv[0])):
            a, b = sorted(pair)
            result.append((a, b, delay))
        return result


def wan_topology(
    local_one_way_ms: float = DEFAULT_LOCAL_ONE_WAY_MS,
    jitter_fraction: float = 0.05,
) -> Topology:
    """The paper's three-region AWS topology."""
    return Topology(
        [VIRGINIA, CALIFORNIA, FRANKFURT],
        one_way_ms=dict(DEFAULT_WAN_ONE_WAY_MS),
        local_one_way_ms=local_one_way_ms,
        jitter_fraction=jitter_fraction,
    )
