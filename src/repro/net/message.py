"""Message envelope carried by the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Envelope"]


@dataclass
class Envelope:
    """A message in flight.

    ``body`` is an arbitrary protocol message object; the network never
    inspects it. ``seq`` is a global send sequence number used for stable
    ordering and debugging.
    """

    src: Any
    dst: Any
    body: Any
    send_time: float
    deliver_time: float = 0.0
    seq: int = 0
    size_bytes: int = field(default=256)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Envelope #{self.seq} {self.src}->{self.dst} "
            f"{type(self.body).__name__} t={self.send_time:.3f}>"
        )
