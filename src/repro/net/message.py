"""Message envelope carried by the simulated network."""

from __future__ import annotations

from typing import Any

__all__ = ["Envelope"]


class Envelope:
    """A message in flight.

    ``body`` is an arbitrary protocol message object; the network never
    inspects it. ``seq`` is a global send sequence number used for stable
    ordering and debugging.

    A hand-written ``__slots__`` class rather than a dataclass: the network
    allocates one per message and the per-instance ``__dict__`` plus the
    generated keyword-argument ``__init__`` showed up in profiles.
    """

    __slots__ = ("src", "dst", "body", "send_time", "deliver_time", "seq",
                 "size_bytes")

    def __init__(
        self,
        src: Any,
        dst: Any,
        body: Any,
        send_time: float,
        deliver_time: float = 0.0,
        seq: int = 0,
        size_bytes: int = 256,
    ):
        self.src = src
        self.dst = dst
        self.body = body
        self.send_time = send_time
        self.deliver_time = deliver_time
        self.seq = seq
        self.size_bytes = size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Envelope #{self.seq} {self.src}->{self.dst} "
            f"{type(self.body).__name__} t={self.send_time:.3f}>"
        )
