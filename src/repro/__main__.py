"""Entry point: ``python -m repro <experiment>``."""

import sys

from repro.cli import main

# The __main__ guard is load-bearing: multiprocessing's spawn start method
# re-imports the parent's main module in every worker, and without the
# guard each runner worker would recursively re-run the CLI.
if __name__ == "__main__":
    sys.exit(main())
