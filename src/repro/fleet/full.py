"""Full-stack fleet cells: the open-loop driver against the real servers.

The mesoscale engine (:mod:`repro.fleet.engine`) models queueing with
array columns and never sends a message. This module keeps the same
open-loop arrival machinery — Poisson arrivals, follow-the-sun diurnal
modulation, a rotating hotspot — but injects every operation into a real
:class:`~repro.zk.server.ZkServer` or WanKeeper deployment over the
simulated network, on either broadcast substrate. Three mechanisms make
10^4+ concurrent *real* sessions affordable:

* **Idle-gap fast-forward** — one global scan callback walks the tick
  grid in plain Python, drawing each site's arrivals in (tick, site)
  order and scheduling every operation at its exact instant with
  :meth:`~repro.sim.kernel.Environment.call_at`. After scheduling a busy
  tick it re-arms itself at the next tick boundary; across quiescent
  stretches it just keeps iterating — simulated time jumps from burst to
  burst with *zero* kernel events in between. With ``fast_forward``
  off, a generator process performs the identical draws one
  ``env.sleep(tick_ms)`` at a time, so both modes issue bit-identical
  schedules and differ only in wall-clock time (the property the
  equality tests pin).

* **Flyweight sessions** — one :class:`FleetStation` per site owns a
  single physical inbox shared by all of the site's sessions through
  :meth:`~repro.net.transport.Network.register_alias`. Every session
  still has its own :class:`~repro.net.topology.NodeAddress` (servers
  key connect-dedup, watches, and expiry notices by client address) and
  is a real ``Session`` object server-side, but client-side state is
  array columns indexed by the reply envelope's destination alias: no
  per-session coroutines, no per-session inbox stores, no heartbeater
  generators. Session timeouts are set far past the run horizon, so
  liveness costs nothing while the server's expiry watermark keeps the
  ticker O(1).

* **Allocation-free messaging** — read and write ops are immutable
  records precomputed once per key and shared by every request that
  touches the key; ``OpRequest`` shells are recycled through a per-site
  freelist when their reply arrives (safe: the server never retains the
  request object past the handler that answers or enqueues it — reads
  drop it after replying, writes copy its fields into the ``Txn``). The
  per-op kind/latency bookkeeping lives in an int-keyed dict with the
  sign bit of the issue timestamp encoding read-vs-write, so the steady
  state allocates nothing but the envelopes themselves. ``recycle
  _messages=False`` rebuilds every record per op for before/after
  profiling; payloads are bit-identical either way.

Determinism: all stochastic choices draw from per-site named
``seeded_rng`` streams consumed in (tick, site, arrival) order, the scan
inserts operations in exactly the order the per-tick generator process
would, and no unordered collection is ever iterated. Payloads are pure
functions of the spec (``fast_forward`` and ``recycle_messages``
excluded), bit-identical across PYTHONHASHSEED values and executors.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional

from repro.fleet.engine import _poisson
from repro.fleet.topology import build_fleet_topology, fleet_sites
from repro.net.topology import NodeAddress
from repro.net.transport import Network
from repro.sim.kernel import Environment, SimulationError
from repro.sim.rng import seeded_rng
from repro.workloads.stats import LatencyRecorder
from repro.zk.ops import GetDataOp, SetDataOp
from repro.zk.protocol import ConnectReply, ConnectRequest, OpRequest, OpReply

__all__ = ["FleetFullSpec", "FleetStation", "run_fleet_full"]

#: Per-session cxid space inside the int-keyed inflight table
#: (key = session_index * _CXID_SPAN + cxid). A session would need to
#: issue two million ops in one run to overflow.
_CXID_SPAN = 1 << 21


@dataclass
class FleetFullSpec:
    """Parameters of one full-stack fleet cell (all JSON scalars)."""

    n_sites: int = 8
    sessions_per_site: int = 1250
    duration_ms: float = 15000.0
    tick_ms: float = 10.0
    #: Offered load per site at load_multiplier 1.0 and diurnal peak 1.0.
    site_ops_per_sec: float = 40.0
    load_multiplier: float = 1.0
    arrival: str = "poisson"  # "poisson" | "deterministic"
    write_fraction: float = 0.2
    keys_per_site: int = 16
    hotspot_fraction: float = 0.15
    diurnal_amplitude: float = 0.6
    diurnal_period_ms: float = 20000.0  # one simulated "day"
    #: Which real system serves the ops: "wankeeper" (one ensemble per
    #: site, hub at hub_index) or "zk" (observers under zab; one voter
    #: per site under wpaxos, its natural multileader shape).
    system: str = "wankeeper"
    substrate: str = "zab"  # "zab" | "wpaxos"
    hub_index: int = 0
    voters_per_site: int = 1  # wankeeper ensembles (zk uses 3 at the hub)
    #: Far past the horizon: sessions are real server-side objects but
    #: never heartbeat, so the expiry watermark keeps tickers O(1).
    session_timeout_ms: float = 3_600_000.0
    connect_window_ms: float = 500.0
    settle_ms: float = 500.0
    drain_ms: float = 2000.0
    payload_bytes: int = 16
    fast_forward: bool = True
    recycle_messages: bool = True
    reservoir_size: int = 1024
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_sites < 2:
            raise ValueError("n_sites must be >= 2")
        if self.sessions_per_site < 1:
            raise ValueError("sessions_per_site must be positive")
        if self.arrival not in ("poisson", "deterministic"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.system not in ("wankeeper", "zk"):
            raise ValueError(f"unknown system {self.system!r}")
        if self.substrate not in ("zab", "wpaxos"):
            raise ValueError(f"unknown substrate {self.substrate!r}")
        if self.system == "wankeeper" and self.substrate != "zab":
            # WanKeeper requires a single-leader substrate (its site
            # ensembles relay through an elected leader); wpaxos pairs
            # with the flat ZK deployment instead.
            raise ValueError("wankeeper runs on the zab substrate only")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.keys_per_site < 1:
            raise ValueError("keys_per_site must be positive")
        if not 0 <= self.hub_index < self.n_sites:
            raise ValueError("hub_index out of range")
        if self.tick_ms <= 0 or self.duration_ms <= 0:
            raise ValueError("durations must be positive")

    @property
    def total_sessions(self) -> int:
        return self.n_sites * self.sessions_per_site

    def as_params(self) -> Dict[str, Any]:
        """Flat kwargs dict (for Scenario specs)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FleetStation:
    """Flyweight client layer for one site's sessions.

    All sessions share one inbox store and one consumer; per-session
    state is three array columns plus the shared inflight table. Replies
    are routed back to their session by the envelope's destination
    alias, so no session-id reverse map is needed.
    """

    __slots__ = (
        "env", "net", "spec", "site_index", "server_addr", "recorder",
        "addr", "inbox", "aliases", "_idx_of", "session_ids", "cxids",
        "connected", "ops_issued", "ops_completed", "ops_failed",
        "not_connected_drops", "unexpected_messages", "inflight",
        "_inflight_reqs", "_req_free", "_read_ops", "_write_ops",
        "_key_paths", "_write_data", "_recycle", "_issue_cb",
        "_connect_batch_cb",
    )

    #: Sessions per connect batch; batches spread over connect_window_ms.
    CONNECT_BATCH = 64

    def __init__(
        self,
        env: Environment,
        net: Network,
        spec: FleetFullSpec,
        site_index: int,
        site_name: str,
        server_addr: NodeAddress,
        read_ops: List[GetDataOp],
        write_ops: List[SetDataOp],
        key_paths: List[str],
    ):
        self.env = env
        self.net = net
        self.spec = spec
        self.site_index = site_index
        self.server_addr = server_addr
        self.recorder = LatencyRecorder(
            site_name, mode="sketch", reservoir_size=spec.reservoir_size
        )
        per_site = spec.sessions_per_site
        # One physical inbox; every session is an alias onto it. The
        # aliases bypass Site.address (whose membership list is O(n) per
        # registration) — nothing routes by site membership.
        self.addr = NodeAddress(site_name, "fleet-station")
        self.inbox = net.register(self.addr)
        self.inbox.consume(self._on_envelope)
        self.aliases = [
            NodeAddress(site_name, f"fs{k}") for k in range(per_site)
        ]
        register_alias = net.register_alias
        inbox = self.inbox
        for alias in self.aliases:
            register_alias(alias, inbox)
        # Lookups only (never iterated): hash-seed safe.
        self._idx_of = {alias: k for k, alias in enumerate(self.aliases)}
        self.session_ids: List[Optional[str]] = [None] * per_site
        self.cxids = array("I", bytes(4 * per_site))
        self.connected = 0
        self.ops_issued = 0
        self.ops_completed = 0
        self.ops_failed = 0
        self.not_connected_drops = 0
        self.unexpected_messages = 0
        #: key -> issue time; negative timestamps mark writes, so the
        #: steady state allocates no per-op tuples.
        self.inflight: Dict[int, float] = {}
        self._inflight_reqs: Dict[int, OpRequest] = {}
        self._req_free: List[OpRequest] = []
        self._read_ops = read_ops
        self._write_ops = write_ops
        self._key_paths = key_paths
        self._write_data = b"w" * spec.payload_bytes
        self._recycle = spec.recycle_messages
        self._issue_cb = self._issue
        self._connect_batch_cb = self._connect_batch

    # -- connect phase -------------------------------------------------------

    def connect_from(self, t_start: float) -> None:
        """Schedule all sessions' ConnectRequests over the connect window."""
        per_site = self.spec.sessions_per_site
        batch = self.CONNECT_BATCH
        n_batches = (per_site + batch - 1) // batch
        spacing = self.spec.connect_window_ms / n_batches
        call_at = self.env.call_at
        for b in range(n_batches):
            call_at(t_start + b * spacing, self._connect_batch_cb, b * batch)

    def _connect_batch(self, start: int) -> None:
        spec = self.spec
        end = min(start + self.CONNECT_BATCH, spec.sessions_per_site)
        send = self.net.send
        server = self.server_addr
        timeout = spec.session_timeout_ms
        aliases = self.aliases
        for k in range(start, end):
            alias = aliases[k]
            send(alias, server, ConnectRequest(alias, timeout))

    # -- op issue (called by the fleet driver at each arrival instant) -------

    def _issue(self, code: int) -> None:
        is_write = code & 1
        rest = code >> 1
        n_keys = len(self._key_paths)
        key_index = rest % n_keys
        sess = rest // n_keys
        session_id = self.session_ids[sess]
        if session_id is None:
            self.not_connected_drops += 1
            return
        cxid = self.cxids[sess] + 1
        self.cxids[sess] = cxid
        recycle = self._recycle
        if recycle:
            op = (
                self._write_ops[key_index]
                if is_write
                else self._read_ops[key_index]
            )
            free = self._req_free
            if free:
                req = free.pop()
                req.session_id = session_id
                req.cxid = cxid
                req.op = op
            else:
                req = OpRequest(session_id, cxid, op)
        else:
            # Unoptimized comparison path: fresh records per op, exactly
            # what a naive per-session client would allocate.
            path = self._key_paths[key_index]
            op = (
                SetDataOp(path, self._write_data)
                if is_write
                else GetDataOp(path)
            )
            req = OpRequest(session_id, cxid, op)
        key = sess * _CXID_SPAN + cxid
        now = self.env._now
        self.inflight[key] = -now if is_write else now
        if recycle:
            self._inflight_reqs[key] = req
        self.ops_issued += 1
        self.net.send(self.aliases[sess], self.server_addr, req)

    # -- replies -------------------------------------------------------------

    def _on_envelope(self, envelope) -> None:
        body = envelope.body
        cls = body.__class__
        if cls is OpReply:
            idx = self._idx_of[envelope.dst]
            key = idx * _CXID_SPAN + body.cxid
            issued = self.inflight.pop(key, None)
            if issued is None:
                self.unexpected_messages += 1
                return
            if self._recycle:
                req = self._inflight_reqs.pop(key, None)
                if req is not None:
                    # The server never retains the request shell past the
                    # handler that answered it: safe to reuse.
                    req.op = None
                    self._req_free.append(req)
            now = self.env._now
            if body.ok:
                self.ops_completed += 1
            else:
                self.ops_failed += 1
            if issued < 0.0:
                self.recorder.record("write", -issued, now + issued, body.ok)
            else:
                self.recorder.record("read", issued, now - issued, body.ok)
        elif cls is ConnectReply:
            idx = self._idx_of[envelope.dst]
            if self.session_ids[idx] is None:
                self.session_ids[idx] = body.session_id
                self.connected += 1
        else:
            # Watch / expiry / heartbeat traffic the stations don't use.
            self.unexpected_messages += 1


class _FleetFullEngine:
    """All run state for one full-stack fleet cell (built fresh per run)."""

    def __init__(self, spec: FleetFullSpec):
        self.spec = spec
        self.sites = fleet_sites(spec.n_sites, spec.seed)
        # jitter_fraction=0.0 keeps the transport on its RNG-free fast
        # path: delays are per-pair constants.
        self.topology = build_fleet_topology(self.sites, seed=spec.seed)
        self.env = Environment()
        self.net = Network(self.env, self.topology)
        self.names = [site.name for site in self.sites]
        self.hub_site = self.names[spec.hub_index]
        self.phase = [site.longitude / 360.0 for site in self.sites]
        self.rngs = [
            seeded_rng(spec.seed, f"fleet-full-site-{i:04d}")
            for i in range(spec.n_sites)
        ]
        self.carry = [0.0] * spec.n_sites
        self.offered = [0] * spec.n_sites

        # Shared immutable op records, one per key, site-major.
        self.key_paths: List[str] = []
        for name in self.names:
            for j in range(spec.keys_per_site):
                self.key_paths.append(f"/fleet/{name}/k{j:02d}")
        self.read_ops = [GetDataOp(path) for path in self.key_paths]
        write_data = b"w" * spec.payload_bytes
        self.write_ops = [SetDataOp(path, write_data) for path in self.key_paths]

        self.deployment = self._build_deployment()
        self.stations: List[FleetStation] = []
        self._ticks = int(math.ceil(spec.duration_ms / spec.tick_ms))
        self._t0 = 0.0
        self._scan_cb = self._scan
        self.bootstrap_ms = 0.0
        #: Per-tick arrival mean at diurnal multiplier 1.0.
        self._base = (
            spec.site_ops_per_sec * spec.load_multiplier * spec.tick_ms / 1000.0
        )
        # With no diurnal modulation every site's mean is ``_base``, so
        # the Knuth acceptance threshold is one exp() for the whole run
        # and the common zero-arrival tick costs a single rng.random()
        # per site. The inline draw consumes the stream exactly as
        # ``_poisson`` does (first factor ``r`` rejects at k=0, then the
        # loop continues with k=1, p=r), so schedules are bit-identical
        # to the generic path.
        self._flat_threshold: Optional[float] = (
            math.exp(-self._base)
            if (
                spec.arrival == "poisson"
                and spec.diurnal_amplitude <= 0.0
                and 0.0 < self._base < 30.0
            )
            else None
        )

    def _build_deployment(self):
        spec = self.spec
        if spec.system == "wankeeper":
            from repro.wankeeper.deployment import build_wankeeper_deployment

            # Key tokens start at their home site; structural parents
            # stay at the hub, where the bootstrap client creates them.
            tokens: Dict[str, str] = {"/": self.hub_site, "/fleet": self.hub_site}
            for name in self.names:
                tokens[f"/fleet/{name}"] = self.hub_site
            for index, path in enumerate(self.key_paths):
                tokens[path] = self.names[index // spec.keys_per_site]
            return build_wankeeper_deployment(
                self.env,
                self.net,
                self.topology,
                sites=self.names,
                l2_site=self.hub_site,
                voters_per_site=spec.voters_per_site,
                initial_tokens=tokens,
                substrate=spec.substrate,
            )
        from repro.zk.deployment import build_zk_deployment

        if spec.substrate == "wpaxos":
            # WPaxos's natural shape: one proposing voter per site.
            return build_zk_deployment(
                self.env,
                self.net,
                self.topology,
                leader_site=self.hub_site,
                voting_sites=self.names,
                substrate="wpaxos",
            )
        return build_zk_deployment(
            self.env,
            self.net,
            self.topology,
            leader_site=self.hub_site,
            voters_in_leader_site=3,
            observer_sites=[n for n in self.names if n != self.hub_site],
            substrate="zab",
        )

    # -- arrival planning (shared by both driver modes) ----------------------

    def _rate_multiplier(self, site_index: int, rel_ms: float) -> float:
        spec = self.spec
        if spec.diurnal_amplitude <= 0.0:
            return 1.0
        day_fraction = rel_ms / spec.diurnal_period_ms + self.phase[site_index]
        factor = 1.0 + spec.diurnal_amplitude * math.cos(
            2.0 * math.pi * day_fraction
        )
        return factor if factor > 0.0 else 0.0

    def _schedule_tick(self, tick_index: int) -> bool:
        """Draw every site's arrivals for one tick and schedule each op
        at its exact instant. Returns True if any site had arrivals.

        Draw and insertion order is (site, arrival) within the tick —
        identical whether called from the fast-forward scan or the
        per-tick generator, which is what makes the two modes produce
        bit-identical schedules.
        """
        flat_threshold = self._flat_threshold
        rngs = self.rngs
        if flat_threshold is not None:
            # Flat-modulation fast path: a quiescent site costs exactly
            # one rng.random(); everything arrival-dependent is deferred
            # to _emit_arrivals, so across idle stretches this loop is
            # the entire per-tick cost.
            busy = False
            for i in range(len(rngs)):
                rng = rngs[i]
                r = rng.random()
                if r <= flat_threshold:
                    continue
                arrivals = 1
                p = r
                random = rng.random
                while True:
                    p *= random()
                    if p <= flat_threshold:
                        break
                    arrivals += 1
                busy = True
                self._emit_arrivals(tick_index, i, arrivals, rng)
            return busy
        spec = self.spec
        rel = tick_index * spec.tick_ms
        base = self._base
        poisson = spec.arrival == "poisson"
        flat = spec.diurnal_amplitude <= 0.0
        busy = False
        for i in range(spec.n_sites):
            rng = rngs[i]
            mean = base if flat else base * self._rate_multiplier(i, rel)
            if poisson:
                arrivals = _poisson(rng, mean)
            else:
                exact = mean + self.carry[i]
                arrivals = int(exact)
                self.carry[i] = exact - arrivals
            if arrivals <= 0:
                continue
            busy = True
            self._emit_arrivals(tick_index, i, arrivals, rng)
        return busy

    def _emit_arrivals(
        self, tick_index: int, site_index: int, arrivals: int, rng
    ) -> None:
        """Draw the per-arrival choices for one busy (tick, site) cell and
        schedule each op at its exact instant. Consumes ``rng`` in the
        same (sess, hotspot, key, write) order as the original inline
        loop, so factoring it out of :meth:`_schedule_tick` changes no
        schedule."""
        spec = self.spec
        self.offered[site_index] += arrivals
        rel = tick_index * spec.tick_ms
        t_tick = self._t0 + rel
        keys_per_site = spec.keys_per_site
        n_sites = spec.n_sites
        hot_base = (
            int((rel / spec.diurnal_period_ms % 1.0) * n_sites) % n_sites
        ) * keys_per_site
        n_keys = n_sites * keys_per_site
        per_site = spec.sessions_per_site
        hotspot = spec.hotspot_fraction
        write_fraction = spec.write_fraction
        call_at = self.env.call_at
        spacing = spec.tick_ms / arrivals
        issue = self.stations[site_index]._issue_cb
        home_base = site_index * keys_per_site
        randrange = rng.randrange
        random = rng.random
        for k in range(arrivals):
            at = t_tick + (k + 0.5) * spacing
            sess = randrange(per_site)
            if random() < hotspot:
                key_index = hot_base + randrange(keys_per_site)
            else:
                key_index = home_base + randrange(keys_per_site)
            is_write = random() < write_fraction
            code = ((sess * n_keys + key_index) << 1) | (1 if is_write else 0)
            call_at(at, issue, code)

    def _scan(self, tick_index: int) -> None:
        """Idle-gap fast-forward: walk ticks inline, re-arming only after
        a busy tick. Quiescent stretches cost zero kernel events — the
        clock jumps straight to the next burst."""
        ticks = self._ticks
        schedule = self._schedule_tick
        t0 = self._t0
        tick_ms = self.spec.tick_ms
        call_at = self.env.call_at
        while tick_index < ticks:
            busy = schedule(tick_index)
            tick_index += 1
            if busy and tick_index < ticks:
                call_at(t0 + tick_index * tick_ms, self._scan_cb, tick_index)
                return

    def _naive_driver(self, ticks: int):
        """Reference driver: one kernel wake per tick, identical draws."""
        env = self.env
        tick_ms = self.spec.tick_ms
        schedule = self._schedule_tick
        for tick_index in range(ticks):
            schedule(tick_index)
            if tick_index + 1 < ticks:
                yield env.sleep(tick_ms)

    # -- run -----------------------------------------------------------------

    def _bootstrap(self):
        """Create the key tree through one real client at the hub."""
        client = self.deployment.client(
            self.hub_site,
            name="fleet-bootstrap",
            session_timeout_ms=self.spec.session_timeout_ms,
        )
        yield client.connect()
        yield client.create("/fleet", b"")
        for name in self.names:
            yield client.create(f"/fleet/{name}", b"")
        for path in self.key_paths:
            yield client.create(path, b"")

    def run(self) -> Dict[str, Any]:
        spec = self.spec
        env = self.env
        self.deployment.start()
        self.deployment.stabilize()
        boot_start = env.now
        env.run(until=env.process(self._bootstrap(), name="fleet-bootstrap"))
        self.bootstrap_ms = env.now - boot_start
        # Quantize the connect phase start so every later phase boundary
        # is a pure function of the spec.
        t_connect = 50.0 * math.ceil(env.now / 50.0)
        if t_connect > env.now:
            env.run(until=t_connect)
        for i in range(spec.n_sites):
            station = FleetStation(
                env, self.net, spec, i, self.names[i],
                self.deployment.server_at(self.names[i]).client_addr,
                self.read_ops, self.write_ops, self.key_paths,
            )
            self.stations.append(station)
            station.connect_from(t_connect)
        env.run(until=t_connect + spec.connect_window_ms + spec.settle_ms)
        connected = sum(station.connected for station in self.stations)
        if connected < spec.total_sessions:
            raise SimulationError(
                f"only {connected}/{spec.total_sessions} sessions connected"
            )
        self._t0 = env.now
        if spec.fast_forward:
            env.call_soon(self._scan_cb, 0)
        else:
            env.process(self._naive_driver(self._ticks), name="fleet-driver")
        env.run(until=self._t0 + self._ticks * spec.tick_ms + spec.drain_ms)
        return self.payload()

    # -- result payload ------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        spec = self.spec
        duration_s = self._ticks * spec.tick_ms / 1000.0
        offered = sum(self.offered)
        issued = sum(station.ops_issued for station in self.stations)
        completed = sum(station.ops_completed for station in self.stations)
        failed = sum(station.ops_failed for station in self.stations)
        merged = self.stations[0].recorder
        for station in self.stations[1:]:
            merged = merged.merged(station.recorder)

        def maybe(fn, *args):
            try:
                return fn(*args)
            except ValueError:
                return None

        servers = self.deployment.servers
        tokens_granted = sum(
            getattr(server, "tokens_granted", 0) for server in servers
        )
        per_site_completed = {
            self.names[i]: self.stations[i].ops_completed
            for i in range(spec.n_sites)
        }
        return {
            "system": spec.system,
            "substrate": spec.substrate,
            "n_sites": spec.n_sites,
            "sessions": sum(st.connected for st in self.stations),
            "offered_ops": offered,
            "issued_ops": issued,
            "completed_ops": completed,
            "failed_ops": failed,
            "in_flight_at_horizon": issued - completed - failed,
            "offered_ops_per_sec": round(offered / duration_s, 3),
            "throughput_ops_per_sec": round(completed / duration_s, 3),
            "reads_served": sum(s.reads_served for s in servers),
            "writes_accepted": sum(s.writes_accepted for s in servers),
            "commits_applied": sum(s.commits_applied for s in servers),
            "token_migrations": tokens_granted,
            "messages_sent": self.net.messages_sent,
            "bootstrap_ms": round(self.bootstrap_ms, 3),
            "read_p50_ms": maybe(merged.percentile_latency, 50, "read"),
            "read_p99_ms": maybe(merged.percentile_latency, 99, "read"),
            "write_p50_ms": maybe(merged.percentile_latency, 50, "write"),
            "write_p99_ms": maybe(merged.percentile_latency, 99, "write"),
            "write_mean_ms": maybe(merged.mean_latency, "write"),
            "unexpected_messages": sum(
                st.unexpected_messages for st in self.stations
            ),
            "not_connected_drops": sum(
                st.not_connected_drops for st in self.stations
            ),
            "per_site_completed": per_site_completed,
        }


def run_fleet_full(spec: FleetFullSpec) -> Dict[str, Any]:
    """Run one full-stack fleet cell to completion and return its payload."""
    return _FleetFullEngine(spec).run()
