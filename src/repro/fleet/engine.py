"""Open-loop fleet traffic driver and memory-lean session engine.

The closed-loop YCSB clients in :mod:`repro.workloads.driver` model the
paper's setup — one coroutine per client, each waiting for its previous
operation before issuing the next. That shape cannot reach "millions of
users": a generator coroutine plus per-op tuples costs kilobytes per
session, and closed-loop arrival rates collapse as soon as latency
rises, hiding saturation behaviour entirely.

This engine inverts both choices:

* **Open-loop arrivals** — each site offers load at a configured rate
  (Poisson or deterministic arrival process) regardless of completions,
  so pushing the offered load past a site's service capacity produces
  real queueing delay and a visible saturation knee, exactly the axis
  the coordination-evaluation literature measures.
* **Batched session state machines** — one kernel process *per site*
  steps all of that site's sessions in arrival-time order each tick.
  Session state lives in flat ``array`` columns (ops issued, last
  completion instant), indexed by integer session id; there are no
  per-session objects and no per-op tuples, so 10^6 concurrent sessions
  cost ~12 bytes each instead of kilobytes.
* **Sharded key/token space** — keys are aggregated into shards; a
  token directory (three more array columns) tracks the owning site,
  the consecutive-access streak, and the streak's site per shard,
  implementing the WanKeeper consecutive-access migration rule at fleet
  scale. Writes commit locally when the site holds the shard token and
  are forwarded through the hub otherwise; ``migration_threshold``
  consecutive foreign accesses migrate the token (counted per site).
* **Follow-the-sun diurnal modulator** — each site's offered rate is
  modulated by a cosine of its local solar time (from the generated
  site's longitude), and a global hotspot window rotates through the
  shard space once per simulated day, so the token-ownership map chases
  the sun across continents.

Latency is recorded through :class:`repro.workloads.stats
.LatencyRecorder` in its streaming ``sketch`` mode (exact counts/means,
fixed-size reservoir percentiles), keeping memory flat in the operation
count.

Determinism: every stochastic choice draws from a per-site named
``seeded_rng`` stream consumed in (tick, arrival) order; sites are
stepped in index order at each tick; no unordered iteration anywhere.
Payloads are pure functions of the spec, bit-identical across
PYTHONHASHSEED values and executors.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass, fields
from typing import Any, Dict, List

from repro.fleet.topology import build_fleet_topology, fleet_sites
from repro.sim.kernel import Environment
from repro.sim.rng import seeded_rng
from repro.workloads.stats import LatencyRecorder

__all__ = ["FleetSpec", "run_fleet"]


@dataclass
class FleetSpec:
    """Parameters of one fleet-tier run (all JSON scalars, cell-ready)."""

    n_sites: int = 20
    sessions_per_site: int = 5000
    duration_ms: float = 60000.0
    tick_ms: float = 100.0
    #: Offered load per site at load_multiplier 1.0 and diurnal peak 1.0.
    site_ops_per_sec: float = 150.0
    load_multiplier: float = 1.0
    arrival: str = "poisson"  # "poisson" | "deterministic"
    write_fraction: float = 0.5
    shards: int = 4096
    migration_threshold: int = 2
    hub_index: int = 0
    diurnal_amplitude: float = 0.6
    diurnal_period_ms: float = 20000.0  # one simulated "day"
    hotspot_fraction: float = 0.15
    hotspot_width_fraction: float = 0.05
    #: Per-op service time at a site; sets the saturation point
    #: (capacity = 1000 / service_time_ms ≈ 333 ops/sec/site). Calibrated
    #: so the 2.0x load sweep crosses the knee at diurnal peaks while
    #: 1.0x stays below it.
    service_time_ms: float = 3.0
    reservoir_size: int = 2048
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_sites < 2:
            raise ValueError("n_sites must be >= 2")
        if self.sessions_per_site < 1:
            raise ValueError("sessions_per_site must be positive")
        if self.arrival not in ("poisson", "deterministic"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.shards < self.n_sites:
            raise ValueError("need at least one shard per site")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.migration_threshold < 1:
            raise ValueError("migration_threshold must be >= 1")
        if not 0 <= self.hub_index < self.n_sites:
            raise ValueError("hub_index out of range")
        if self.tick_ms <= 0 or self.duration_ms <= 0:
            raise ValueError("durations must be positive")

    @property
    def total_sessions(self) -> int:
        return self.n_sites * self.sessions_per_site

    def as_params(self) -> Dict[str, Any]:
        """Flat kwargs dict (for Scenario specs)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _poisson(rng, mean: float) -> int:
    """One Poisson draw from ``rng`` (Knuth for small means, normal
    approximation above — both consume only this stream)."""
    if mean <= 0.0:
        return 0
    if mean < 30.0:
        threshold = math.exp(-mean)
        k = 0
        p = 1.0
        while True:
            p *= rng.random()
            if p <= threshold:
                return k
            k += 1
    n = int(round(rng.gauss(mean, math.sqrt(mean))))
    return n if n > 0 else 0


class _FleetEngine:
    """All run state for one fleet simulation (built fresh per run)."""

    def __init__(self, spec: FleetSpec):
        self.spec = spec
        self.sites = fleet_sites(spec.n_sites, spec.seed)
        self.topology = build_fleet_topology(self.sites, seed=spec.seed)
        n = spec.n_sites
        names = [site.name for site in self.sites]
        # Dense index->index RTT matrix: the per-op hot loop never
        # touches string keys or frozensets.
        self.rtt = [
            [self.topology.rtt(names[i], names[j]) for j in range(n)]
            for i in range(n)
        ]
        self.local_rtt = 2.0 * self.topology.local_one_way_ms
        # Diurnal phase per site from its longitude: local solar noon at
        # phase 0 (site at longitude L leads UTC by L/360 of a day).
        self.phase = [site.longitude / 360.0 for site in self.sites]

        # -- session table: flat columns, ids are (site * per_site + k).
        total = spec.total_sessions
        self.session_ops = array("I", bytes(4 * total))
        self.session_last_ms = array("d", bytes(8 * total))

        # -- sharded token directory.
        shards = spec.shards
        self.owner = array("h", (s * n // shards for s in range(shards)))
        self.streak_site = array("h", self.owner)
        self.streak = array("H", bytes(2 * shards))

        # -- per-site open-loop accounting.
        self.rngs = [seeded_rng(spec.seed, f"fleet-site-{i:04d}") for i in range(n)]
        self.busy_until = [0.0] * n
        self.carry = [0.0] * n  # deterministic-arrival remainders
        self.offered = [0] * n
        self.completed = [0] * n
        self.dropped_after_horizon = [0] * n
        self.migrations_in = [0] * n  # tokens pulled *to* site i
        self.forwarded_writes = 0
        self.local_writes = 0
        self.queue_wait_sum = 0.0
        self.recorders = [
            LatencyRecorder(
                names[i], mode="sketch", reservoir_size=spec.reservoir_size
            )
            for i in range(n)
        ]

        # Home shard range per site (even partition of the shard space).
        self.home_start = [i * shards // n for i in range(n)]
        self.home_width = [
            max(1, (i + 1) * shards // n - i * shards // n) for i in range(n)
        ]
        self.hot_width = max(1, int(shards * spec.hotspot_width_fraction))

    # -- per-tick batch step -------------------------------------------------

    def rate_multiplier(self, site_index: int, now_ms: float) -> float:
        """Diurnal follow-the-sun modulation of a site's offered rate."""
        spec = self.spec
        if spec.diurnal_amplitude <= 0.0:
            return 1.0
        day_fraction = now_ms / spec.diurnal_period_ms + self.phase[site_index]
        factor = 1.0 + spec.diurnal_amplitude * math.cos(
            2.0 * math.pi * day_fraction
        )
        return factor if factor > 0.0 else 0.0

    def step_site(self, site_index: int, now_ms: float) -> None:
        """Process one site's arrivals for the tick starting at now_ms."""
        spec = self.spec
        rng = self.rngs[site_index]
        mean = (
            spec.site_ops_per_sec
            * spec.load_multiplier
            * self.rate_multiplier(site_index, now_ms)
            * spec.tick_ms
            / 1000.0
        )
        if spec.arrival == "poisson":
            arrivals = _poisson(rng, mean)
        else:
            exact = mean + self.carry[site_index]
            arrivals = int(exact)
            self.carry[site_index] = exact - arrivals
        if arrivals <= 0:
            return
        self.offered[site_index] += arrivals

        # Bind everything the per-arrival loop touches to locals.
        per_site = spec.sessions_per_site
        session_base = site_index * per_site
        rtt_row = self.rtt[site_index]
        hub_rtt = rtt_row[spec.hub_index]
        owner = self.owner
        streak = self.streak
        streak_site = self.streak_site
        threshold = spec.migration_threshold
        shards = spec.shards
        recorder = self.recorders[site_index]
        session_ops = self.session_ops
        session_last = self.session_last_ms
        busy = self.busy_until[site_index]
        service = spec.service_time_ms
        horizon = spec.duration_ms
        spacing = spec.tick_ms / arrivals
        hot_center = int(
            (now_ms / spec.diurnal_period_ms % 1.0) * shards
        )

        completed = 0
        dropped = 0
        for k in range(arrivals):
            arrival = now_ms + (k + 0.5) * spacing
            session = session_base + rng.randrange(per_site)
            if rng.random() < spec.hotspot_fraction:
                shard = (hot_center + rng.randrange(self.hot_width)) % shards
            else:
                shard = self.home_start[site_index] + rng.randrange(
                    self.home_width[site_index]
                )
            is_write = rng.random() < spec.write_fraction
            if is_write:
                holder = owner[shard]
                if holder == site_index:
                    latency = self.local_rtt
                    self.local_writes += 1
                else:
                    # Forwarded through the hub to the owning site.
                    latency = hub_rtt + self.rtt[spec.hub_index][holder]
                    self.forwarded_writes += 1
                    if streak_site[shard] == site_index:
                        run = streak[shard] + 1
                    else:
                        streak_site[shard] = site_index
                        run = 1
                    if run >= threshold:
                        # Token migrates here: one extra hub round trip.
                        latency += hub_rtt
                        owner[shard] = site_index
                        streak[shard] = 0
                        self.migrations_in[site_index] += 1
                    else:
                        streak[shard] = run
            else:
                latency = self.local_rtt
            # Single-server queue: an op arriving while the server is
            # busy waits until busy-until. The tie (arrival exactly at
            # busy-until) starts service at that same instant with zero
            # queue wait — it is queued behind the op that completes
            # there, never served concurrently with it, so busy-until
            # still advances by one full service time per op.
            if arrival >= busy:
                start_service = arrival
            else:
                start_service = busy
            busy = start_service + service
            queue_wait = start_service - arrival
            self.queue_wait_sum += queue_wait
            completion = busy + latency
            session_ops[session] += 1
            if completion > session_last[session]:
                session_last[session] = completion
            if completion <= horizon:
                completed += 1
                recorder.record(
                    "write" if is_write else "read",
                    arrival,
                    completion - arrival,
                )
            else:
                dropped += 1
        self.busy_until[site_index] = busy
        self.completed[site_index] += completed
        self.dropped_after_horizon[site_index] += dropped

    # -- result payload ------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        spec = self.spec
        duration_s = spec.duration_ms / 1000.0
        offered = sum(self.offered)
        completed = sum(self.completed)
        active = sum(1 for count in self.session_ops if count)
        merged = self.recorders[0]
        for recorder in self.recorders[1:]:
            merged = merged.merged(recorder)

        def maybe(fn, *args):
            try:
                return fn(*args)
            except ValueError:
                return None

        per_site_completed = {
            self.sites[i].name: self.completed[i] for i in range(spec.n_sites)
        }
        per_site_migrations = {
            self.sites[i].name: self.migrations_in[i]
            for i in range(spec.n_sites)
        }
        writes = self.local_writes + self.forwarded_writes
        return {
            "n_sites": spec.n_sites,
            "sessions": spec.total_sessions,
            "active_sessions": active,
            "offered_ops": offered,
            "completed_ops": completed,
            "in_flight_at_horizon": sum(self.dropped_after_horizon),
            "offered_ops_per_sec": round(offered / duration_s, 3),
            "throughput_ops_per_sec": round(completed / duration_s, 3),
            "token_migrations": sum(self.migrations_in),
            "forwarded_writes": self.forwarded_writes,
            "local_write_fraction": (
                round(self.local_writes / writes, 6) if writes else None
            ),
            "mean_queue_ms": (
                round(self.queue_wait_sum / offered, 6) if offered else 0.0
            ),
            "read_p50_ms": maybe(merged.percentile_latency, 50, "read"),
            "write_p50_ms": maybe(merged.percentile_latency, 50, "write"),
            "write_p99_ms": maybe(merged.percentile_latency, 99, "write"),
            "write_mean_ms": maybe(merged.mean_latency, "write"),
            "per_site_completed": per_site_completed,
            "per_site_migrations": per_site_migrations,
        }


def run_fleet(spec: FleetSpec) -> Dict[str, Any]:
    """Run one fleet-tier simulation to completion and return its payload.

    One kernel process per *site* (not per session) steps the batched
    session table; the simulation ends when the configured duration has
    elapsed at every site.
    """
    engine = _FleetEngine(spec)
    env = Environment()
    ticks = int(math.ceil(spec.duration_ms / spec.tick_ms))

    def site_process(site_index: int):
        for _tick in range(ticks):
            engine.step_site(site_index, env.now)
            yield env.timeout(spec.tick_ms)

    for i in range(spec.n_sites):
        env.process(site_process(i), name=f"fleet-site-{i}")
    env.run()
    return engine.payload()
