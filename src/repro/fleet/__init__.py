"""Fleet-scale workload tier: generated N-site topologies and an
open-loop, memory-lean session engine.

The paper's evaluation stops at three AWS regions and a handful of
closed-loop clients. This package is the "millions of users" tier on
top of the same simulation substrate:

* :mod:`repro.fleet.topology` — a seeded generator for N-site WAN
  topologies (N ~ 20-50) with realistic RTT classes (intra-metro /
  continental / transcontinental) and deterministic site naming,
  producing ordinary :class:`repro.net.topology.Topology` objects;
* :mod:`repro.fleet.engine` — an **open-loop** traffic driver
  (Poisson or deterministic arrivals per site, with a diurnal
  follow-the-sun modulator) over a sharded key/token space, backed by
  array-columns instead of per-session coroutines so a single run
  sustains 10^5-10^6 concurrent sessions in tens of megabytes;
* :mod:`repro.fleet.full` — the same open-loop arrival machinery
  injected into a **real** ZK/WanKeeper deployment on either substrate:
  idle-gap fast-forward, flyweight per-site client stations, and
  allocation-free messaging make 10^4+ concurrent real sessions
  affordable.

Everything here is bit-deterministic across PYTHONHASHSEED values and
across the in-process / warm-pool / spawn executors: all randomness
comes from named :func:`repro.sim.rng.seeded_rng` streams and no code
path iterates an unordered container.
"""

from repro.fleet.engine import FleetSpec, run_fleet
from repro.fleet.full import FleetFullSpec, FleetStation, run_fleet_full
from repro.fleet.topology import (
    CONTINENTS,
    FleetSite,
    build_fleet_topology,
    fleet_sites,
    fleet_topology,
    topology_fingerprint,
)

__all__ = [
    "CONTINENTS",
    "FleetFullSpec",
    "FleetSite",
    "FleetSpec",
    "FleetStation",
    "build_fleet_topology",
    "fleet_sites",
    "fleet_topology",
    "run_fleet",
    "run_fleet_full",
    "topology_fingerprint",
]
