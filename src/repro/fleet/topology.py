"""Seeded generator for N-site WAN topologies.

Produces ordinary :class:`repro.net.topology.Topology` objects, so the
generated fleets plug into the same ``Network``/deployment machinery as
the paper's hand-written three-region topology.

Sites are spread round-robin over six continents and grouped into
metros; a fraction of metros host two sites so every RTT class is
represented:

* **intra-metro** — two sites in the same metro area, ~1-2 ms one-way;
* **continental** — same continent, different metro, ~6-20 ms one-way;
* **transcontinental** — different continents, one-way delay grows with
  the longitudinal distance between them (~20-120 ms).

Naming is deterministic and carries the placement: ``eu03b`` is the
second site of the fourth European metro. All random draws come from a
single named :func:`repro.sim.rng.seeded_rng` stream consumed in site
index order, so the same ``(n_sites, seed)`` always yields the same
sites and the same delay matrix, bit for bit, on any interpreter.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.net.topology import DEFAULT_LOCAL_ONE_WAY_MS, Topology
from repro.sim.rng import seeded_rng

__all__ = [
    "CONTINENTS",
    "FleetSite",
    "build_fleet_topology",
    "fleet_sites",
    "fleet_topology",
    "topology_fingerprint",
]

#: (code, reference longitude in degrees) for the six inhabited
#: continents; the longitude drives both transcontinental delay and the
#: engine's follow-the-sun diurnal phase.
CONTINENTS: Tuple[Tuple[str, float], ...] = (
    ("na", -100.0),
    ("sa", -58.0),
    ("eu", 10.0),
    ("af", 25.0),
    ("as", 105.0),
    ("oc", 150.0),
)

#: Fraction of sites that join their continent's previous metro instead
#: of founding a new one (creates intra-metro pairs).
_SECOND_SITE_FRACTION = 0.25

# One-way delay classes, in ms.
_INTRA_METRO_MS = (0.8, 1.8)
_CONTINENTAL_BASE_MS = 6.0
_CONTINENTAL_PER_DEG = 0.15
_CONTINENTAL_JITTER_MS = 4.0
_TRANSCONTINENTAL_BASE_MS = 18.0
_TRANSCONTINENTAL_PER_DEG = 0.45
_TRANSCONTINENTAL_JITTER_MS = 8.0


@dataclass(frozen=True)
class FleetSite:
    """One generated site: placement metadata next to its name."""

    index: int
    name: str
    continent: str
    metro: int  # metro index within the continent
    longitude: float  # degrees, drives transcontinental delay + diurnal phase


def fleet_sites(n_sites: int, seed: int = 42) -> List[FleetSite]:
    """The deterministic site list for ``(n_sites, seed)``."""
    if n_sites < 2:
        raise ValueError("a fleet needs at least 2 sites")
    rng = seeded_rng(seed, "fleet-sites")
    sites: List[FleetSite] = []
    # Per-continent bookkeeping, indexed by continent position (lists,
    # never dicts keyed by anything unordered).
    metro_count = [0] * len(CONTINENTS)
    last_metro_slots = [0] * len(CONTINENTS)
    metro_longitude = [0.0] * len(CONTINENTS)
    for index in range(n_sites):
        c = index % len(CONTINENTS)
        code, base_longitude = CONTINENTS[c]
        join_previous = (
            metro_count[c] > 0
            and last_metro_slots[c] == 1
            and rng.random() < _SECOND_SITE_FRACTION
        )
        if join_previous:
            metro = metro_count[c] - 1
            slot = last_metro_slots[c]
            last_metro_slots[c] += 1
            longitude = metro_longitude[c]
        else:
            metro = metro_count[c]
            metro_count[c] += 1
            last_metro_slots[c] = 1
            slot = 0
            longitude = base_longitude + rng.uniform(-20.0, 20.0)
            metro_longitude[c] = longitude
        name = f"{code}{metro:02d}{chr(ord('a') + slot)}"
        sites.append(FleetSite(index, name, code, metro, round(longitude, 3)))
    return sites


def _angular_distance(lon_a: float, lon_b: float) -> float:
    delta = abs(lon_a - lon_b) % 360.0
    return min(delta, 360.0 - delta)


def build_fleet_topology(
    sites: List[FleetSite],
    seed: int = 42,
    local_one_way_ms: float = DEFAULT_LOCAL_ONE_WAY_MS,
    jitter_fraction: float = 0.0,
) -> Topology:
    """Build the full pairwise delay matrix for a generated site list.

    Delays are drawn in a fixed ``i < j`` double loop from one named
    stream, so the matrix is a pure function of ``(sites, seed)``.
    """
    rng = seeded_rng(seed, "fleet-delays")
    one_way: Dict[FrozenSet[str], float] = {}
    for i in range(len(sites)):
        a = sites[i]
        for j in range(i + 1, len(sites)):
            b = sites[j]
            if a.continent == b.continent and a.metro == b.metro:
                delay = rng.uniform(*_INTRA_METRO_MS)
            elif a.continent == b.continent:
                delay = (
                    _CONTINENTAL_BASE_MS
                    + _CONTINENTAL_PER_DEG
                    * _angular_distance(a.longitude, b.longitude)
                    + rng.uniform(0.0, _CONTINENTAL_JITTER_MS)
                )
            else:
                delay = (
                    _TRANSCONTINENTAL_BASE_MS
                    + _TRANSCONTINENTAL_PER_DEG
                    * _angular_distance(a.longitude, b.longitude)
                    + rng.uniform(0.0, _TRANSCONTINENTAL_JITTER_MS)
                )
            one_way[frozenset({a.name, b.name})] = round(delay, 3)
    return Topology(
        [site.name for site in sites],
        one_way_ms=one_way,
        local_one_way_ms=local_one_way_ms,
        jitter_fraction=jitter_fraction,
    )


def fleet_topology(
    n_sites: int,
    seed: int = 42,
    local_one_way_ms: float = DEFAULT_LOCAL_ONE_WAY_MS,
    jitter_fraction: float = 0.0,
) -> Topology:
    """Convenience wrapper: generate sites and their delay matrix."""
    return build_fleet_topology(
        fleet_sites(n_sites, seed),
        seed=seed,
        local_one_way_ms=local_one_way_ms,
        jitter_fraction=jitter_fraction,
    )


def topology_fingerprint(topology: Topology) -> str:
    """A stable content digest of a topology's sites and delay matrix.

    Two topologies fingerprint equal iff they have the same site names,
    the same intra-site delay, and bit-identical one-way delays for
    every pair — the property the cross-hashseed / cross-executor
    determinism tests pin.
    """
    parts = [",".join(sorted(topology.sites))]
    parts.append(repr(topology.local_one_way_ms))
    for a, b, delay in topology.wan_pairs():
        parts.append(f"{a}|{b}|{delay!r}")
    payload = "\n".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
