"""Seeded random-number streams for deterministic simulations.

Every stochastic component (network jitter, workload key choice, failure
injection) draws from its own named stream so that adding randomness to one
component never perturbs the draws seen by another. Streams are derived from
a single experiment seed, which every benchmark records.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "seeded_rng"]


def seeded_rng(seed: int, name: str) -> random.Random:
    """Return a :class:`random.Random` for stream ``name`` under ``seed``.

    The stream seed is derived by hashing ``(seed, name)`` so that streams
    are independent and stable across runs and Python versions.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class RngRegistry:
    """A per-experiment registry of named random streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = seeded_rng(self.seed, name)
        return self._streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent registry (for sub-experiments)."""
        digest = hashlib.sha256(f"{self.seed}:{salt}".encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
