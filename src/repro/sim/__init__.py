"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which every distributed component of
the reproduction runs: a virtual clock, an event queue, generator-based
processes (in the style of SimPy), and FIFO stores used as mailboxes.

The kernel is deliberately single-threaded and deterministic: given the same
seed and the same program, a simulation produces byte-identical histories.
That determinism is what makes the experiment harness reproducible.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.rng import RngRegistry, seeded_rng
from repro.sim.store import Store, StoreClosed

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Store",
    "StoreClosed",
    "Timeout",
    "seeded_rng",
]
