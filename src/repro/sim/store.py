"""FIFO stores: the mailbox primitive connecting simulated actors.

A :class:`Store` is an unbounded FIFO queue of items. ``put`` is immediate;
``get`` returns an event that triggers once an item is available. Items are
delivered to getters in request order, which — combined with the network
layer scheduling deliveries in send order — is what gives the simulation its
FIFO-channel (TCP-like) guarantee.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.sim.kernel import (
    Environment,
    Event,
    SimulationError,
)

__all__ = ["Store", "StoreClosed"]


class StoreClosed(Exception):
    """Raised in getters when the store is closed (e.g. node crashed)."""


class Store:
    """Unbounded FIFO store of items with event-based ``get``."""

    __slots__ = (
        "env",
        "name",
        "_items",
        "_getters",
        "_consumer",
        "_consumer_busy",
        "_closed",
    )

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._consumer: Optional[Callable[[Any], None]] = None
        self._consumer_busy = False
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._closed:
            raise SimulationError(f"put() on closed store {self.name!r}")
        if self._consumer is not None:
            if self._consumer_busy:
                self._items.append(item)
            else:
                self._consumer_busy = True
                # Same-instant delivery: straight into the run loop's
                # normal bucket, no heap round-trip.
                env = self.env
                env._seq += 1
                env._normal_now.append((self._run_consumer, item))
        elif self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def consume(self, fn: Callable[[Any], None]) -> None:
        """Register ``fn`` as this store's permanent consumer.

        Every ``put`` then schedules ``fn(item)`` as a queued callback,
        skipping the per-item ``get`` Event and generator round-trip of a
        pump process, while reproducing a pump's scheduling *exactly*: one
        item is in flight at a time, and the next buffered item is only
        scheduled after ``fn`` returns — the moment a pump would have
        re-issued ``get()``. (Scheduling buffered items eagerly at put time
        instead would reorder same-instant processing across stores, which
        the leader-election livelock guard in zab depends on.) The consumer
        must guard against its owner being stopped: an item already queued
        when the owner dies is still delivered, exactly as a pump that was
        one step behind would have seen it.
        """
        if self._items or self._getters:
            raise SimulationError(
                f"consume() on store {self.name!r} with pending state"
            )
        self._consumer = fn

    def _run_consumer(self, item: Any) -> None:
        self._consumer(item)
        if self._items:
            env = self.env
            env._seq += 1
            env._normal_now.append(
                (self._run_consumer, self._items.popleft())
            )
        else:
            self._consumer_busy = False

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = Event(self.env)
        if self._closed and not self._items:
            event.fail(StoreClosed(self.name))
        elif self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get: return the next item or ``None`` if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def close(self) -> None:
        """Close the store: pending and future getters fail with
        :class:`StoreClosed`. Buffered items are discarded (a crashed node
        never processes its inbox)."""
        if self._closed:
            return
        self._closed = True
        self._consumer_busy = False
        self._items.clear()
        getters, self._getters = self._getters, deque()
        for getter in getters:
            getter.fail(StoreClosed(self.name))

    def reopen(self) -> None:
        """Reopen a closed store (node restart)."""
        self._closed = False
