"""FIFO stores: the mailbox primitive connecting simulated actors.

A :class:`Store` is an unbounded FIFO queue of items. ``put`` is immediate;
``get`` returns an event that triggers once an item is available. Items are
delivered to getters in request order, which — combined with the network
layer scheduling deliveries in send order — is what gives the simulation its
FIFO-channel (TCP-like) guarantee.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.sim.kernel import Environment, Event, SimulationError

__all__ = ["Store", "StoreClosed"]


class StoreClosed(Exception):
    """Raised in getters when the store is closed (e.g. node crashed)."""


class Store:
    """Unbounded FIFO store of items with event-based ``get``."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: List[Event] = []
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._closed:
            raise SimulationError(f"put() on closed store {self.name!r}")
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = Event(self.env)
        if self._closed and not self._items:
            event.fail(StoreClosed(self.name))
        elif self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get: return the next item or ``None`` if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def close(self) -> None:
        """Close the store: pending and future getters fail with
        :class:`StoreClosed`. Buffered items are discarded (a crashed node
        never processes its inbox)."""
        if self._closed:
            return
        self._closed = True
        self._items.clear()
        getters, self._getters = self._getters, []
        for getter in getters:
            getter.fail(StoreClosed(self.name))

    def reopen(self) -> None:
        """Reopen a closed store (node restart)."""
        self._closed = False
