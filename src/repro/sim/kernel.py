"""Core discrete-event simulation kernel.

The kernel follows the SimPy programming model: simulation actors are Python
generators ("processes") that ``yield`` events; the environment advances a
virtual clock from event to event. Unlike SimPy, the implementation here is
purpose-built for protocol simulation:

* strict determinism — ties in the event queue are broken by a monotonically
  increasing sequence number, never by object identity;
* cheap interrupts — lease expiry and failure injection interrupt waiting
  processes without tearing down the kernel;
* no real time — ``Environment.run`` returns when the queue is empty or the
  requested horizon is reached.

Time is a ``float`` in **milliseconds**: WAN round-trips in the paper are
tens of milliseconds, and milliseconds keep all constants readable.

Performance notes (every figure pushes millions of events through here):

* all event classes carry ``__slots__`` — no per-instance ``__dict__``;
* yielding an already-processed event enqueues a tiny :class:`_Call` entry
  instead of allocating a shim :class:`Event`;
* :meth:`Environment.call_in` schedules a plain callback with no Event at
  all — the message path and timer guards use it to skip the
  Process/Timeout machinery entirely;
* :meth:`Environment.sleep` hands out pooled :class:`Timeout` objects for
  the timer-heavy heartbeat/ticker loops (recycled right after their
  callbacks fire);
* callback cancellation is O(1) in the common case (the cancelled callback
  is the most recently registered one) and any stale wake-up that slips
  through is defused by the guard in :meth:`Process._resume`;
* **same-instant batching**: anything scheduled *at the current instant*
  (process resumptions, ``succeed``/``fail`` deliveries, zero-delay
  :class:`_Call` chains from the transport and store layers) bypasses the
  heap entirely and lands in one of two FIFO buckets — urgent and normal —
  that the run loop drains to quiescence before touching the heap again.
  When the clock does advance, every heap entry at the new instant is
  pulled into the buckets in one pass, so a burst of N same-time events
  costs N O(1) deque operations instead of N O(log n) heap round-trips.
  Ordering is unchanged: at a fixed time, all urgent entries run before
  all normal entries, each in sequence order — exactly the
  ``(time, priority, seq)`` lexicographic order the heap produced.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

# Event queue priorities. Lower values are dequeued earlier at equal times.
# URGENT is used for process resumption so that a process that was waiting on
# an event runs before new events scheduled for the same instant.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

_INF = float("inf")


class SimulationError(Exception):
    """Raised for misuse of the kernel (double triggers, bad yields...)."""


class Interrupt(Exception):
    """Raised inside a process that another actor interrupted.

    The ``cause`` attribute carries the value supplied to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


def _Call(fn: Callable[[Any], None], arg: Any) -> tuple:
    """A bare scheduled callback: a plain ``(fn, arg)`` tuple that rides
    the event queue without being an :class:`Event`; ``fn(arg)`` is
    invoked when the entry is dequeued.

    A tuple rather than a two-slot class because the delivery chains the
    transport and store layers generate allocate one per message — tuple
    construction is a single C allocation with no ``__init__`` frame. The
    dispatch loops type-test ``type(entry) is tuple``; hot call sites
    build the tuple inline instead of going through this helper.
    """
    return (fn, arg)


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, becomes *triggered* when given a value (or an
    exception), and is *processed* once its callbacks have run. Processes
    wait on an event by yielding it.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        if not self._ok:
            raise SimulationError("event failed; no value")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        # Delivery is always at the current instant: same-instant bucket,
        # no heap traffic (custom priorities beyond the two known ones
        # still take the ordered heap path).
        if priority == PRIORITY_NORMAL:
            env._normal_now.append(self)
        elif priority == PRIORITY_URGENT:
            env._urgent_now.append(self)
        else:
            heappush(env._queue, (env._now, priority, env._seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._exception = exception
        self.env._enqueue(0.0, priority, self)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        callbacks = self.callbacks
        if callbacks is None:
            # Already processed: deliver through the queue at the current
            # instant rather than synchronously, so that a process yielding
            # processed events in a loop cannot recurse unboundedly.
            self.env._enqueue(0.0, PRIORITY_URGENT, (callback, self))
        else:
            callbacks.append(callback)

    def _remove_callback(self, callback: Callable[["Event"], None]) -> None:
        callbacks = self.callbacks
        if callbacks:
            # O(1) when the callback is the most recently registered one
            # (the overwhelmingly common cancellation pattern); a stale
            # delivery that slips past is defused by Process._resume.
            if callbacks[-1] is callback:
                callbacks.pop()
            else:
                try:
                    callbacks.remove(callback)
                except ValueError:
                    pass


class Timeout(Event):
    """An event that triggers after a fixed virtual delay."""

    __slots__ = ("delay", "_poolable")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._ok = True
        self._value = value
        self.delay = delay
        self._poolable = False
        env._seq += 1
        when = env._now + delay
        if when == env._now:
            # Zero delay (or one that underflows float addition): fires at
            # the current instant — bucket, don't heap.
            env._normal_now.append(self)
        else:
            heappush(env._queue, (when, PRIORITY_NORMAL, env._seq, self))


class _Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._on_target)
        env._enqueue(0.0, PRIORITY_URGENT, self)


class Process(Event):
    """A running generator. The process is itself an event that triggers
    when the generator returns (value = return value) or raises."""

    __slots__ = ("_generator", "_gen_send", "_gen_throw", "_on_target", "name",
                 "_target", "_defused")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("process body must be a generator")
        self._generator = generator
        self._gen_send = generator.send
        self._gen_throw = generator.throw
        # The one bound-method object used to wait on every target: created
        # once so registration allocates nothing and cancellation can use an
        # identity check.
        self._on_target = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = _Initialize(env, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} at t={self.env.now}>"

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process: raise :class:`Interrupt` inside it.

        Interrupting a dead process is an error; interrupting a process that
        is itself the current actor is not supported (use exceptions).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self.env._active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._exception = Interrupt(cause)
        event.callbacks.append(self._resume_interrupt)
        self.env._enqueue(0.0, PRIORITY_URGENT, event)

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return  # process finished before the interrupt was delivered
        target = self._target
        # Detach from the abandoned target *before* unregistering so that a
        # re-entrant wake-up during cleanup cannot observe a half-detached
        # process. Any stale delivery that was already queued is defused by
        # the `_target is not event` guard in _resume.
        self._target = None
        if target is not None:
            target._remove_callback(self._on_target)
        # Point _target at the interrupt event so _resume's stale-wake
        # guard passes; _resume immediately clears it again.
        self._target = event
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Trampoline: the awaited event triggered, step the generator.

        The stale-wake guard (an interrupt moved the process off this
        event before the queued delivery arrived) and the generator step
        share one frame — this is the hottest method on a Process, so the
        former ``_step`` helper is folded in rather than called.
        """
        if self._target is not event:
            return
        self._target = None
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                next_target = self._gen_send(event._value)
            else:
                exc = event._exception
                assert exc is not None
                next_target = self._gen_throw(exc)
        except StopIteration as stop:
            env._active_process = None
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            env._active_process = None
            self._finish_fail(exc)
            return
        env._active_process = None

        if not isinstance(next_target, Event):
            crash = SimulationError(
                f"process {self.name} yielded non-event {next_target!r}"
            )
            self._generator.close()
            self._finish_fail(crash)
            return
        if next_target is self:
            crash = SimulationError(f"process {self.name} waited on itself")
            self._generator.close()
            self._finish_fail(crash)
            return
        self._target = next_target
        callbacks = next_target.callbacks
        if callbacks is None:
            env._enqueue(0.0, PRIORITY_URGENT, (self._on_target, next_target))
        else:
            callbacks.append(self._on_target)

    def _finish_ok(self, value: Any) -> None:
        self._ok = True
        self._value = value
        self.env._enqueue(0.0, PRIORITY_URGENT, self)

    def _finish_fail(self, exc: BaseException) -> None:
        self._ok = False
        self._exception = exc
        self._defused = False
        trace = self.env.trace
        if trace is not None:
            trace.emit(self.env._now, "kernel", "process-fail", self.name,
                       {"error": repr(exc)})
        self.env._enqueue(0.0, PRIORITY_URGENT, self)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events.

    A child counts as *done* only once its callbacks fire (i.e. at the
    simulated instant it is delivered), not merely when its value is decided
    — a :class:`Timeout` decides its value at construction but fires later.
    """

    __slots__ = ("_events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._done = [False] * len(self._events)
        if not self._events:
            self.succeed({}, priority=PRIORITY_URGENT)
            return
        for index, event in enumerate(self._events):
            event._add_callback(
                lambda fired, index=index: self._on_child(index, fired)
            )

    def _on_child(self, index: int, event: Event) -> None:
        if self._ok is not None:
            return
        self._done[index] = True
        if not event._ok:
            assert event._exception is not None
            # Mark crashed child processes handled so run() doesn't re-raise.
            if hasattr(event, "_defused"):
                event._defused = True  # type: ignore[attr-defined]
            self.fail(event._exception, priority=PRIORITY_URGENT)
            return
        self._check()

    def _check(self) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {
            index: event._value
            for index, event in enumerate(self._events)
            if self._done[index] and event._ok
        }


class AnyOf(_Condition):
    """Triggers as soon as any child event fires.

    The value is a dict mapping the index of each already-fired child to its
    value.
    """

    __slots__ = ()

    def _check(self) -> None:
        if any(self._done):
            self.succeed(self._results(), priority=PRIORITY_URGENT)


class AllOf(_Condition):
    """Triggers once every child event has fired."""

    __slots__ = ()

    def _check(self) -> None:
        if all(self._done):
            self.succeed(self._results(), priority=PRIORITY_URGENT)


class Environment:
    """The simulation environment: clock + event queue + process factory."""

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "_timeout_pool",
                 "_urgent_now", "_normal_now", "trace")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: List[Timeout] = []
        # Same-instant buckets: entries scheduled for the *current* instant,
        # kept off the heap. Invariant: every bucketed entry's sequence
        # number exceeds that of any same-priority heap entry at the current
        # time (fresh entries get fresh seqs; heap entries at the current
        # time are drained into the buckets the moment the clock lands on
        # it), so FIFO drain order — urgent bucket first, then one normal
        # entry, re-checking urgent between normal entries — reproduces the
        # heap's (time, priority, seq) order exactly.
        self._urgent_now: deque = deque()
        self._normal_now: deque = deque()
        #: Optional structured trace buffer (repro.trace.TraceBuffer); the
        #: kernel only reports rare events (process failures) to it.
        self.trace = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Timeout:
        """A pooled :class:`Timeout` for ``yield env.sleep(delay)`` loops.

        Semantically identical to :meth:`timeout`, but the returned object
        is recycled into a free pool the moment its callbacks have run, so
        timer-heavy loops (heartbeats, tickers, leases) stop allocating.

        Contract: the caller must yield the returned event immediately and
        must not keep a reference past its firing — after that instant the
        object may already be serving another ``sleep``. Never hand it to
        ``AnyOf``/``AllOf``/``run(until=...)``; use :meth:`timeout` there.
        """
        pool = self._timeout_pool
        if not pool:
            timeout = Timeout(self, delay, value)
            timeout._poolable = True
            return timeout
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        timeout = pool.pop()
        timeout._value = value
        timeout.delay = delay
        self._seq += 1
        when = self._now + delay
        if when == self._now:
            self._normal_now.append(timeout)
        else:
            heappush(
                self._queue, (when, PRIORITY_NORMAL, self._seq, timeout)
            )
        return timeout

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, delay: float, priority: int, event: Event) -> None:
        self._seq += 1
        when = self._now + delay
        if when == self._now and priority <= PRIORITY_NORMAL:
            if priority:
                self._normal_now.append(event)
            else:
                self._urgent_now.append(event)
        else:
            heappush(self._queue, (when, priority, self._seq, event))

    def call_in(
        self,
        delay: float,
        fn: Callable[[Any], None],
        arg: Any = None,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule ``fn(arg)`` to run after ``delay`` ms.

        The cheapest way to defer work: no :class:`Event`, no generator, no
        waiter bookkeeping — a single tuple on the heap. Fire-and-forget
        (cannot be cancelled; make ``fn`` check liveness itself), so use it
        for guards and deliveries whose staleness is cheap to detect.
        """
        if delay < 0:
            raise SimulationError(f"negative call_in delay: {delay!r}")
        self._seq += 1
        when = self._now + delay
        if when == self._now and priority <= PRIORITY_NORMAL:
            if priority:
                self._normal_now.append((fn, arg))
            else:
                self._urgent_now.append((fn, arg))
        else:
            heappush(self._queue, (when, priority, self._seq, (fn, arg)))

    def call_soon(
        self,
        fn: Callable[[Any], None],
        arg: Any = None,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule ``fn(arg)`` at the current instant: ``call_in(0, ...)``
        minus the delay arithmetic — one deque append, no heap traffic.
        The store and transport layers use it for their zero-delay
        delivery chains."""
        self._seq += 1
        if priority:
            self._normal_now.append((fn, arg))
        else:
            self._urgent_now.append((fn, arg))

    def call_at(
        self,
        when: float,
        fn: Callable[[Any], None],
        arg: Any = None,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule ``fn(arg)`` at absolute time ``when``.

        The absolute-time twin of :meth:`call_in`, for callers that
        computed an exact instant: no ``when - now`` round trip (which
        can drift by one ULP in float), no Event, no generator. The
        fleet tier's idle-gap fast-forward leans on this: a driver that
        scanned ahead over quiescent ticks schedules its next wake (and
        every arrival it found) at exact instants, touching the kernel
        once per *busy* tick instead of once per tick.

        Scheduling in the past is an error; ``when == now`` lands in the
        same-instant buckets like :meth:`call_soon`.
        """
        if when < self._now:
            raise SimulationError(
                f"call_at({when!r}) is in the past (now={self._now!r})"
            )
        self._seq += 1
        if when == self._now and priority <= PRIORITY_NORMAL:
            if priority:
                self._normal_now.append((fn, arg))
            else:
                self._urgent_now.append((fn, arg))
        else:
            heappush(self._queue, (when, priority, self._seq, (fn, arg)))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        if self._urgent_now or self._normal_now:
            return self._now
        return self._queue[0][0] if self._queue else _INF

    def _advance(self) -> Any:
        """Pop the next heap entry, advance the clock to it, and drain every
        other heap entry at that instant into the same-instant buckets.

        Returns the popped entry (the minimum); the caller dispatches it.
        Draining keeps the bucket invariant: heap entries at the new time
        predate (seq-wise) anything the dispatches will append.
        """
        queue = self._queue
        when, _priority, _seq, event = heappop(queue)
        self._now = when
        while queue:
            head = queue[0]
            # Entries with custom priorities beyond NORMAL stay on the heap;
            # they are popped only after both buckets drain, which is their
            # correct lexicographic slot.
            if head[0] != when or head[1] > PRIORITY_NORMAL:
                break
            heappop(queue)
            if head[1]:
                self._normal_now.append(head[3])
            else:
                self._urgent_now.append(head[3])
        return event

    def step(self) -> None:
        """Process the single next entry in the queue."""
        if self._urgent_now:
            event = self._urgent_now.popleft()
        elif self._normal_now:
            event = self._normal_now.popleft()
        elif self._queue:
            event = self._advance()
        else:
            raise SimulationError("step() on an empty event queue")
        if type(event) is tuple:
            event[0](event[1])
            return
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if event._ok:
            if type(event) is Timeout and event._poolable:
                # Recycle: every waiter has been resumed at this instant and
                # sleep()'s contract forbids holding a reference past it.
                callbacks.clear()
                event.callbacks = callbacks
                self._timeout_pool.append(event)
        elif (
            event._exception is not None
            and not callbacks
            and not getattr(event, "_defused", True)
        ):
            # A process crashed and nobody was waiting on it: surface it.
            raise event._exception

    def run(self, until: Optional[float] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time horizon (run until the clock reaches it) or an
        :class:`Event` (run until the event triggers, returning its value).
        With no argument, run until the event queue drains.
        """
        stop_event: Optional[Event] = None
        horizon = _INF
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self._now})"
                )

        if stop_event is None:
            # Hot path: drain-the-queue / run-to-horizon, with the step()
            # body inlined (the per-event call overhead is measurable at
            # millions of events per figure). Same-instant entries are
            # popped from the FIFO buckets in O(1); the heap is consulted
            # only to advance the clock, and draining all entries at the
            # new instant into the buckets in one pass keeps the zero-delay
            # chains the transport/Zab layers generate off the heap.
            queue = self._queue
            urgent = self._urgent_now
            normal = self._normal_now
            pool = self._timeout_pool
            # Bound methods / type objects hoisted out of the loop: each one
            # saves an attribute or global lookup per event, and the loop
            # runs millions of times per figure.
            urgent_pop = urgent.popleft
            normal_pop = normal.popleft
            urgent_push = urgent.append
            normal_push = normal.append
            pop = heappop
            tuple_t = tuple
            timeout_t = Timeout
            while True:
                if urgent:
                    event = urgent_pop()
                elif normal:
                    event = normal_pop()
                elif queue:
                    if queue[0][0] > horizon:
                        self._now = horizon
                        return None
                    # _advance() inlined: one fewer Python call per clock
                    # tick, and ticks are all that is left on the heap.
                    when, _priority, _seq, event = pop(queue)
                    self._now = when
                    while queue:
                        head = queue[0]
                        if head[0] != when or head[1] > PRIORITY_NORMAL:
                            break
                        pop(queue)
                        if head[1]:
                            normal_push(head[3])
                        else:
                            urgent_push(head[3])
                else:
                    break
                if type(event) is tuple_t:
                    event[0](event[1])
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if event._ok:
                    if type(event) is timeout_t and event._poolable:
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                elif (
                    event._exception is not None
                    and not callbacks
                    and not getattr(event, "_defused", True)
                ):
                    raise event._exception
            if horizon != _INF:
                self._now = horizon
            return None

        while self._queue or self._urgent_now or self._normal_now:
            if stop_event.triggered:
                break
            self.step()
        else:
            if not stop_event.triggered:
                raise SimulationError("run() ran out of events before stop event")

        if not stop_event._ok:
            assert stop_event._exception is not None
            raise stop_event._exception
        return stop_event._value
