"""Causal-consistency checking.

WanKeeper provides causal consistency for multiple objects across WAN sites
(§II-D): all clients see operations in an order consistent with the
causality relation — program order plus reads-from. The check on a recorded
history is the standard two-part formulation:

1. the causal order ``co`` — the transitive closure of program order and
   reads-from — must be acyclic;
2. no read may *miss* a causally known write: if a write ``W'`` on key
   ``k`` causally precedes a read ``r`` of ``k``, then ``r`` must return
   ``W'`` or a write newer than it in ``k``'s arbitration order.

Writes to each key are assumed uniquely valued (our drivers tag values), so
reads-from edges are unambiguous. The per-key arbitration order defaults to
real-time write order — valid in these systems because writes to one key
are serialized by a single token holder at a time. Crucially that default
is a *partial* order: a write is provably newer than another only when it
began after the other completed. Two overlapping writes (e.g. a slow
retried write straddling a fast one) may legally commit in either order,
so the checker draws no conclusion from them; pass ``key_write_orders``
with the true commit order to totally order such pairs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.consistency.history import HistoryRecorder, Operation

__all__ = ["check_causal"]


def check_causal(
    history: HistoryRecorder,
    key_write_orders: Optional[Dict[str, List[Any]]] = None,
) -> List[str]:
    """Check causal consistency; returns violation descriptions."""
    violations: List[str] = []
    ops = history.operations

    writes_by_value: Dict[Tuple[str, Any], Operation] = {}
    for op in ops:
        if op.kind == "write":
            if (op.key, op.value) in writes_by_value:
                violations.append(f"duplicate write value {op.value!r} on {op.key}")
            writes_by_value[(op.key, op.value)] = op

    # --- causal edges: program order + reads-from -------------------------
    successors: Dict[int, Set[int]] = {}

    def add_edge(a: Operation, b: Operation) -> None:
        if a.op_id != b.op_id:
            successors.setdefault(a.op_id, set()).add(b.op_id)

    for client in history.clients():
        client_ops = history.for_client(client)
        for previous, current in zip(client_ops, client_ops[1:]):
            add_edge(previous, current)

    for op in ops:
        if op.kind != "read" or op.value is None:
            continue
        writer = writes_by_value.get((op.key, op.value))
        if writer is None:
            violations.append(
                f"{op.client} read unwritten value {op.value!r} from {op.key}"
            )
            continue
        add_edge(writer, op)

    if _has_cycle(successors):
        violations.append("cycle in program-order + reads-from")
        return violations

    # --- arbitration order per key (explicit total orders only) --------------
    orders = key_write_orders or {}
    arb_rank: Dict[Tuple[str, Any], int] = {}
    by_key_writes: Dict[str, List[Operation]] = {}
    for op in ops:
        if op.kind == "write":
            by_key_writes.setdefault(op.key, []).append(op)
    for key, writes in by_key_writes.items():
        if key in orders:
            ranked = {value: i for i, value in enumerate(orders[key])}
            ordered = sorted(
                writes, key=lambda op: ranked.get(op.value, len(ranked))
            )
            for rank, write in enumerate(ordered):
                arb_rank[(key, write.value)] = rank

    # --- reachability over co (small histories: per-node BFS) ----------------
    reach = _reachability(successors)

    # --- rule 2: reads must not miss causally-preceding newer writes ---------
    for read in ops:
        if read.kind != "read":
            continue
        writer = (
            writes_by_value.get((read.key, read.value))
            if read.value is not None
            else None
        )
        for write in by_key_writes.get(read.key, ()):
            if read.op_id not in reach.get(write.op_id, ()):
                continue  # not causally before this read
            if writer is not None and write.op_id == writer.op_id:
                continue  # the read returned this very write
            if writer is None:
                # Read returned the initial value (or an unwritten one, both
                # flagged above) despite causally knowing a write: a miss
                # under any arbitration.
                missed = True
            elif read.key in orders:
                missed = (
                    arb_rank[(write.key, write.value)]
                    > arb_rank[(read.key, read.value)]
                )
            else:
                # Real-time arbitration is partial: the causally-seen write
                # is provably newer only if it began after the read's write
                # completed. Overlapping writes may commit in either order.
                missed = write.invoked > writer.completed
            if missed:
                violations.append(
                    f"{read.client} read {read.value!r} from {read.key} "
                    f"but causally saw newer write {write.value!r}"
                )
                break
    return violations


def _has_cycle(successors: Dict[int, Set[int]]) -> bool:
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    nodes = set(successors)
    for targets in successors.values():
        nodes |= targets
    for root in sorted(nodes):
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[int, List[int]]] = [
            (root, sorted(successors.get(root, ())))
        ]
        color[root] = GRAY
        while stack:
            node, rest = stack[-1]
            advanced = False
            while rest:
                target = rest.pop(0)
                state = color.get(target, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE:
                    color[target] = GRAY
                    stack.append((target, sorted(successors.get(target, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False


def _reachability(successors: Dict[int, Set[int]]) -> Dict[int, Set[int]]:
    """node -> set of nodes reachable from it (BFS per node)."""
    nodes = set(successors)
    for targets in successors.values():
        nodes |= targets
    reach: Dict[int, Set[int]] = {}
    for start in sorted(nodes):
        seen: Set[int] = set()
        frontier = list(successors.get(start, ()))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(successors.get(node, ()))
        reach[start] = seen
    return reach
