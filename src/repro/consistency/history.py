"""Operation histories: invocation/response records for offline checking."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

__all__ = ["HistoryRecorder", "Operation"]


@dataclass
class Operation:
    """One completed client operation on a single key.

    ``kind`` is "read" or "write"; for reads, ``value`` is the value
    returned; for writes, the value written. Times are simulated ms.
    """

    client: str
    kind: str
    key: str
    value: Any
    invoked: float
    completed: float
    op_id: int = 0

    def overlaps(self, other: "Operation") -> bool:
        return self.invoked < other.completed and other.invoked < self.completed

    def precedes(self, other: "Operation") -> bool:
        """Strict real-time precedence."""
        return self.completed < other.invoked


class HistoryRecorder:
    """Collects operations across clients for one run."""

    def __init__(self):
        self.operations: List[Operation] = []
        self._next_id = 0

    def record(
        self,
        client: str,
        kind: str,
        key: str,
        value: Any,
        invoked: float,
        completed: float,
    ) -> Operation:
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be read/write, got {kind!r}")
        if completed < invoked:
            raise ValueError("completed before invoked")
        self._next_id += 1
        op = Operation(client, kind, key, value, invoked, completed, self._next_id)
        self.operations.append(op)
        return op

    def for_key(self, key: str) -> List[Operation]:
        return [op for op in self.operations if op.key == key]

    def for_client(self, client: str) -> List[Operation]:
        return sorted(
            (op for op in self.operations if op.client == client),
            key=lambda op: op.invoked,
        )

    def keys(self) -> List[str]:
        return sorted({op.key for op in self.operations})

    def clients(self) -> List[str]:
        return sorted({op.client for op in self.operations})
