"""Per-key linearizability checking for register histories.

Implements the Wing & Gong style search: find a total order of operations
on one key that (a) respects real-time precedence and (b) is legal for a
read/write register (each read returns the most recent preceding write, or
the initial value). Exponential in the worst case but fast for the
contention levels our experiments record; a depth cap guards runaways.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.consistency.history import Operation

__all__ = ["check_linearizable_per_key", "check_linearizable_register"]


class _Budget:
    def __init__(self, limit: int):
        self.remaining = limit

    def spend(self) -> bool:
        self.remaining -= 1
        return self.remaining >= 0


def check_linearizable_register(
    operations: Sequence[Operation],
    initial: Any = None,
    search_budget: int = 2_000_000,
) -> bool:
    """True iff the single-key history is linearizable.

    ``initial`` is the register's value before any write (ZooKeeper znodes
    start from their create value, so pass that).
    """
    ops = sorted(operations, key=lambda op: (op.invoked, op.op_id))
    if not ops:
        return True
    keys = {op.key for op in ops}
    if len(keys) > 1:
        raise ValueError(f"single-key checker got keys {keys}")
    budget = _Budget(search_budget)
    result = _linearize(tuple(range(len(ops))), ops, initial, {}, budget)
    if budget.remaining < 0:
        raise RuntimeError("linearizability search budget exhausted")
    return result


def _minimal_candidates(pending: Tuple[int, ...], ops: List[Operation]) -> List[int]:
    """Pending ops not real-time-preceded by another pending op."""
    result = []
    for index in pending:
        op = ops[index]
        if all(
            not ops[other].precedes(op) for other in pending if other != index
        ):
            result.append(index)
    return result


def _linearize(
    pending: Tuple[int, ...],
    ops: List[Operation],
    value: Any,
    memo: dict,
    budget: _Budget,
) -> bool:
    if not pending:
        return True
    state = (pending, value)
    if state in memo:
        return False  # already explored and failed
    if not budget.spend():
        return False
    for index in _minimal_candidates(pending, ops):
        op = ops[index]
        if op.kind == "read":
            if op.value != value:
                continue
            next_value = value
        else:
            next_value = op.value
        rest = tuple(i for i in pending if i != index)
        if _linearize(rest, ops, next_value, memo, budget):
            return True
    memo[state] = False
    return False


def check_linearizable_per_key(
    operations: Sequence[Operation],
    initial: Any = None,
) -> List[str]:
    """Check every key in a multi-key history; returns failing keys."""
    by_key: dict = {}
    for op in operations:
        by_key.setdefault(op.key, []).append(op)
    failures = []
    for key, ops in sorted(by_key.items()):
        if not check_linearizable_register(ops, initial=initial):
            failures.append(key)
    return failures
