"""Per-client ordering guarantees.

ZooKeeper (and WanKeeper) guarantee FIFO execution of a client's own
requests: the client's operations take effect in issue order, and in
particular a client always reads its own most recent write to a key.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.consistency.history import HistoryRecorder

__all__ = ["check_client_fifo", "check_read_your_writes"]


def check_read_your_writes(history: HistoryRecorder) -> List[str]:
    """Each client's read of a key reflects its own latest write to it.

    Returns human-readable violation descriptions (empty = clean). Only
    checks keys where the reading client is the *sole* writer — with
    foreign writers, a newer foreign value may legitimately be read.
    """
    violations: List[str] = []
    writers_by_key: Dict[str, set] = {}
    for op in history.operations:
        if op.kind == "write":
            writers_by_key.setdefault(op.key, set()).add(op.client)
    for client in history.clients():
        last_write: Dict[str, Any] = {}
        for op in history.for_client(client):
            if op.kind == "write":
                last_write[op.key] = op.value
            elif op.key in last_write and writers_by_key.get(op.key) == {client}:
                if op.value != last_write[op.key]:
                    violations.append(
                        f"{client} read {op.value!r} from {op.key} after "
                        f"writing {last_write[op.key]!r}"
                    )
    return violations


def check_client_fifo(history: HistoryRecorder) -> List[str]:
    """A client's operations must not overlap (synchronous issue order).

    With the synchronous client, op N+1 is invoked only after op N
    completes; any overlap indicates the recorder or client is broken.
    """
    violations: List[str] = []
    for client in history.clients():
        ops = history.for_client(client)
        for previous, current in zip(ops, ops[1:]):
            if current.invoked < previous.completed:
                violations.append(
                    f"{client}: op {current.op_id} invoked at {current.invoked} "
                    f"before op {previous.op_id} completed at {previous.completed}"
                )
    return violations
