"""Consistency checking for recorded operation histories.

Verifies the guarantees the paper claims for WanKeeper (§II-D):

* linearizability per client (FIFO client order) — :mod:`fifo`;
* linearizability per object across the WAN — :mod:`linearizability`;
* causal consistency across objects/sites — :mod:`causal`.

Histories are recorded with :class:`HistoryRecorder` around client calls and
checked offline after a run.
"""

from repro.consistency.causal import check_causal
from repro.consistency.fifo import check_client_fifo, check_read_your_writes
from repro.consistency.history import HistoryRecorder, Operation
from repro.consistency.linearizability import (
    check_linearizable_per_key,
    check_linearizable_register,
)

__all__ = [
    "HistoryRecorder",
    "Operation",
    "check_causal",
    "check_client_fifo",
    "check_linearizable_per_key",
    "check_linearizable_register",
    "check_read_your_writes",
]
