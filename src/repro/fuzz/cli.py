"""``repro fuzz`` — run a campaign, or replay a minimized artifact.

Campaign mode::

    python -m repro fuzz --seed 7 --cases 50 --jobs 4 --out .fuzz-artifacts

prints per-round progress, the coverage summary, and one block per
finding (signature, shrunk schedule size, artifact path). Exit status is
0 unless ``--fail-on-findings`` is set and the campaign found any.

Replay mode::

    python -m repro fuzz --replay .fuzz-artifacts/finding-....json

re-runs the artifact's spec deterministically and verifies the recorded
expectation — status, invariant, and the trace digest (bit-identical
reproduction). Exit 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

__all__ = ["main"]


def _replay(path: str, verbose: bool) -> int:
    from repro.fuzz.case import run_fuzz_case
    from repro.fuzz.spec import (
        SCHEDULE_KINDS,
        SPEC_VERSION,
        spec_digest,
        validate_spec,
    )

    with open(path, "r", encoding="utf-8") as handle:
        artifact = json.load(handle)
    # Artifacts outlive fuzzer versions: a shrunk finding written before a
    # schedule-kind or spec-shape change must fail with a diagnosis, not a
    # KeyError deep inside the harness.
    spec = artifact.get("spec")
    if not isinstance(spec, dict):
        print(
            f"artifact schema mismatch: {path} has no 'spec' object "
            "(not a fuzz finding artifact?)",
            file=sys.stderr,
        )
        return 1
    try:
        validate_spec(spec)
    except KeyError as exc:
        print(
            f"artifact schema mismatch: spec is missing field {exc} "
            f"(this fuzzer expects spec v{SPEC_VERSION})",
            file=sys.stderr,
        )
        return 1
    except (TypeError, ValueError) as exc:
        print(
            f"artifact schema mismatch: {exc} "
            f"(this fuzzer expects spec v{SPEC_VERSION}; known schedule "
            f"kinds: {', '.join(SCHEDULE_KINDS)})",
            file=sys.stderr,
        )
        return 1
    expect: Dict[str, Any] = artifact.get("expect") or {}
    print(f"replaying {path}")
    print(f"  spec digest: {spec_digest(spec)}")
    print(f"  schedule entries: {len(spec.get('schedule', []))}")
    payload = run_fuzz_case(spec)
    print(f"  status: {payload['status']}"
          + (f" ({payload['invariant']})" if payload.get("invariant") else ""))
    if verbose and payload.get("detail"):
        print(f"  detail: {payload['detail']}")
    print(f"  sim time: {payload['sim_time_ms']:.0f} ms, "
          f"trace events: {payload['trace_events']}")
    mismatches: List[str] = []
    for field in ("status", "invariant", "trace_digest"):
        if field in expect and expect[field] != payload.get(field):
            mismatches.append(
                f"{field}: expected {expect[field]!r}, "
                f"got {payload.get(field)!r}"
            )
    if mismatches:
        print("REPLAY MISMATCH:")
        for line in mismatches:
            print(f"  {line}")
        return 1
    if expect:
        print("  replay matches the recorded expectation (bit-identical "
              "trace digest)" if "trace_digest" in expect else
              "  replay matches the recorded expectation")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Coverage-guided fault-schedule fuzzing of the "
        "WanKeeper deployment (see docs/FUZZING.md).",
    )
    parser.add_argument("--seed", type=int, default=42,
                        help="campaign seed (default 42)")
    parser.add_argument("--cases", type=int, default=50,
                        help="total cases to run (default 50)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="feedback rounds; later rounds mutate "
                        "coverage-novel seeds (default 3)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = in-process)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-case wall timeout in seconds, jobs>1 "
                        "only (default 300)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write campaign-report.json and finding "
                        "artifacts under DIR")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip schedule minimization of findings")
    parser.add_argument("--shrink-budget", type=int, default=80,
                        help="max re-runs per finding while shrinking "
                        "(default 80)")
    parser.add_argument("--no-adversarial", action="store_true",
                        help="disable token-usurper / stale-leader actors")
    parser.add_argument("--bug", default=None,
                        choices=["recall-race"],
                        help="re-introduce a known bug (validation that "
                        "the fuzzer finds it)")
    parser.add_argument("--fail-on-findings", action="store_true",
                        help="exit 1 if the campaign produced findings")
    parser.add_argument("--replay", default=None, metavar="FILE",
                        help="replay one artifact instead of fuzzing")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.replay is not None:
        return _replay(args.replay, args.verbose)

    from repro.fuzz.campaign import run_campaign

    progress = print if args.verbose else None
    report = run_campaign(
        seed=args.seed,
        cases=args.cases,
        rounds=args.rounds,
        jobs=args.jobs,
        timeout_s=args.timeout,
        adversarial=not args.no_adversarial,
        bug=args.bug,
        shrink=not args.no_shrink,
        shrink_budget=args.shrink_budget,
        out_dir=args.out,
        progress=progress,
    )

    coverage = report["coverage"]
    print(f"campaign seed={report['seed']} cases={report['cases']} "
          f"rounds={report['rounds']}"
          + (f" bug={report['bug']}" if report["bug"] else ""))
    statuses = ", ".join(
        f"{status}={count}" for status, count in report["statuses"].items()
    )
    print(f"  statuses: {statuses or 'none'}")
    print(f"  coverage: {coverage['kinds']} event kinds, "
          f"{coverage['transitions']} transitions "
          f"({report['corpus_seeds']} corpus seeds)")
    if not report["findings"]:
        print("  findings: none")
    for finding in report["findings"]:
        signature = ":".join(finding["signature"])
        print(f"  finding {signature}")
        print(f"    case #{finding['case_index']} "
              f"({finding['schedule_entries']} schedule entries) "
              f"-> shrunk to {finding['shrunk_entries']} "
              f"in {finding['shrink_runs']} runs")
        if finding.get("invariant"):
            print(f"    invariant: {finding['invariant']}")
        if finding.get("artifact"):
            print(f"    artifact: {finding['artifact']}")
    if args.out:
        print(f"  report: {args.out}/campaign-report.json")
    if args.fail_on_findings and report["findings"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
