"""Run one fuzz-case spec to a verdict.

The harness is a parameterized sibling of the lossy-soak cell
(:func:`repro.runner.cells.cell_soak`): build the spec's topology and
WanKeeper deployment, attach the invariant sentinel and a large trace
buffer *unconditionally* (the sentinel is the fuzzer's oracle — it is not
optional here, unlike the env-gated default), play the declarative fault
schedule through :class:`repro.nemesis.ScheduleNemesis` under a retrying
multi-site workload, then quiesce and run the end-of-run checks.

The payload is JSON-plain and a pure function of the spec:

* ``status`` — ``ok`` | ``violation`` (an :class:`InvariantViolation`
  fired, during the run or at final check) | ``detected`` (the sentinel
  caught corruption the schedule itself injected — the adversarial
  actors' oracle working, not a protocol bug) | ``hang`` (the workload
  did not complete within the sim-time budget: lost liveness);
* ``coverage`` — the trace-transition signal (:mod:`repro.fuzz.coverage`);
* ``trace_digest`` — sha256 of the trace JSONL at the moment the verdict
  was reached; two runs of one spec must match bit-for-bit, which is what
  ``repro fuzz --replay`` asserts.

Wall-clock hangs/crashes of the *process* are the executor's department
(per-cell ``timeout_s``); the in-sim budget here is what makes hang
detection deterministic.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from repro.fuzz.coverage import case_coverage
from repro.fuzz.spec import (
    canonical_spec,
    site_names,
    spec_digest,
    spec_keys,
    validate_spec,
)

__all__ = ["run_fuzz_case"]

#: Trace ring large enough that small fuzz cases never wrap (the digest
#: stays a function of the *whole* history).
TRACE_CAPACITY = 1 << 16


def run_fuzz_case(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one spec; returns the JSON-plain verdict payload."""
    from repro.invariants import InvariantSentinel, InvariantViolation
    from repro.nemesis import NemesisConfig, ScheduleNemesis
    from repro.net import LinkProfile, Network, Topology
    from repro.sim import Environment, seeded_rng
    from repro.trace import TraceBuffer, install_trace
    from repro.wankeeper import build_wankeeper_deployment
    from repro.zk import ConnectionLossError, SessionExpiredError
    from repro.zk.errors import ZkError

    spec = canonical_spec(spec)
    validate_spec(spec)
    seed = int(spec["seed"])
    names = site_names(spec)
    keys = spec_keys(spec)
    topo_spec = spec["topology"]
    dep_spec = spec["deployment"]
    wl = spec["workload"]

    env = Environment()
    one_way = {
        frozenset(pair.split("|")): float(delay)
        for pair, delay in topo_spec["delays"].items()
    }
    topo = Topology(
        names,
        one_way_ms=one_way,
        local_one_way_ms=float(topo_spec["local_ms"]),
        jitter_fraction=float(topo_spec["jitter"]),
    )
    net = Network(env, topo, rng=seeded_rng(seed, "net"))
    deployment = build_wankeeper_deployment(
        env,
        net,
        topo,
        l2_site=names[int(dep_spec["l2"])],
        voters_per_site=int(dep_spec["voters"]),
        initial_tokens={
            keys[int(key_index)]: names[int(site_index)]
            for key_index, site_index in dep_spec.get("pin", [])
        },
        read_mode=str(dep_spec["read_mode"]),
        read_lease_ms=float(dep_spec["lease_ms"]),
    )
    if spec.get("bug") == "recall-race":
        deployment.servers[0].wan.buggy_recall_race = True

    # The oracle is not optional for fuzzing: attach the sentinel and a
    # big trace ring regardless of REPRO_SENTINEL, so in-process, worker,
    # and CLI runs of one spec see the identical instrumented world.
    trace = TraceBuffer(capacity=TRACE_CAPACITY)
    install_trace(deployment, trace)
    if deployment.sentinel is None:
        sentinel = InvariantSentinel(trace=trace)
        sentinel.adopt(deployment.servers)
        deployment.sentinel = sentinel
    else:
        deployment.sentinel.trace = trace
    sentinel = deployment.sentinel

    deployment.start()
    deployment.stabilize()

    ambient_spec = spec["ambient"]
    if float(ambient_spec["loss"]) or float(ambient_spec["duplicate"]):
        ambient = LinkProfile(
            loss=float(ambient_spec["loss"]),
            duplicate=float(ambient_spec["duplicate"]),
        )
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                net.degrade(names[i], names[j], ambient)

    nemesis = ScheduleNemesis(
        env,
        net,
        deployment,
        spec["schedule"],
        config=NemesisConfig(
            interval_ms=500.0,
            max_active_partitions=2,
            max_active_degradations=3,
        ),
        keys=keys,
    )

    counter = {"next": 0}
    ops_done = {"write": 0, "read": 0}
    failures = {"count": 0}
    pace_lo, pace_hi = (float(p) for p in wl["pace_ms"])

    def site_client(site):
        client = deployment.client(
            site,
            session_timeout_ms=30000.0,
            request_timeout_ms=float(wl["request_timeout_ms"]),
        )
        leader = deployment.site_leader(site)
        if leader is not None and leader.is_alive:
            client.server_addr = leader.client_addr
        return client

    def actor(site, actor_index, end):
        rng = seeded_rng(seed, f"actor:{site}:{actor_index}")
        client = site_client(site)
        try:
            yield client.connect_retrying(max_retries=8)
        except ZkError:
            failures["count"] += 1
            return
        while env.now < end:
            key = rng.choice(keys)
            is_write = rng.random() < float(wl["write_fraction"])
            try:
                if is_write:
                    counter["next"] += 1
                    yield client.set_data_retrying(
                        key, str(counter["next"]).encode(), max_retries=8
                    )
                    ops_done["write"] += 1
                else:
                    yield client.get_data_retrying(key, max_retries=8)
                    ops_done["read"] += 1
            except (ConnectionLossError, SessionExpiredError) as exc:
                failures["count"] += 1
                if isinstance(exc, SessionExpiredError):
                    client = site_client(site)
                    try:
                        yield client.connect_retrying(max_retries=8)
                    except ZkError:
                        failures["count"] += 1
                        return
            except ZkError:
                failures["count"] += 1
            yield env.timeout(rng.uniform(pace_lo, pace_hi))

    def app():
        setup = deployment.client(names[0])
        yield setup.connect()
        yield setup.create("/fuzz", b"")
        for key in keys:
            yield setup.create(key, b"")
        yield env.timeout(500.0)
        nemesis.start()
        end = env.now + float(wl["duration_ms"])
        procs = [
            env.process(actor(site, actor_index, end))
            for site in names
            for actor_index in range(int(wl["actors"]))
        ]
        for proc in procs:
            yield proc
        nemesis.stop_and_repair()
        net.restore_all()
        net.heal_all()
        yield env.timeout(float(spec["quiesce_ms"]))
        return True

    def injected_detection(violation) -> bool:
        """Did the sentinel catch corruption the schedule itself injected?

        A token-usurper or stale-leader entry is *supposed* to trip the
        sentinel — that is its detection path working, not a protocol bug
        — so such violations classify as ``detected`` rather than as
        findings. Matching is precise: the violated invariant must be the
        injected actor's oracle, and for usurpers the violation must name
        the usurped key.
        """
        if violation.invariant == "single-token-ownership":
            usurped = [
                event.info.get("key")
                for event in nemesis.events
                if event.kind == "token-usurper" and event.info
            ]
            return any(key and key in violation.detail for key in usurped)
        if violation.invariant == "lease-coherence":
            return any(
                event.kind == "stale-leader" for event in nemesis.events
            )
        return False

    def verdict(status: str, violation, post_repair: bool = False) -> Dict[str, Any]:
        if (
            status == "violation"
            and violation is not None
            and not post_repair
            and injected_detection(violation)
        ):
            status = "detected"
        events = trace.events()
        coverage = case_coverage(events)
        digest = hashlib.sha256(trace.to_jsonl().encode("utf-8")).hexdigest()
        payload: Dict[str, Any] = {
            "status": status,
            "invariant": violation.invariant if violation else None,
            "detail": violation.detail[:500] if violation else None,
            "spec_digest": spec_digest(spec),
            "seed": seed,
            "sim_time_ms": round(env.now, 3),
            "writes": ops_done["write"],
            "reads": ops_done["read"],
            "client_failures": failures["count"],
            "nemesis": {
                "applied": nemesis.applied,
                "skipped": nemesis.skipped,
                "events": dict(sorted(nemesis.summary().items())),
            },
            "coverage": coverage,
            "trace_events": trace.total_emitted,
            "trace_digest": digest,
            "converged": None,
            "token_conflicts": None,
        }
        return payload

    process = env.process(app())
    deadline = env.now + float(spec["horizon_ms"])
    violation: Optional[Any] = None
    try:
        while (
            not process.triggered
            and env.now < deadline
            and env.peek() != float("inf")
        ):
            env.run(until=min(deadline, env.now + 1000.0))
    except InvariantViolation as exc:
        # The sim is poisoned mid-callback: capture and stop immediately.
        return verdict("violation", exc)
    if not process.triggered:
        return verdict("hang", None)
    if not process.ok:
        exc = process.exception
        if isinstance(exc, InvariantViolation):
            return verdict("violation", exc)
        raise exc  # a genuine harness crash -> CellFailure upstream

    # ---- end-of-run checks (only sound at quiesce, after full repair —
    # injected corruption has been cleaned up, so nothing is "expected") ----
    try:
        sentinel.final_check()
    except InvariantViolation as exc:
        return verdict("violation", exc, post_repair=True)
    fingerprints = set(deployment.content_fingerprints().values())
    owners: Dict[str, list] = {}
    for site in names:
        leader = deployment.site_leader(site)
        if leader is None:
            continue
        for key in sorted(leader.site_tokens.owned):
            owners.setdefault(key, []).append(site)
    conflicted = sorted(k for k, held in owners.items() if len(held) > 1)
    if conflicted:
        violation = InvariantViolation(
            "single-token-ownership",
            f"tokens owned by multiple site leaders at quiesce: {conflicted}",
        )
        payload = verdict("violation", violation, post_repair=True)
        payload["token_conflicts"] = len(conflicted)
        return payload
    payload = verdict("ok", None)
    payload["converged"] = len(fingerprints) == 1
    payload["token_conflicts"] = 0
    return payload
