"""Automatic minimization of failing fuzz cases.

Any case whose verdict is a *finding* (invariant violation, hang, or a
harness exception) is shrunk before being written as an artifact: first
ddmin over the schedule entries (delete as many as possible while the
failure signature is preserved), then simplification of the surviving
spec (drop ambient degradation, shrink the workload, reduce keys),
re-running the deterministic harness after every candidate edit. The
result is the smallest schedule the minimizer could find that still
reproduces the *same* signature — usually the two or three entries whose
interleaving actually matters — which is what makes the replay artifact
readable as a bug report.

Signatures compare ``(status, invariant)``; trace digests intentionally
do **not** participate (every edit changes the trace, the *class* of
failure is what must be preserved).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fuzz.case import run_fuzz_case
from repro.fuzz.spec import canonical_spec

__all__ = ["run_signature", "shrink_case", "signature_of"]

Signature = Tuple[str, ...]


def signature_of(payload: Optional[Dict[str, Any]]) -> Optional[Signature]:
    """The failure signature of a verdict payload (None when the case
    passed)."""
    if payload is None:
        return None
    status = payload.get("status")
    if status == "violation":
        return ("violation", str(payload.get("invariant")))
    if status == "hang":
        return ("hang",)
    return None


def run_signature(
    spec: Dict[str, Any]
) -> Tuple[Optional[Signature], Optional[Dict[str, Any]]]:
    """Run ``spec`` in-process; returns (signature, payload).

    Harness exceptions become ``("exception", <type>)`` signatures so
    crash-class findings shrink exactly like invariant violations.
    """
    try:
        payload = run_fuzz_case(spec)
    except Exception as exc:
        return ("exception", type(exc).__name__), None
    return signature_of(payload), payload


def shrink_case(
    spec: Dict[str, Any],
    signature: Signature,
    max_runs: int = 80,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]], int]:
    """Minimize ``spec`` while preserving ``signature``.

    Returns ``(minimal_spec, its_payload, runs_used)``. The input spec is
    assumed to reproduce the signature (the campaign verified that); the
    output always does, by construction.
    """
    say = progress or (lambda _msg: None)
    runs = {"used": 0}
    best = {"spec": canonical_spec(spec), "payload": None}

    def still_fails(candidate: Dict[str, Any]) -> bool:
        if runs["used"] >= max_runs:
            return False
        runs["used"] += 1
        got, payload = run_signature(candidate)
        if got == signature:
            best["spec"] = canonical_spec(candidate)
            best["payload"] = payload
            return True
        return False

    # ---- phase 1: ddmin over schedule entries ----
    entries: List[Dict[str, Any]] = list(best["spec"]["schedule"])

    def with_schedule(subset: List[Dict[str, Any]]) -> Dict[str, Any]:
        candidate = canonical_spec(best["spec"])
        candidate["schedule"] = subset
        return candidate

    chunks = 2
    while len(entries) >= 1 and runs["used"] < max_runs:
        chunk_size = max(1, len(entries) // chunks)
        reduced = False
        start = 0
        while start < len(entries):
            complement = entries[:start] + entries[start + chunk_size:]
            if len(complement) < len(entries) and still_fails(
                with_schedule(complement)
            ):
                say(
                    f"shrink: {len(entries)} -> {len(complement)} entries "
                    f"({runs['used']} runs)"
                )
                entries = complement
                chunks = max(chunks - 1, 2)
                reduced = True
                start = 0
                continue
            start += chunk_size
        if not reduced:
            if chunks >= len(entries):
                break
            chunks = min(len(entries), chunks * 2)

    # ---- phase 2: spec simplification (one attempt per knob) ----
    def try_edit(edit: Callable[[Dict[str, Any]], None], label: str) -> None:
        candidate = canonical_spec(best["spec"])
        edit(candidate)
        if candidate != best["spec"] and still_fails(candidate):
            say(f"shrink: {label} ({runs['used']} runs)")

    def drop_ambient(candidate: Dict[str, Any]) -> None:
        candidate["ambient"] = {"loss": 0.0, "duplicate": 0.0}

    def shorter_run(candidate: Dict[str, Any]) -> None:
        wl = candidate["workload"]
        wl["duration_ms"] = max(2000.0, float(wl["duration_ms"]) / 2.0)

    def fewer_keys(candidate: Dict[str, Any]) -> None:
        wl = candidate["workload"]
        wl["keys"] = max(1, int(wl["keys"]) // 2)
        candidate["deployment"]["pin"] = [
            pin for pin in candidate["deployment"]["pin"]
            if int(pin[0]) < int(wl["keys"])
        ]

    def single_actor(candidate: Dict[str, Any]) -> None:
        candidate["workload"]["actors"] = 1

    def round_times(candidate: Dict[str, Any]) -> None:
        for entry in candidate["schedule"]:
            entry["at"] = round(float(entry["at"]) / 250.0) * 250.0
            entry["dwell"] = round(float(entry["dwell"]) / 500.0) * 500.0

    try_edit(drop_ambient, "ambient off")
    try_edit(shorter_run, "duration halved")
    try_edit(shorter_run, "duration halved again")
    try_edit(fewer_keys, "keys halved")
    try_edit(single_actor, "one actor per site")
    try_edit(round_times, "times rounded")

    if best["payload"] is None:
        # Every candidate was rejected (or the budget was zero): re-run
        # the best spec once so the artifact carries its real payload.
        _sig, payload = run_signature(best["spec"])
        best["payload"] = payload
    return best["spec"], best["payload"], runs["used"]
