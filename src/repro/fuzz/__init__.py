"""Coverage-guided fault-schedule fuzzer for the WanKeeper simulation.

The fuzzer closes the loop that ROADMAP item 3 asked for: the nemesis can
inject every fault the paper worries about, the invariant sentinel
(:mod:`repro.invariants`) can catch the resulting safety violations, and
the structured trace (:mod:`repro.trace`) records exactly what happened —
so a *campaign* can generate thousands of randomized fault schedules,
keep the ones that exercise novel protocol transitions, and shrink any
failure to a minimal, replayable artifact.

Layout:

* :mod:`repro.fuzz.spec` — the declarative, JSON-plain case spec
  (topology + deployment + workload + fault schedule) and its digest;
* :mod:`repro.fuzz.generate` — seeded case generation and mutation, one
  named RNG substream per dimension and per fault kind;
* :mod:`repro.fuzz.case` — the harness that runs one spec to a verdict
  (``ok`` / ``violation`` / ``hang``) with coverage and a trace digest;
* :mod:`repro.fuzz.coverage` — the coverage signal: trace-event kinds
  and consecutive kind-pairs (transitions);
* :mod:`repro.fuzz.shrink` — ddmin-style schedule minimization;
* :mod:`repro.fuzz.campaign` — the campaign loop over the
  :mod:`repro.runner` executor (parallelism, per-case timeout, crash
  and hang capture);
* :mod:`repro.fuzz.cli` — ``python -m repro fuzz`` (including
  ``--replay``).

See ``docs/FUZZING.md`` for the operator's view.
"""

from repro.fuzz.campaign import run_campaign
from repro.fuzz.case import run_fuzz_case
from repro.fuzz.generate import generate_case, mutate
from repro.fuzz.shrink import shrink_case, signature_of
from repro.fuzz.spec import canonical_spec, spec_digest, validate_spec

__all__ = [
    "canonical_spec",
    "generate_case",
    "mutate",
    "run_campaign",
    "run_fuzz_case",
    "shrink_case",
    "signature_of",
    "spec_digest",
    "validate_spec",
]
