"""The fuzz campaign loop: generate, execute, cover, shrink, report.

A campaign turns one seed into ``cases`` specs over a few rounds. Round
one is purely generative; later rounds split between fresh cases and
mutations of *corpus* seeds — cases that added novel trace transitions
to the accumulated :class:`~repro.fuzz.coverage.CoverageMap`, weighted
by how much they added. Cases execute through the standard
:func:`repro.runner.executor.execute` (so ``--jobs`` buys parallelism
and every case gets the per-cell wall timeout and crash capture), but
coverage accumulates in scenario-list order, which keeps the campaign
report a pure function of ``(seed, cases, rounds, flags)`` at any jobs
count.

Findings — distinct failure signatures — are shrunk in-process
(:mod:`repro.fuzz.shrink`) and written as replayable artifacts next to
the campaign report when ``--out`` is given.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fuzz.coverage import CoverageMap
from repro.fuzz.generate import generate_case, mutate
from repro.fuzz.shrink import run_signature, shrink_case, signature_of
from repro.fuzz.spec import spec_digest, spec_json
from repro.runner.executor import execute
from repro.runner.scenario import Scenario
from repro.sim.rng import seeded_rng

__all__ = ["make_artifact", "run_campaign", "write_artifact"]

REPORT_VERSION = 1


def _scenario_for(spec: Dict[str, Any], index: int) -> Scenario:
    return Scenario.make(
        "fuzz_case",
        {"spec_json": spec_json(spec)},
        suite="fuzz",
        label=f"case{index}",
    )


def make_artifact(
    spec: Dict[str, Any], payload: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """A replayable artifact: the (shrunk) spec plus what to expect.

    ``repro fuzz --replay`` re-runs the spec and asserts the expectation
    — including the trace digest, i.e. bit-identical reproduction.
    """
    expect: Dict[str, Any] = {}
    if payload is not None:
        expect = {
            "status": payload.get("status"),
            "invariant": payload.get("invariant"),
            "trace_digest": payload.get("trace_digest"),
            "detail": payload.get("detail"),
        }
    return {"v": REPORT_VERSION, "spec": spec, "expect": expect}


def _slug(signature: Tuple[str, ...]) -> str:
    return "-".join(
        part.replace("/", "_").replace(" ", "_") for part in signature
    )


def write_artifact(
    out_dir: str,
    signature: Tuple[str, ...],
    artifact: Dict[str, Any],
) -> str:
    """Write one finding's artifact; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    digest = spec_digest(artifact["spec"])[:10]
    path = os.path.join(out_dir, f"finding-{_slug(signature)}-{digest}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_campaign(
    seed: int,
    cases: int,
    rounds: int = 3,
    jobs: int = 1,
    timeout_s: float = 300.0,
    adversarial: bool = True,
    bug: Optional[str] = None,
    shrink: bool = True,
    shrink_budget: int = 80,
    out_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run one campaign; returns the deterministic JSON-plain report."""
    say = progress or (lambda _msg: None)
    rounds = max(1, min(rounds, cases))
    coverage = CoverageMap()
    # Corpus entries: (energy, case index, spec). Sorted iteration by
    # (-energy, index) keeps mutation-target choice deterministic.
    corpus: List[Tuple[int, int, Dict[str, Any]]] = []
    findings: Dict[Tuple[str, ...], Dict[str, Any]] = {}
    statuses: Dict[str, int] = {}
    executed = 0
    next_index = 0

    per_round = (cases + rounds - 1) // rounds
    for round_index in range(rounds):
        batch: List[Tuple[int, Dict[str, Any]]] = []
        while len(batch) < per_round and next_index < cases:
            index = next_index
            next_index += 1
            mutation_pool = [
                entry for entry in corpus if entry[0] > 0
            ]
            pick = seeded_rng(seed, f"pick:{index}")
            if round_index == 0 or not mutation_pool or pick.random() < 0.4:
                spec = generate_case(
                    seed, index, adversarial=adversarial, bug=bug
                )
            else:
                weights = [entry[0] for entry in mutation_pool]
                base = pick.choices(mutation_pool, weights=weights, k=1)[0]
                spec = mutate(base[2], seed, f"case{index}")
            batch.append((index, spec))
        if not batch:
            break
        say(
            f"round {round_index + 1}/{rounds}: {len(batch)} cases "
            f"({len(corpus)} corpus seeds, {len(findings)} findings)"
        )
        scenarios = [_scenario_for(spec, index) for index, spec in batch]
        report = execute(
            scenarios,
            jobs=jobs,
            cache=None,
            timeout_s=timeout_s,
            progress=progress,
        )
        executed += report.executed
        failure_by_digest = {
            failure.scenario.digest(): failure for failure in report.failures
        }
        for (index, spec), scenario in zip(batch, scenarios):
            payload = report.results.get(scenario.digest())
            if payload is not None:
                statuses[payload["status"]] = (
                    statuses.get(payload["status"], 0) + 1
                )
                energy = coverage.observe(payload.get("coverage", {}))
                if energy > 0:
                    corpus.append((energy, index, spec))
                signature = signature_of(payload)
            else:
                failure = failure_by_digest.get(scenario.digest())
                kind = failure.kind if failure is not None else "crash"
                statuses[kind] = statuses.get(kind, 0) + 1
                signature = (kind,)
            if signature is not None and signature not in findings:
                say(f"finding: {signature} (case {index})")
                findings[signature] = {
                    "signature": list(signature),
                    "case_index": index,
                    "case_digest": spec_digest(spec),
                    "schedule_entries": len(spec["schedule"]),
                    "spec": spec,
                }

    # ---- shrink + artifacts ----
    finding_rows: List[Dict[str, Any]] = []
    for signature_key in sorted(findings):
        finding = findings[signature_key]
        spec = finding.pop("spec")
        shrunk_spec, shrunk_payload = spec, None
        shrink_runs = 0
        if shrink:
            # Executor-side signatures (timeout/crash) are wall-clock
            # artifacts; shrink against the deterministic in-process
            # signature of the same spec instead.
            target, payload0 = run_signature(spec)
            shrink_runs += 1
            if target is not None:
                shrunk_spec, shrunk_payload, used = shrink_case(
                    spec,
                    target,
                    max_runs=shrink_budget,
                    progress=progress,
                )
                shrink_runs += used
                finding["signature"] = list(target)
            else:
                shrunk_payload = payload0
        finding["shrunk_entries"] = len(shrunk_spec["schedule"])
        finding["shrunk_digest"] = spec_digest(shrunk_spec)
        finding["shrink_runs"] = shrink_runs
        if shrunk_payload is not None:
            finding["invariant"] = shrunk_payload.get("invariant")
            finding["trace_digest"] = shrunk_payload.get("trace_digest")
        artifact = make_artifact(shrunk_spec, shrunk_payload)
        finding["artifact"] = None
        if out_dir is not None:
            finding["artifact"] = write_artifact(
                out_dir, tuple(finding["signature"]), artifact
            )
        else:
            finding["artifact_body"] = artifact
        finding_rows.append(finding)

    report_dict: Dict[str, Any] = {
        "v": REPORT_VERSION,
        "seed": seed,
        "cases": cases,
        "rounds": rounds,
        "adversarial": adversarial,
        "bug": bug,
        "executed": executed,
        "statuses": dict(sorted(statuses.items())),
        "coverage": coverage.snapshot(),
        "corpus_seeds": len(corpus),
        "findings": finding_rows,
    }
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "campaign-report.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report_dict, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report_dict
