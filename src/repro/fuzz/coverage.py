"""The fuzzer's coverage signal: trace-event kinds and kind transitions.

Protocol behavior in this codebase is legible through the structured
trace: every interesting state change (zab elections, commits, token
grants/recalls, lease grants, nemesis injections) emits a
``(cat, kind)`` event. A case's coverage is therefore:

* the set of ``cat:kind`` tokens it exercised, and
* the set of consecutive pairs ``a>b`` (transitions) — the cheap,
  order-sensitive analogue of AFL's edge coverage. A crash *during* a
  token recall produces ``wan:token-recall>nemesis:crash``, which no
  fault-free run ever shows, so schedules reaching novel interleavings
  score as novel even when the kind set is saturated.

Campaigns keep a :class:`CoverageMap` and reward mutated seeds that add
tokens to it; the accumulation order is the scenario-list order, never
the completion order, so reports are identical at any ``--jobs``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["CoverageMap", "case_coverage"]


def case_coverage(events: Sequence[Tuple]) -> Dict[str, List[str]]:
    """Coverage of one run, from trace-event tuples.

    Accepts the tuples of :meth:`repro.trace.TraceBuffer.events`
    (``(seq, t, cat, kind, node, detail)``). Returns sorted, de-duplicated
    ``kinds`` and ``transitions`` lists (JSON-plain, deterministic).
    """
    kinds: Set[str] = set()
    transitions: Set[str] = set()
    previous = None
    for event in events:
        token = f"{event[2]}:{event[3]}"
        kinds.add(token)
        if previous is not None:
            transitions.add(f"{previous}>{token}")
        previous = token
    return {"kinds": sorted(kinds), "transitions": sorted(transitions)}


class CoverageMap:
    """Accumulated coverage across a campaign."""

    def __init__(self) -> None:
        self.kinds: Set[str] = set()
        self.transitions: Set[str] = set()

    def observe(self, coverage: Dict[str, Any]) -> int:
        """Fold one case's coverage in; returns how many tokens were new.

        The return value is the seed's *energy* — corpus entries with
        positive energy are the mutation targets.
        """
        new = 0
        for token in coverage.get("kinds", ()):
            if token not in self.kinds:
                self.kinds.add(token)
                new += 1
        for token in coverage.get("transitions", ()):
            if token not in self.transitions:
                self.transitions.add(token)
                new += 1
        return new

    def snapshot(self) -> Dict[str, Any]:
        """JSON-plain summary for campaign reports."""
        return {
            "kinds": len(self.kinds),
            "transitions": len(self.transitions),
            "kind_tokens": sorted(self.kinds),
        }
