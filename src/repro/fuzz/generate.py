"""Seeded generation and mutation of fuzz-case specs.

Every random dimension draws from its own named substream of the
campaign seed (:func:`repro.sim.rng.seeded_rng`), keyed as
``case{i}:<dimension>`` — and, inside the schedule, per fault kind as
``case{i}:schedule:<kind>``. Two campaign properties fall out:

* **Stability** — adding a new fault kind (or making one kind draw more
  numbers) changes only that kind's entries; every other kind's entries,
  the topology, and the workload of every previously generated case stay
  bit-identical. Regression seeds keep meaning the same case forever.
* **Determinism** — the same ``(campaign_seed, index)`` always produces
  the same spec, with no dependence on generation order or process count.

Mutation (the coverage-feedback path) is seeded the same way, from the
campaign seed plus a caller-chosen salt.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.fuzz.spec import SPEC_VERSION, canonical_spec
from repro.sim.rng import seeded_rng

__all__ = ["generate_case", "mutate"]

#: (kind, max entries per case). Order is documentation only — each kind
#: draws from its own substream, so reordering this table is a no-op.
FAULT_KIND_BUDGET = (
    ("crash", 3),
    ("partition", 2),
    ("oneway-partition", 2),
    ("flaky-link", 2),
    ("gray-degrade", 2),
    ("token-usurper", 2),
    ("stale-leader", 2),
)

ADVERSARIAL_KINDS = ("token-usurper", "stale-leader")

#: One-way delay classes (ms): regional, continental, intercontinental.
RTT_CLASSES = ((5.0, 15.0), (25.0, 45.0), (60.0, 90.0))

#: Faults land inside the workload window (duration_ms spans this).
SCHEDULE_WINDOW_MS = (500.0, 12000.0)
DWELL_RANGE_MS = (800.0, 6000.0)


def _gen_entry(kind: str, rng: random.Random) -> Dict[str, Any]:
    """One schedule entry of ``kind``; index fields are resolved modulo
    the live candidate lists at apply time (see ScheduleNemesis)."""
    entry: Dict[str, Any] = {
        "at": round(rng.uniform(*SCHEDULE_WINDOW_MS), 1),
        "kind": kind,
        "dwell": round(rng.uniform(*DWELL_RANGE_MS), 1),
    }
    if kind == "crash":
        entry["site"] = rng.randrange(8)
        entry["victim"] = rng.randrange(4)
    elif kind in ("partition", "oneway-partition"):
        entry["a"] = rng.randrange(8)
        entry["b"] = rng.randrange(8)
    elif kind == "flaky-link":
        entry["a"] = rng.randrange(8)
        entry["b"] = rng.randrange(8)
        entry["loss"] = round(rng.uniform(0.05, 0.4), 2)
        entry["duplicate"] = round(rng.uniform(0.0, 0.2), 2)
    elif kind == "gray-degrade":
        entry["a"] = rng.randrange(8)
        entry["b"] = rng.randrange(8)
        entry["factor"] = round(rng.uniform(3.0, 12.0), 1)
    elif kind == "token-usurper":
        entry["site"] = rng.randrange(8)
        entry["key"] = rng.randrange(8)
    elif kind == "stale-leader":
        entry["site"] = rng.randrange(8)
    return entry


def _sort_schedule(schedule: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return sorted(
        schedule,
        key=lambda e: (float(e.get("at", 0.0)), str(e.get("kind", ""))),
    )


def generate_case(
    campaign_seed: int,
    index: int,
    adversarial: bool = True,
    bug: Optional[str] = None,
) -> Dict[str, Any]:
    """Generate case ``index`` of the campaign under ``campaign_seed``."""
    tag = f"case{index}"

    rng_topo = seeded_rng(campaign_seed, f"{tag}:topology")
    sites = rng_topo.randint(2, 4)
    names = [f"s{i}" for i in range(sites)]
    delays: Dict[str, float] = {}
    for i in range(sites):
        for j in range(i + 1, sites):
            low, high = RTT_CLASSES[rng_topo.randrange(len(RTT_CLASSES))]
            delays[f"{names[i]}|{names[j]}"] = round(
                rng_topo.uniform(low, high), 1
            )
    jitter = rng_topo.choice([0.0, 0.05, 0.1])
    voters = rng_topo.choice([1, 3, 3])  # mostly fault-tolerant ensembles
    l2 = rng_topo.randrange(sites)

    rng_wl = seeded_rng(campaign_seed, f"{tag}:workload")
    keys = rng_wl.randint(2, 6)
    read_mode = rng_wl.choice(["local", "local", "fractional"])
    write_fraction = round(rng_wl.uniform(0.3, 0.9), 2)
    # The workload must outlive the schedule window, else late faults hit
    # an idle system and teach the fuzzer nothing.
    duration = round(rng_wl.uniform(9000.0, 16000.0), 0)
    pace = sorted(
        (
            round(rng_wl.uniform(20.0, 120.0), 1),
            round(rng_wl.uniform(150.0, 400.0), 1),
        )
    )
    # Pre-place some tokens (WK-Hot style): gives the adversarial
    # token-usurper a legitimate owner to collide with from t=0.
    pin = []
    for key_index in range(keys):
        if rng_wl.random() < 0.6:
            pin.append([key_index, rng_wl.randrange(sites)])
    ambient_on = rng_wl.random() < 0.3
    ambient = {
        "loss": 0.02 if ambient_on else 0.0,
        "duplicate": 0.02 if ambient_on else 0.0,
    }

    schedule: List[Dict[str, Any]] = []
    for kind, budget in FAULT_KIND_BUDGET:
        if kind in ADVERSARIAL_KINDS and not adversarial:
            continue
        rng_kind = seeded_rng(campaign_seed, f"{tag}:schedule:{kind}")
        for _ in range(rng_kind.randint(0, budget)):
            schedule.append(_gen_entry(kind, rng_kind))

    spec = {
        "v": SPEC_VERSION,
        "seed": seeded_rng(campaign_seed, f"{tag}:seed").getrandbits(32),
        "topology": {
            "sites": sites,
            "delays": delays,
            "local_ms": 0.25,
            "jitter": jitter,
        },
        "deployment": {
            "voters": voters,
            "l2": l2,
            "read_mode": read_mode,
            "lease_ms": 2000.0,
            "pin": pin,
        },
        "workload": {
            "keys": keys,
            "actors": 1,
            "duration_ms": duration,
            "write_fraction": write_fraction,
            "pace_ms": pace,
            "request_timeout_ms": 4000.0,
        },
        "ambient": ambient,
        "schedule": _sort_schedule(schedule),
        "horizon_ms": 120000.0,
        "quiesce_ms": 12000.0,
        "bug": bug,
    }
    return canonical_spec(spec)


#: Mutation operators, each a small structural edit.
_MUTATIONS = ("add", "drop", "retime", "param", "workload", "ambient")


def mutate(
    spec: Dict[str, Any], campaign_seed: int, salt: str
) -> Dict[str, Any]:
    """A structurally mutated copy of ``spec`` (the coverage-bias path).

    Deterministic in ``(campaign_seed, salt, spec)``; 1–3 edits per call,
    biased toward schedule edits since the schedule is where novel
    interleavings come from.
    """
    rng = seeded_rng(campaign_seed, f"mutate:{salt}")
    out = canonical_spec(spec)
    schedule: List[Dict[str, Any]] = list(out["schedule"])
    for _ in range(rng.randint(1, 3)):
        op = rng.choice(_MUTATIONS)
        if op == "add":
            kind = rng.choice([k for k, _budget in FAULT_KIND_BUDGET])
            schedule.append(_gen_entry(kind, rng))
        elif op == "drop" and schedule:
            schedule.pop(rng.randrange(len(schedule)))
        elif op == "retime" and schedule:
            entry = schedule[rng.randrange(len(schedule))]
            entry["at"] = round(
                max(0.0, float(entry["at"]) + rng.uniform(-3000.0, 3000.0)), 1
            )
            entry["dwell"] = round(
                max(100.0, float(entry["dwell"]) + rng.uniform(-2000.0, 2000.0)),
                1,
            )
        elif op == "param" and schedule:
            entry = schedule[rng.randrange(len(schedule))]
            for field in ("site", "victim", "a", "b", "key"):
                if field in entry and rng.random() < 0.5:
                    entry[field] = rng.randrange(8)
            if "loss" in entry:
                entry["loss"] = round(rng.uniform(0.05, 0.5), 2)
            if "factor" in entry:
                entry["factor"] = round(rng.uniform(3.0, 15.0), 1)
        elif op == "workload":
            wl = out["workload"]
            wl["write_fraction"] = round(rng.uniform(0.2, 0.95), 2)
            wl["duration_ms"] = round(
                max(
                    3000.0,
                    float(wl["duration_ms"]) + rng.uniform(-4000.0, 4000.0),
                ),
                0,
            )
            if rng.random() < 0.3:
                wl["keys"] = max(1, int(wl["keys"]) + rng.randint(-2, 2))
                out["deployment"]["pin"] = [
                    pin for pin in out["deployment"]["pin"]
                    if int(pin[0]) < int(wl["keys"])
                ]
        elif op == "ambient":
            on = rng.random() < 0.5
            out["ambient"] = {
                "loss": 0.03 if on else 0.0,
                "duplicate": 0.02 if on else 0.0,
            }
    out["schedule"] = _sort_schedule(schedule)
    return canonical_spec(out)
