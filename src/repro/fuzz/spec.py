"""The declarative fuzz-case spec.

A case is one JSON-plain dict that fully determines one simulation run:
topology (site count and per-pair one-way delays), deployment shape
(voters per site, hub placement, read mode, token pre-placement),
workload mix, ambient link degradation, the fault schedule (played by
:class:`repro.nemesis.ScheduleNemesis`), and an optional re-introduced
bug knob. Because the spec is plain JSON it travels through the
:mod:`repro.runner` executor as a single scenario parameter, shrinks by
structural editing, and checks into the repo as a regression artifact.

``canonical_spec`` is the normal form every consumer uses: JSON round-trip
with sorted keys, so digests and payload comparisons are stable no matter
who built the dict.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

__all__ = [
    "SPEC_VERSION",
    "canonical_spec",
    "site_names",
    "spec_digest",
    "spec_keys",
    "validate_spec",
]

SPEC_VERSION = 1

#: Fault kinds a schedule entry may use (mirrors ScheduleNemesis.KINDS;
#: asserted equal in the test suite so the two cannot drift apart).
SCHEDULE_KINDS = (
    "crash",
    "partition",
    "oneway-partition",
    "flaky-link",
    "gray-degrade",
    "token-usurper",
    "stale-leader",
)

#: Known re-introducible bug knobs (see docs/FUZZING.md).
BUG_KNOBS = ("recall-race",)

READ_MODES = ("local", "forward", "fractional")


def canonical_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """The canonical (JSON round-tripped, key-sorted) form of a spec."""
    return json.loads(json.dumps(spec, sort_keys=True))


def spec_json(spec: Dict[str, Any]) -> str:
    """Canonical compact JSON text of a spec (the scenario parameter)."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


def spec_digest(spec: Dict[str, Any]) -> str:
    """Content digest of the canonical spec."""
    return hashlib.sha256(spec_json(spec).encode("utf-8")).hexdigest()


def site_names(spec: Dict[str, Any]) -> List[str]:
    """Site names ``s0..s{n-1}`` for the spec's topology."""
    return [f"s{i}" for i in range(int(spec["topology"]["sites"]))]


def spec_keys(spec: Dict[str, Any]) -> List[str]:
    """The workload's znode paths."""
    return [f"/fuzz/k{i}" for i in range(int(spec["workload"]["keys"]))]


def validate_spec(spec: Dict[str, Any]) -> None:
    """Reject structurally broken specs with a clear error.

    Validation is deliberately shallow — the harness tolerates weird but
    well-formed values (that is the point of fuzzing) — it only refuses
    specs that could not build a deployment at all.
    """
    if spec.get("v") != SPEC_VERSION:
        raise ValueError(f"unsupported spec version {spec.get('v')!r}")
    topo = spec["topology"]
    sites = int(topo["sites"])
    if sites < 1:
        raise ValueError(f"need at least one site, got {sites}")
    names = site_names(spec)
    delays = topo["delays"]
    for i in range(sites):
        for j in range(i + 1, sites):
            pair = f"{names[i]}|{names[j]}"
            delay = delays.get(pair)
            if delay is None or float(delay) <= 0:
                raise ValueError(f"missing/non-positive delay for {pair}")
    dep = spec["deployment"]
    if int(dep["voters"]) < 1:
        raise ValueError("voters must be >= 1")
    if not 0 <= int(dep["l2"]) < sites:
        raise ValueError(f"l2 index {dep['l2']} out of range")
    if dep["read_mode"] not in READ_MODES:
        raise ValueError(f"unknown read_mode {dep['read_mode']!r}")
    for pin in dep.get("pin", []):
        key_index, site_index = pin
        if not 0 <= int(site_index) < sites:
            raise ValueError(f"pin {pin} names an unknown site")
        if not 0 <= int(key_index) < int(spec["workload"]["keys"]):
            raise ValueError(f"pin {pin} names an unknown key")
    wl = spec["workload"]
    if int(wl["keys"]) < 1 or int(wl["actors"]) < 1:
        raise ValueError("workload needs >= 1 key and actor")
    if float(wl["duration_ms"]) <= 0:
        raise ValueError("workload duration_ms must be positive")
    for entry in spec["schedule"]:
        kind = entry.get("kind")
        if kind not in SCHEDULE_KINDS:
            raise ValueError(f"unknown schedule kind {kind!r}")
        if float(entry.get("at", 0.0)) < 0:
            raise ValueError(f"negative schedule time in {entry}")
    bug = spec.get("bug")
    if bug is not None and bug not in BUG_KNOBS:
        raise ValueError(f"unknown bug knob {bug!r}")
    if float(spec["horizon_ms"]) <= 0 or float(spec["quiesce_ms"]) < 0:
        raise ValueError("horizon_ms must be positive, quiesce_ms >= 0")
