"""Online invariant sentinel: safety checks that run *during* a simulation.

The paper's performance story rests on safety properties it never
re-checks at runtime — §III's single-writer token rule, Zab's
committed-prefix agreement, session/ephemeral consistency. The sentinel
turns those into always-on assertions evaluated at the moment the relevant
state changes, so a latent bug surfaces as a raised
:class:`InvariantViolation` (with the last N trace events attached) instead
of a silently perturbed seeded digest.

Checked invariants:

* **single-token-ownership** — at most one site may hold a record's write
  token at any instant, including bulk (sequential-parent) tokens and the
  windows where grants/recalls are in flight, and no site may hold a token
  while the hub serializes a write or grants a fractional read lease on it;
* **zxid-monotonic** — each peer applies commits in strictly increasing
  zxid order (reset on SNAP sync or restart, which legitimately replay);
* **committed-prefix** — all peers of one ensemble apply the *same*
  transaction at each committed zxid;
* **object-order / object-agreement** (wpaxos substrate) — each peer
  applies every object's commits as a contiguous slot sequence, and all
  peers of one ensemble apply the same transaction at each (object,
  slot);
* **single-owner-exclusivity** (wpaxos substrate) — per object, at most
  one peer ever adopts a given ballot, and adopted ballots strictly
  increase — the steal-based analogue of single-token-ownership;
* **no-double-apply** — with the reply cache enabled, no replica applies
  the same ``(session_id, cxid)`` twice (the lossy-soak check, generalized
  into an always-on hook);
* **reply-coherence** — every replica's first apply of a given
  ``(session_id, cxid)`` produces the same client-visible reply (modulo
  per-ensemble zxids in ``Stat``);
* **lease-coherence** — a site leader may not serve a fractional read
  (§VI) from a lease that has expired, or that was granted before an
  invalidation this leader already acknowledged (the oracle for the
  nemesis's adversarial *stale leader*);
* **ephemeral-liveness** — at quiesce, no ephemeral node survives its
  owner session's expiry (:meth:`InvariantSentinel.final_check`).

Enablement: ``REPRO_SENTINEL=1`` in the environment (the test suite turns
it on by default via ``tests/conftest.py``; ``python -m repro experiments
--sentinel`` turns it on for experiment runs). The disabled path is a
single ``is not None`` branch at every hook site.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.trace import TraceBuffer, install_trace

__all__ = [
    "InvariantSentinel",
    "InvariantViolation",
    "attach_sentinel",
    "maybe_attach_sentinel",
    "sentinel_enabled",
]

#: Environment variable gating default sentinel attachment in builders.
SENTINEL_ENV = "REPRO_SENTINEL"

#: How many trailing trace events a violation carries by default.
DEFAULT_TAIL = 40


class InvariantViolation(AssertionError):
    """A safety invariant failed during the run.

    Carries the machine-readable pieces (``invariant``, ``detail``,
    ``trace_tail``) alongside a formatted message that includes the last N
    trace events — the first divergent event is the last thing that
    happened before the check fired.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        trace_tail: Iterable[Any] = (),
        rendered_tail: str = "",
    ):
        self.invariant = invariant
        self.detail = detail
        self.trace_tail = list(trace_tail)
        message = f"invariant violated [{invariant}]: {detail}"
        if rendered_tail:
            message += (
                f"\nlast {len(self.trace_tail)} trace events"
                " (most recent last):\n" + rendered_tail
            )
        super().__init__(message)


def sentinel_enabled() -> bool:
    """Is default sentinel attachment requested via the environment?"""
    return os.environ.get(SENTINEL_ENV, "0").lower() not in ("", "0", "false", "off")


class InvariantSentinel:
    """Checks safety invariants online, across every server of a deployment.

    One instance watches one deployment (all ensembles of a WanKeeper
    system, or the single ensemble of a ZK baseline). Servers and peers
    reach it through their ``sentinel`` attribute; every hook is guarded at
    the call site by ``if self.sentinel is not None`` so the detached
    configuration costs one branch.
    """

    def __init__(
        self,
        trace: Optional[TraceBuffer] = None,
        tail: int = DEFAULT_TAIL,
    ):
        self.trace = trace
        self.tail = tail
        self.checks_run = 0
        self.violations = 0
        self._servers: List[Any] = []
        # peer name -> last applied zxid (reset on SNAP/restart replay).
        self._peer_applied: Dict[str, Any] = {}
        # (ensemble id, zxid) -> digest of the committed payload.
        self._committed: Dict[Tuple[int, Any], str] = {}
        # (server name, session_id, cxid) -> [op digest, apply count].
        self._applies: Dict[Tuple[str, str, int], List[Any]] = {}
        # (session_id, cxid) -> (op digest, canonical reply).
        self._replies: Dict[Tuple[str, int], Tuple[str, Any]] = {}
        # (server name, token key) -> time of the latest invalidation this
        # server acknowledged (fractional reads, §VI).
        self._lease_invalidated: Dict[Tuple[str, str], float] = {}
        # --- wpaxos substrate ---
        # (peer name, object) -> next slot the peer must apply.
        self._object_applied: Dict[Tuple[str, str], int] = {}
        # (ensemble id, object, slot) -> digest of the chosen txn.
        self._object_chosen: Dict[Tuple[int, str, int], str] = {}
        # (ensemble id, object) -> (last adopted ballot, adopter name).
        self._object_owner: Dict[Tuple[int, str], Tuple[Any, str]] = {}

    # ------------------------------------------------------------- wiring

    def adopt(self, servers: Iterable[Any]) -> None:
        """Start watching ``servers`` (idempotent per server)."""
        for server in servers:
            if server in self._servers:
                continue
            self._servers.append(server)
            server.sentinel = self
            server.peer.sentinel = self

    # ------------------------------------------------------------- failure

    def _fail(self, invariant: str, detail: str) -> None:
        self.violations += 1
        tail: List[Any] = []
        rendered = ""
        if self.trace is not None:
            tail = self.trace.tail(self.tail)
            rendered = self.trace.format_tail(self.tail)
        raise InvariantViolation(invariant, detail, tail, rendered)

    # --------------------------------------------------------- zab hooks

    def on_peer_commit(self, peer, zxid, payload: Any) -> None:
        """Called by ``ZabPeer._apply_up_to`` for every applied commit."""
        self.checks_run += 1
        last = self._peer_applied.get(peer.name)
        if last is not None and zxid <= last:
            self._fail(
                "zxid-monotonic",
                f"{peer.name} applied {zxid} after {last}",
            )
        self._peer_applied[peer.name] = zxid
        ensemble = id(peer.config)
        digest = repr(payload)
        key = (ensemble, zxid)
        prior = self._committed.get(key)
        if prior is None:
            self._committed[key] = digest
        elif prior != digest:
            self._fail(
                "committed-prefix",
                f"{peer.name} applied a different txn at {zxid}: "
                f"{digest[:200]} != first-seen {prior[:200]}",
            )

    def on_peer_reset(self, peer) -> None:
        """SNAP sync or restart: the peer legitimately replays from zero."""
        self._peer_applied.pop(peer.name, None)

    # ------------------------------------------------------ wpaxos hooks

    def on_object_commit(self, peer, obj: str, slot: int, ballot,
                         payload: Any) -> None:
        """Called by ``WPaxosPeer._apply_ready`` for every applied commit.

        Per-object analogue of :meth:`on_peer_commit`: commits within one
        object must apply as a contiguous slot sequence on each peer, and
        every peer must see the same transaction at each (object, slot).
        Ballots are *not* compared — a slot chosen at one ballot can be
        re-learned at a thief's higher ballot; the value is what Paxos
        pins.
        """
        self.checks_run += 1
        applied_key = (peer.name, obj)
        expected = self._object_applied.get(applied_key, 0)
        if slot != expected:
            self._fail(
                "object-order",
                f"{peer.name} applied {obj!r} slot {slot} "
                f"(expected {expected})",
            )
        self._object_applied[applied_key] = slot + 1
        digest = repr(payload)
        chosen_key = (id(peer.config), obj, slot)
        prior = self._object_chosen.get(chosen_key)
        if prior is None:
            self._object_chosen[chosen_key] = digest
        elif prior != digest:
            self._fail(
                "object-agreement",
                f"{peer.name} applied a different txn at {obj!r} slot "
                f"{slot}: {digest[:200]} != first-seen {prior[:200]}",
            )

    def on_object_owner(self, peer, obj: str, ballot) -> None:
        """Called by ``WPaxosPeer`` on adopting ownership of ``obj``.

        The steal-based analogue of single-token-ownership: ballots are
        globally unique (they embed the proposer address), so two peers
        adopting the same ballot — or an adoption at or below the last
        adopted ballot — means two owners could commit concurrently.
        """
        self.checks_run += 1
        owner_key = (id(peer.config), obj)
        prior = self._object_owner.get(owner_key)
        if prior is not None:
            last_ballot, last_owner = prior
            if tuple(ballot) == tuple(last_ballot) and peer.name != last_owner:
                self._fail(
                    "single-owner-exclusivity",
                    f"{peer.name} adopted {obj!r} at ballot {ballot}, "
                    f"already owned at that ballot by {last_owner}",
                )
            if tuple(ballot) <= tuple(last_ballot):
                self._fail(
                    "single-owner-exclusivity",
                    f"{peer.name} adopted {obj!r} at ballot {ballot}, not "
                    f"above the last adoption {last_ballot} by {last_owner}",
                )
        self._object_owner[owner_key] = (tuple(ballot), peer.name)

    def on_object_reset(self, peer) -> None:
        """WPaxos peer restart: it replays its chosen prefix from zero."""
        stale = [
            key for key in self._object_applied if key[0] == peer.name
        ]
        for key in stale:
            del self._object_applied[key]

    # ---------------------------------------------------------- zk hooks

    def on_apply(self, server, txn, reply) -> None:
        """Called by ``ZkServer._commit_client_txn`` after each apply."""
        self.checks_run += 1
        op_digest = repr(txn.op)
        apply_key = (server.name, txn.session_id, txn.cxid)
        record = self._applies.get(apply_key)
        if record is None or record[0] != op_digest:
            # First apply — or a (session, cxid) reused by a different
            # request after the hosting server lost its session counter in
            # a crash; that is a fresh request, not a duplicate.
            self._applies[apply_key] = [op_digest, 1]
        else:
            record[1] += 1
            if server.reply_cache_enabled:
                self._fail(
                    "no-double-apply",
                    f"{server.name} applied ({txn.session_id!r}, "
                    f"cxid={txn.cxid}) {record[1]} times "
                    f"(op {op_digest[:120]})",
                )
        if not server.reply_cache_enabled:
            # Without at-most-once the same (session, cxid) legitimately
            # re-applies with fresh results — nothing coherent to demand.
            return
        canonical = _canonical_reply(reply)
        reply_key = (txn.session_id, txn.cxid)
        prior = self._replies.get(reply_key)
        if prior is None or prior[0] != op_digest:
            self._replies[reply_key] = (op_digest, canonical)
        elif prior[1] != canonical:
            self._fail(
                "reply-coherence",
                f"{server.name} built a different reply for "
                f"({txn.session_id!r}, cxid={txn.cxid}): {canonical!r} != "
                f"first-seen {prior[1]!r}",
            )

    def on_replica_reset(self, server) -> None:
        """Server restart / SNAP tree reset: its apply history restarts."""
        prefix = server.name
        stale = [key for key in self._applies if key[0] == prefix]
        for key in stale:
            del self._applies[key]

    # --------------------------------------------------------- wan hooks

    def on_local_admit(self, server, keys: Iterable[str]) -> None:
        """A site leader admits a local write under its tokens."""
        self.checks_run += 1
        self._check_exclusive(server, keys, "local write admitted")

    def on_token_grant(self, server, key: str, site: str) -> None:
        """A site leader applied a committed grant of ``key`` to itself."""
        self.checks_run += 1
        self._check_exclusive(server, (key,), f"grant to {site!r} applied")

    def on_hub_serialize(self, server, keys: Iterable[str]) -> None:
        """The hub serializes a write — every needed token must be home."""
        self.checks_run += 1
        for key in sorted(keys):
            if not server.hub_tokens.at_hub(key):
                self._fail(
                    "single-token-ownership",
                    f"hub {server.name} serialized a write on {key!r} while "
                    f"the token is at {server.hub_tokens.where(key)!r}",
                )
        self._check_exclusive(server, keys, "hub-serialized write")

    def on_lease_grant(self, server, key: str) -> None:
        """The hub grants a fractional read lease — token must be home."""
        self.checks_run += 1
        if not server.hub_tokens.at_hub(key):
            self._fail(
                "single-token-ownership",
                f"hub {server.name} granted a read lease on {key!r} while "
                f"the token is at {server.hub_tokens.where(key)!r}",
            )
        self._check_exclusive(server, (key,), "read lease granted")

    def on_lease_invalidate_ack(self, server, keys: Iterable[str]) -> None:
        """A site leader acknowledged a fractional-read invalidation."""
        now = server.env.now
        for key in sorted(keys):
            self._lease_invalidated[(server.name, key)] = now

    def on_lease_read(self, server, path: str, lease) -> None:
        """A site leader serves a read from a fractional lease (§VI).

        The lease must still be inside its validity window, and must have
        been granted *after* any invalidation this leader acknowledged for
        its token — an honest leader drops leases on invalidation and
        never serves expired ones, so either failure means stale reads.
        """
        self.checks_run += 1
        now = server.env.now
        if lease.expires <= now:
            self._fail(
                "lease-coherence",
                f"{server.name} served {path!r} from a lease that expired "
                f"at {lease.expires:.3f} (now {now:.3f})",
            )
        granted_at = lease.expires - server.wan.read_lease_ms
        acked = self._lease_invalidated.get((server.name, lease.key))
        if acked is not None and acked > granted_at:
            self._fail(
                "lease-coherence",
                f"{server.name} served {path!r} from a lease granted at "
                f"{granted_at:.3f} but invalidated (and acked) at "
                f"{acked:.3f}",
            )

    def _check_exclusive(self, server, keys: Iterable[str], what: str) -> None:
        """No *other* site's live leader may hold any of ``keys``.

        Only leaders are compared: follower token state lags its ensemble's
        committed log by design, while a leader is always at least as new
        as everything the hub has accepted (releases commit in the site
        ensemble before the hub may re-grant).
        """
        for other in self._servers:
            if other is server or other.site == server.site:
                continue
            if not (other.is_alive and other.peer.is_leader):
                continue
            tokens = getattr(other, "site_tokens", None)
            if tokens is None:
                continue
            for key in sorted(keys):
                if key in tokens.owned:
                    self._fail(
                        "single-token-ownership",
                        f"{what} at {server.name} (site {server.site!r}) for "
                        f"{key!r}, but site leader {other.name} "
                        f"(site {other.site!r}) still owns the token",
                    )

    # ----------------------------------------------------- final checks

    def final_check(self) -> int:
        """End-of-run checks that are only sound at quiesce.

        Verifies ephemeral-owner-session liveness: a live server's tree may
        not retain ephemerals of a session its hosting server knows to be
        expired — unless that session is still queued for ephemeral GC
        (WanKeeper re-issues the close until leftovers drain). Returns the
        number of (server, session) pairs inspected.
        """
        hosts = {
            str(server.client_addr): server
            for server in self._servers
        }
        inspected = 0
        for server in self._servers:
            if not server.is_alive:
                continue
            for session_id in sorted(server.tree._ephemerals):
                inspected += 1
                host_name = session_id.rsplit("#", 1)[0]
                host = hosts.get(host_name)
                if host is None or not host.is_alive:
                    continue  # hosting server gone; nobody owns the session
                session = host.sessions.get(session_id)
                if session is None or not session.expired:
                    continue  # unknown (tracker lost in restart) or live
                pending_gc = session_id in getattr(host, "_gc_sessions", ())
                if pending_gc:
                    continue
                paths = server.tree.ephemerals_of(session_id)
                self._fail(
                    "ephemeral-liveness",
                    f"{server.name} retains ephemerals {paths} of expired "
                    f"session {session_id!r} (hosted at {host.name}) with no "
                    "close pending",
                )
        self.checks_run += inspected
        return inspected


def _canonical_reply(reply) -> Tuple[Any, ...]:
    """A zxid-free canonical form of an :class:`OpReply` for comparison.

    WanKeeper replicates one logical tree through per-site ensembles, so
    ``Stat`` zxids legitimately differ across replicas; child-count and
    cversion fields can transiently differ too (children move under their
    own tokens). Everything token-ordered — version, data, ephemeral owner,
    error codes — must agree.
    """
    if reply.ok:
        return ("ok", _canonical_value(reply.value))
    return ("err", reply.error_code, reply.error_path)


def _canonical_value(value: Any) -> Any:
    # Duck-typed Stat check: importing repro.zk.records here would close an
    # import cycle (zk.__init__ -> deployment -> invariants).
    if type(value).__name__ == "Stat" and hasattr(value, "ephemeral_owner"):
        return ("stat", value.version, value.data_length, value.ephemeral_owner)
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(item) for item in value)
    return value


def attach_sentinel(
    deployment,
    trace: Optional[TraceBuffer] = None,
    tail: int = DEFAULT_TAIL,
) -> InvariantSentinel:
    """Attach a sentinel (and trace buffer) to a built deployment."""
    if trace is None:
        trace = install_trace(deployment)
    else:
        install_trace(deployment, trace)
    sentinel = InvariantSentinel(trace=trace, tail=tail)
    sentinel.adopt(deployment.servers)
    return sentinel


def maybe_attach_sentinel(deployment) -> Optional[InvariantSentinel]:
    """Attach a sentinel if ``REPRO_SENTINEL`` asks for one (builders call
    this; the benchmarks never set the variable, so their hot paths keep
    the bare one-branch disabled configuration)."""
    if not sentinel_enabled():
        return None
    return attach_sentinel(deployment)
