"""Observability helpers: message accounting and token-migration analysis.

These exist for the paper's tuning story (§I: WanKeeper "provides knobs for
tuning/improving performance") — to tune the migration threshold or the
primary-site assignment you first need to *see* where tokens move and what
crosses the WAN.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.message import Envelope
from repro.net.transport import Network

__all__ = ["MessageStats", "migration_counts", "token_timeline"]


@dataclass
class MessageStats:
    """Counts every sent message by payload type and site pair.

    Attach before the workload: ``stats = MessageStats.attach(net)``.
    """

    by_type: Counter = field(default_factory=Counter)
    by_site_pair: Counter = field(default_factory=Counter)
    wan_messages: int = 0
    local_messages: int = 0
    #: The network being observed (for drop/duplicate accounting).
    net: Optional[Network] = None
    #: Network counters at attach time — drop/duplicate figures are deltas
    #: from here, so counts accrued before ``attach()`` (warm-up, an earlier
    #: MessageStats window) don't bleed into this window's report.
    _drops_at_attach: Counter = field(default_factory=Counter)
    _duplicated_at_attach: int = 0

    @classmethod
    def attach(cls, net: Network) -> "MessageStats":
        stats = cls(
            net=net,
            _drops_at_attach=Counter(net.drops_by_reason),
            _duplicated_at_attach=net.messages_duplicated,
        )
        net.tap(stats._observe)
        return stats

    def _observe(self, envelope: Envelope) -> None:
        self.by_type[type(envelope.body).__name__] += 1
        pair = (envelope.src.site, envelope.dst.site)
        self.by_site_pair[pair] += 1
        if envelope.src.site == envelope.dst.site:
            self.local_messages += 1
        else:
            self.wan_messages += 1

    @property
    def total(self) -> int:
        return self.wan_messages + self.local_messages

    def wan_fraction(self) -> float:
        """Fraction of all messages that crossed the WAN."""
        return self.wan_messages / self.total if self.total else 0.0

    def top_types(self, count: int = 10) -> List[Tuple[str, int]]:
        return self.by_type.most_common(count)

    def drops_by_reason(self) -> Dict[str, int]:
        """Messages dropped *since attach* by the attached network, per
        tagged reason (crash, partition, loss, inbox-closed)."""
        if self.net is None:
            return {}
        return {
            reason: count - self._drops_at_attach.get(reason, 0)
            for reason, count in self.net.drops_by_reason.items()
            if count - self._drops_at_attach.get(reason, 0) > 0
        }

    def messages_duplicated(self) -> int:
        """Messages duplicated by the network since attach."""
        if self.net is None:
            return 0
        return self.net.messages_duplicated - self._duplicated_at_attach

    def report(self) -> str:
        lines = [
            f"messages: {self.total} total, {self.wan_messages} WAN "
            f"({self.wan_fraction():.1%})",
        ]
        if self.net is not None:
            drops = self.drops_by_reason()
            dropped = sum(drops.values())
            breakdown = ", ".join(
                f"{reason}={count}" for reason, count in sorted(drops.items())
            )
            lines.append(
                f"dropped: {dropped}"
                + (f" ({breakdown})" if breakdown else "")
                + f", duplicated: {self.messages_duplicated()}"
            )
        lines.append("top message types:")
        for name, number in self.top_types():
            lines.append(f"  {name:24s} {number}")
        return "\n".join(lines)


def token_timeline(
    server, key: Optional[str] = None
) -> List[Tuple[float, str, Optional[str]]]:
    """Token movement events recorded at ``server`` (a WanKeeperServer).

    Each event is ``(sim time ms, key, owner)`` with owner None meaning
    the token returned to the hub. Filter to one ``key`` if given.
    """
    history = server.token_history
    if key is not None:
        history = [event for event in history if event[1] == key]
    return list(history)


def migration_counts(server) -> Dict[str, int]:
    """Per-key count of token movements observed at ``server``.

    High counts identify contended records — candidates for the paper's
    tuning knobs (pinning at the hub, primary-site reassignment).
    """
    counts: Dict[str, int] = {}
    for _time, key, _owner in server.token_history:
        counts[key] = counts.get(key, 0) + 1
    return counts
