"""WPaxos: multileader consensus with per-object ownership and stealing.

One :class:`WPaxosPeer` per server, implementing the broadcast-substrate
contract (:mod:`repro.substrate`) the ZK service layer programs against.
Where Zab elects one leader for the whole ensemble, WPaxos (arXiv
1703.08905) partitions the command space by *object* (here: znode path)
and lets every voter lead the objects it owns:

* **Flexible grid quorums.** Zones are the deployment's sites; each
  zone's voters form one column of the grid. A phase-1 (steal) quorum Q1
  needs a majority of the voters in *every* zone; a phase-2 (commit)
  quorum Q2 is a majority of the owner's *own* zone. Any Q1 intersects
  any Q2 inside the owner's zone, which is all Paxos needs — and it
  makes committing a locally-owned object a zone-local (intra-site)
  round trip, the WAN win the paper is after.
* **Object stealing via phase-1 ballot takeover.** A voter asked to
  write an object it does not own runs phase-1 for that object at a
  higher ballot ``(n, addr)``. Promisers piggyback their accepted and
  chosen entries so the thief recovers any in-flight commands before
  re-proposing them under its own ballot. The previous owner demotes
  the moment it promises a higher ballot.
* **Per-object commit order.** Commits are totally ordered *per object*
  (contiguous slots); there is no global order across objects. The
  delivered zxid is ``Zxid(ballot_n, slot)`` — monotonic within an
  object, not across the ensemble — so the invariant sentinel checks
  per-object order and cross-replica slot agreement instead of Zab's
  global zxid monotonicity.

Observers are pure learners: they receive Learns, follow the chosen
stream, and forward writes to a voter. Crash/restart keeps the durable
promise/accepted/chosen state; a rejoining peer re-applies its chosen
prefix from zero and anti-entropies the rest via ResyncReq.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.net.topology import NodeAddress
from repro.net.transport import Network
from repro.sim.kernel import Environment, Interrupt
from repro.zab.config import EnsembleConfig
from repro.zab.peer import PeerState, SUBMIT_DEDUP_LIMIT, submit_dedup_id
from repro.zab.zxid import Zxid
from repro.wpaxos.messages import (
    Accept,
    Accepted,
    Ballot,
    Learn,
    Prepare,
    Promise,
    Reject,
    ResyncReq,
    ResyncRsp,
    SubmitReq,
)

__all__ = ["WPaxosPeer", "META_OBJECT"]

#: Ordering domain for transactions that touch no single znode path
#: (session teardown and other marker ops).
META_OBJECT = "__sessions__"

ZERO_BALLOT: Ballot = (0, "")


class _Steal:
    """One in-flight phase-1 takeover for one object."""

    __slots__ = (
        "ballot", "started", "retry_at", "promised_by",
        "accepted", "chosen", "highest_seen",
    )

    def __init__(self, ballot: Ballot, now: float):
        self.ballot = ballot
        self.started = now
        self.retry_at: Optional[float] = None
        # zone -> {addr: None} (dict-as-ordered-set; never iterate a raw set)
        self.promised_by: Dict[str, Dict[NodeAddress, None]] = {}
        # slot -> (ballot, txn), highest-ballot accepted value per slot.
        self.accepted: Dict[int, Tuple[Ballot, Any]] = {}
        self.chosen: Dict[int, Tuple[Ballot, Any]] = {}
        self.highest_seen: Ballot = ballot


class _P2:
    """One in-flight phase-2 (slot being committed) for an owned object."""

    __slots__ = ("ballot", "txn", "acks", "sent")

    def __init__(self, ballot: Ballot, txn: Any, self_addr: NodeAddress,
                 now: float):
        self.ballot = ballot
        self.txn = txn
        self.acks: Dict[NodeAddress, None] = {self_addr: None}
        self.sent = now


class WPaxosPeer:
    """A single WPaxos voter or observer (learner)."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        addr: NodeAddress,
        config: EnsembleConfig,
        name: str = "",
    ):
        if not (config.is_voter(addr) or config.is_observer(addr)):
            raise ValueError(f"{addr} is not a member of the ensemble")
        self.env = env
        self.net = net
        self.addr = addr
        self.config = config
        self.name = name or str(addr)
        self.is_observer = config.is_observer(addr)

        # Grid shape: zones are sites, columns are each zone's voters, in
        # config order (deterministic; never derived from set iteration).
        self._zones: "OrderedDict[str, Tuple[NodeAddress, ...]]" = OrderedDict()
        by_zone: Dict[str, List[NodeAddress]] = {}
        for voter in config.voters:
            by_zone.setdefault(voter.site, []).append(voter)
        for zone, voters in by_zone.items():
            self._zones[zone] = tuple(voters)
        self._zone_quorum = {
            zone: len(voters) // 2 + 1
            for zone, voters in self._zones.items()
        }
        self._my_zone = addr.site if addr.site in self._zones else None
        self._voter_index = (
            config.voters.index(addr) if not self.is_observer else 0
        )

        self._handlers = {
            Prepare: self._on_prepare,
            Promise: self._on_promise,
            Reject: self._on_reject,
            Accept: self._on_accept,
            Accepted: self._on_accepted,
            Learn: self._on_learn,
            SubmitReq: self._on_submit_req,
            ResyncReq: self._on_resync_req,
            ResyncRsp: self._on_resync_rsp,
        }
        self.inbox = net.register(addr)
        self.inbox.consume(self._on_envelope)

        # Durable state (survives crash/restart).
        self._promised: Dict[str, Ballot] = {}
        # obj -> slot -> (ballot, txn): accepted but not known chosen.
        self._accepted: Dict[str, Dict[int, Tuple[Ballot, Any]]] = {}
        # obj -> slot -> (ballot, txn): the chosen (committed) log.
        self._chosen: Dict[str, Dict[int, Tuple[Ballot, Any]]] = {}
        self.current_epoch = 0

        # Volatile state.
        self.state = PeerState.DOWN
        self._applied: Dict[str, int] = {}  # obj -> contiguous chosen prefix
        self._owned: Dict[str, Ballot] = {}
        self._next_slot: Dict[str, int] = {}
        self._stealing: Dict[str, _Steal] = {}
        self._queued: Dict[str, List[Any]] = {}
        self._p2: Dict[Tuple[str, int], _P2] = {}
        self._gapped: Dict[str, None] = {}
        # submit dedup id -> (obj, slot) for at-most-one-slot per request.
        self._recent_submits: "OrderedDict[Tuple[Any, ...], Tuple[str, int]]" = (
            OrderedDict()
        )

        # Hooks (substrate contract).
        self.on_commit = None
        self.on_reset = None
        self.on_submit = None
        self.on_state_change = None
        self.on_leader_activated = None

        # Metrics.
        self.commits_delivered = 0
        self.steals_started = 0
        self.steals_won = 0
        self.steals_rejected = 0
        self.proposals_retransmitted = 0
        self.duplicate_submits_dropped = 0

        # Observability; None keeps every instrumentation point a no-op.
        self._trace = None
        self.sentinel = None

        self._alive = False
        self._procs: List[Any] = []

    # ------------------------------------------------------------------ API

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WPaxosPeer {self.addr} {self.state.value} "
            f"owns={len(self._owned)}>"
        )

    @property
    def is_leader(self) -> bool:
        """Multileader: every live voter proposes (for the objects it owns
        or can steal); the service layer submits locally everywhere."""
        return self._alive and not self.is_observer

    @property
    def leader_addr(self) -> Optional[NodeAddress]:
        if not self._alive:
            return None
        return self.addr if not self.is_observer else self._forward_target()

    @property
    def last_zxid(self) -> Zxid:
        return Zxid(self.current_epoch, self.commits_delivered)

    @property
    def is_alive(self) -> bool:
        return self._alive

    def start(self) -> None:
        if self._alive:
            raise RuntimeError(f"{self.name} already started")
        self._alive = True
        if self.current_epoch == 0:
            self.current_epoch = 1
        self._set_state(
            PeerState.OBSERVING if self.is_observer else PeerState.LEADING
        )
        self._procs = [
            self.env.process(self._ticker(), name=f"{self.name}.tick"),
        ]
        if self.on_leader_activated is not None and not self.is_observer:
            self.on_leader_activated(self)

    def crash(self) -> None:
        if not self._alive:
            return
        self._alive = False
        self._set_state(PeerState.DOWN)
        self.net.crash(self.addr)
        # Volatile: ownership, steals, in-flight phase-2, queues.
        self._owned = {}
        self._next_slot = {}
        self._stealing = {}
        self._queued = {}
        self._p2 = {}
        self._gapped = {}
        self._recent_submits = OrderedDict()
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("crash")
        self._procs = []

    def restart(self) -> None:
        """Rejoin after a crash: replay the durable chosen log from zero,
        then anti-entropy the committed suffix from the other members."""
        if self._alive:
            raise RuntimeError(f"{self.name} is running")
        self.net.restart(self.addr)
        self._alive = True
        self._applied = {}
        if self.on_reset is not None:
            # State machine resets to empty before the replay below
            # re-delivers every chosen txn (same contract as Zab).
            self.on_reset(self)
        if self.sentinel is not None:
            self.sentinel.on_object_reset(self)
        self._set_state(
            PeerState.OBSERVING if self.is_observer else PeerState.LEADING
        )
        for obj in sorted(self._chosen):
            self._apply_ready(obj)
        self._send_resync_request()
        self._procs = [
            self.env.process(self._ticker(), name=f"{self.name}.tick"),
        ]
        if self.on_leader_activated is not None and not self.is_observer:
            self.on_leader_activated(self)

    def submit(self, txn: Any) -> Zxid:
        """Proposer entry point: commit ``txn`` in its object's log.

        Owned object: phase-2 in the local zone. Otherwise: queue the txn
        and run (or keep running) a phase-1 steal for the object.
        """
        if not self.is_leader:
            raise RuntimeError(f"{self.name} is not an active proposer")
        obj = self._object_of(txn)
        dedup = submit_dedup_id(txn)
        if dedup is not None:
            seen = self._recent_submits.get(dedup)
            if seen is not None:
                self.duplicate_submits_dropped += 1
                prev_obj, prev_slot = seen
                entry = self._chosen.get(prev_obj, {}).get(prev_slot)
                if entry is not None:
                    # The first copy already committed; the retry means our
                    # Learn may have been lost — refan it.
                    self._fanout_learn(prev_obj, prev_slot, entry[0], entry[1])
                return Zxid(self.current_epoch, prev_slot)
        if obj in self._owned:
            slot = self._propose(obj, txn)
            if dedup is not None:
                self._note_submit(dedup, obj, slot)
            return Zxid(self._owned[obj][0], slot)
        self._queued.setdefault(obj, []).append(txn)
        if dedup is not None:
            self._note_submit(dedup, obj, -1)
        self._ensure_steal(obj)
        return Zxid.ZERO

    def forward_submit(self, txn: Any, ctx: Any = None) -> None:
        """Observer path: hand the transaction to a voter."""
        target = self._forward_target()
        if target is None:
            raise RuntimeError(f"{self.name} knows no voter to forward to")
        self._send(target, SubmitReq(self.addr, txn))

    # ------------------------------------------------------------- plumbing

    def _forward_target(self) -> Optional[NodeAddress]:
        local = self._zones.get(self.addr.site)
        if local:
            return local[0]
        return self.config.voters[0] if self.config.voters else None

    def _send(self, dst: NodeAddress, body: Any) -> None:
        if not self._alive:
            return
        self.net.send(self.addr, dst, body)

    def _set_state(self, state: PeerState) -> None:
        if state == self.state:
            return
        self.state = state
        if self._trace is not None:
            self._trace.emit(self.env.now, "wpaxos", "state", self.name,
                             {"state": state.value,
                              "epoch": self.current_epoch})
        if self.on_state_change is not None:
            self.on_state_change(self)

    def _on_envelope(self, envelope) -> None:
        if not self._alive:
            return
        handler = self._handlers.get(type(envelope.body))
        if handler is None:
            raise ValueError(
                f"{self.name}: unexpected message {envelope.body!r}"
            )
        handler(envelope.body)

    @staticmethod
    def _object_of(txn: Any) -> str:
        op = getattr(txn, "op", None)
        path = getattr(op, "path", None)
        if path is not None:
            return path
        subs = getattr(op, "ops", None)
        if subs:
            sub_path = getattr(subs[0], "path", None)
            if sub_path is not None:
                return sub_path
        return META_OBJECT

    def _note_submit(self, dedup: Tuple[Any, ...], obj: str, slot: int) -> None:
        self._recent_submits[dedup] = (obj, slot)
        while len(self._recent_submits) > SUBMIT_DEDUP_LIMIT:
            self._recent_submits.popitem(last=False)

    def _bump_epoch(self, n: int) -> None:
        if n > self.current_epoch:
            self.current_epoch = n

    # ------------------------------------------------------------ phase one

    def _ensure_steal(self, obj: str) -> None:
        if obj in self._stealing:
            return
        self._begin_steal(obj)

    def _begin_steal(self, obj: str, floor: Ballot = ZERO_BALLOT) -> None:
        highest = max(
            self._promised.get(obj, ZERO_BALLOT),
            self._owned.get(obj, ZERO_BALLOT),
            floor,
        )
        ballot: Ballot = (highest[0] + 1, str(self.addr))
        steal = _Steal(ballot, self.env.now)
        self._stealing[obj] = steal
        self.steals_started += 1
        self._bump_epoch(ballot[0])
        # Self-promise: our own durable promise + accepted/chosen entries.
        self._promised[obj] = ballot
        self._owned.pop(obj, None)
        self._record_promise(
            steal, obj, self.addr,
            self._accepted_triples(obj), (),
        )
        if self._trace is not None:
            self._trace.emit(self.env.now, "wpaxos", "steal-begin", self.name,
                             {"obj": obj, "ballot": list(ballot)})
        applied = self._applied.get(obj, 0)
        for voter in self.config.voters:
            if voter != self.addr:
                self._send(voter, Prepare(obj, ballot, self.addr, applied))
        self._maybe_adopt(obj)

    def _accepted_triples(
        self, obj: str
    ) -> Tuple[Tuple[int, Ballot, Any], ...]:
        accepted = self._accepted.get(obj)
        if not accepted:
            return ()
        return tuple(
            (slot, entry[0], entry[1])
            for slot, entry in sorted(accepted.items())
        )

    def _on_prepare(self, msg: Prepare) -> None:
        promised = self._promised.get(msg.obj, ZERO_BALLOT)
        if msg.ballot <= promised:
            self._send(
                msg.src, Reject(msg.obj, msg.ballot, self.addr, promised)
            )
            return
        self._promised[msg.obj] = msg.ballot
        self._bump_epoch(msg.ballot[0])
        # A lower-ballot steal of ours can no longer win: our own promise
        # outranks it. Note the stronger bid and rebid above it later.
        ours = self._stealing.get(msg.obj)
        if ours is not None and ours.ballot < msg.ballot:
            if msg.ballot > ours.highest_seen:
                ours.highest_seen = msg.ballot
            if ours.retry_at is None:
                stagger = self.config.heartbeat_interval_ms * (
                    1 + self._voter_index
                )
                ours.retry_at = self.env.now + stagger
        # Promising a higher ballot demotes us as owner of this object.
        if msg.obj in self._owned:
            self._owned.pop(msg.obj, None)
            if self._trace is not None:
                self._trace.emit(self.env.now, "wpaxos", "demote", self.name,
                                 {"obj": msg.obj, "to": str(msg.src)})
        chosen = self._chosen.get(msg.obj, {})
        chosen_above = tuple(
            (slot, entry[0], entry[1])
            for slot, entry in sorted(chosen.items())
            if slot >= msg.applied
        )
        self._send(
            msg.src,
            Promise(msg.obj, msg.ballot, self.addr,
                    self._accepted_triples(msg.obj), chosen_above),
        )

    def _record_promise(
        self,
        steal: _Steal,
        obj: str,
        src: NodeAddress,
        accepted: Tuple[Tuple[int, Ballot, Any], ...],
        chosen: Tuple[Tuple[int, Ballot, Any], ...],
    ) -> None:
        zone = src.site
        steal.promised_by.setdefault(zone, {})[src] = None
        for slot, ballot, txn in accepted:
            ballot = tuple(ballot)
            best = steal.accepted.get(slot)
            if best is None or ballot > best[0]:
                steal.accepted[slot] = (ballot, txn)
        for slot, ballot, txn in chosen:
            steal.chosen[slot] = (tuple(ballot), txn)

    def _on_promise(self, msg: Promise) -> None:
        steal = self._stealing.get(msg.obj)
        if steal is None or tuple(msg.ballot) != steal.ballot:
            return
        self._record_promise(
            steal, msg.obj, msg.src, msg.accepted, msg.chosen
        )
        self._maybe_adopt(msg.obj)

    def _on_reject(self, msg: Reject) -> None:
        steal = self._stealing.get(msg.obj)
        if steal is None or tuple(msg.ballot) != steal.ballot:
            return
        self.steals_rejected += 1
        promised = tuple(msg.promised)
        if promised > steal.highest_seen:
            steal.highest_seen = promised
        if steal.retry_at is None:
            # Deterministic per-voter stagger breaks dueling-stealer
            # lockstep without randomness.
            stagger = self.config.heartbeat_interval_ms * (
                1 + self._voter_index
            )
            steal.retry_at = self.env.now + stagger
        if self._trace is not None:
            self._trace.emit(self.env.now, "wpaxos", "steal-reject", self.name,
                             {"obj": msg.obj, "by": str(msg.src)})

    def _have_q1(self, steal: _Steal) -> bool:
        for zone, voters in self._zones.items():
            got = len(steal.promised_by.get(zone, {}))
            if got < self._zone_quorum[zone]:
                return False
        return True

    def _maybe_adopt(self, obj: str) -> None:
        steal = self._stealing.get(obj)
        if steal is None or not self._have_q1(steal):
            return
        if self._promised.get(obj, ZERO_BALLOT) > steal.ballot:
            # We promised a stronger bid after starting this steal;
            # adopting now would commit below our own promise. The ticker
            # rebids above ``highest_seen``.
            return
        del self._stealing[obj]
        ballot = steal.ballot
        self.steals_won += 1
        # Catch up on chosen entries promisers reported.
        chosen = self._chosen.setdefault(obj, {})
        for slot, entry in sorted(steal.chosen.items()):
            if slot not in chosen:
                chosen[slot] = entry
        self._owned[obj] = ballot
        if self.sentinel is not None:
            self.sentinel.on_object_owner(self, obj, ballot)
        if self._trace is not None:
            self._trace.emit(self.env.now, "wpaxos", "steal-adopt", self.name,
                             {"obj": obj, "ballot": list(ballot)})
        self._apply_ready(obj)
        # Re-propose possibly-chosen survivors above the chosen prefix,
        # highest-ballot value per slot (classic phase-1 recovery).
        floor = self._applied.get(obj, 0)
        if chosen:
            floor = max(floor, max(chosen) + 1)
        next_slot = floor
        for slot, (_, txn) in sorted(steal.accepted.items()):
            if slot < floor or slot in chosen:
                continue
            next_slot = max(next_slot, slot + 1)
            self._phase2(obj, ballot, slot, txn)
        self._next_slot[obj] = next_slot
        queued = self._queued.pop(obj, [])
        for txn in queued:
            slot = self._propose(obj, txn)
            dedup = submit_dedup_id(txn)
            if dedup is not None:
                self._note_submit(dedup, obj, slot)

    # ------------------------------------------------------------ phase two

    def _propose(self, obj: str, txn: Any) -> int:
        ballot = self._owned[obj]
        slot = self._next_slot.get(obj, self._applied.get(obj, 0))
        self._next_slot[obj] = slot + 1
        self._phase2(obj, ballot, slot, txn)
        return slot

    def _phase2(self, obj: str, ballot: Ballot, slot: int, txn: Any) -> None:
        if self._promised.get(obj, ZERO_BALLOT) > ballot:
            return  # demoted mid-flight; the thief's recovery takes over
        self._accepted.setdefault(obj, {})[slot] = (ballot, txn)
        state = _P2(ballot, txn, self.addr, self.env.now)
        self._p2[(obj, slot)] = state
        zone_voters = self._zones.get(self.addr.site, ())
        if self._trace is not None:
            self._trace.emit(self.env.now, "wpaxos", "accept", self.name,
                             {"obj": obj, "slot": slot,
                              "ballot": list(ballot)})
        for voter in zone_voters:
            if voter != self.addr:
                self._send(voter, Accept(obj, ballot, slot, txn, self.addr))
        self._maybe_choose(obj, slot)

    def _on_accept(self, msg: Accept) -> None:
        ballot = tuple(msg.ballot)
        promised = self._promised.get(msg.obj, ZERO_BALLOT)
        if ballot < promised:
            return  # stale owner; its Q2 can no longer form here
        self._promised[msg.obj] = ballot
        self._bump_epoch(ballot[0])
        self._accepted.setdefault(msg.obj, {})[msg.slot] = (ballot, msg.txn)
        self._send(msg.src, Accepted(msg.obj, ballot, msg.slot, self.addr))

    def _on_accepted(self, msg: Accepted) -> None:
        state = self._p2.get((msg.obj, msg.slot))
        if state is None or tuple(msg.ballot) != state.ballot:
            return
        state.acks[msg.src] = None
        self._maybe_choose(msg.obj, msg.slot)

    def _maybe_choose(self, obj: str, slot: int) -> None:
        state = self._p2.get((obj, slot))
        if state is None:
            return
        quorum = self._zone_quorum.get(self.addr.site, 1)
        if len(state.acks) < quorum:
            return
        del self._p2[(obj, slot)]
        self._choose(obj, slot, state.ballot, state.txn)
        self._fanout_learn(obj, slot, state.ballot, state.txn)

    def _choose(self, obj: str, slot: int, ballot: Ballot, txn: Any) -> None:
        chosen = self._chosen.setdefault(obj, {})
        if slot in chosen:
            return
        chosen[slot] = (ballot, txn)
        self._accepted.get(obj, {}).pop(slot, None)
        if self._trace is not None:
            self._trace.emit(self.env.now, "wpaxos", "chosen", self.name,
                             {"obj": obj, "slot": slot,
                              "ballot": list(ballot)})
        self._apply_ready(obj)

    def _fanout_learn(self, obj: str, slot: int, ballot: Ballot,
                      txn: Any) -> None:
        for member in self.config.members:
            if member != self.addr:
                self._send(member, Learn(obj, ballot, slot, txn, self.addr))

    def _on_learn(self, msg: Learn) -> None:
        obj = msg.obj
        chosen = self._chosen.setdefault(obj, {})
        if msg.slot not in chosen:
            self._choose(obj, msg.slot, tuple(msg.ballot), msg.txn)
        if msg.slot > self._applied.get(obj, 0):
            # A hole below this slot: ask the ensemble to fill it.
            self._gapped[obj] = None
            if self._trace is not None:
                self._trace.emit(self.env.now, "wpaxos", "learn-gap",
                                 self.name,
                                 {"obj": obj, "slot": msg.slot,
                                  "applied": self._applied.get(obj, 0)})

    def _apply_ready(self, obj: str) -> None:
        """Deliver the contiguous chosen prefix of one object."""
        chosen = self._chosen.get(obj)
        if not chosen:
            return
        next_slot = self._applied.get(obj, 0)
        while next_slot in chosen:
            ballot, txn = chosen[next_slot]
            if self.sentinel is not None:
                self.sentinel.on_object_commit(self, obj, next_slot,
                                               ballot, txn)
            if self.on_commit is not None:
                self.on_commit(Zxid(ballot[0], next_slot), txn)
            self.commits_delivered += 1
            next_slot += 1
        self._applied[obj] = next_slot
        self._gapped.pop(obj, None)

    # ------------------------------------------------------- forward/resync

    def _on_submit_req(self, msg: SubmitReq) -> None:
        if self.is_observer:
            self.forward_submit(msg.txn)
            return
        if self.on_submit is not None:
            self.on_submit(msg.txn)
        else:
            self.submit(msg.txn)

    def _send_resync_request(self) -> None:
        versions = tuple(
            (obj, self._applied.get(obj, 0)) for obj in sorted(self._chosen)
        )
        req = ResyncReq(self.addr, versions)
        for voter in self.config.voters:
            if voter != self.addr:
                self._send(voter, req)

    def _on_resync_req(self, msg: ResyncReq) -> None:
        have = dict(msg.versions)
        entries: List[Tuple[str, int, Ballot, Any]] = []
        for obj in sorted(self._chosen):
            floor = have.get(obj, 0)
            for slot, (ballot, txn) in sorted(self._chosen[obj].items()):
                if slot >= floor:
                    entries.append((obj, slot, ballot, txn))
        if entries:
            self._send(msg.src, ResyncRsp(self.addr, tuple(entries)))

    def _on_resync_rsp(self, msg: ResyncRsp) -> None:
        touched: Dict[str, None] = {}
        for obj, slot, ballot, txn in msg.entries:
            chosen = self._chosen.setdefault(obj, {})
            if slot not in chosen:
                chosen[slot] = (tuple(ballot), txn)
                touched[obj] = None
        for obj in touched:
            if self._trace is not None:
                self._trace.emit(self.env.now, "wpaxos", "resync", self.name,
                                 {"obj": obj})
            self._apply_ready(obj)

    # ----------------------------------------------------------------- timers

    def _ticker(self):
        interval = self.config.heartbeat_interval_ms
        stall = self.config.election_timeout_ms
        while self._alive:
            try:
                yield self.env.sleep(interval)
            except Interrupt:
                return
            if not self._alive:
                return
            now = self.env.now
            # Stalled or rejected steals: rebid above the highest ballot
            # seen, after the per-voter stagger.
            for obj in sorted(self._stealing):
                steal = self._stealing[obj]
                due = (
                    steal.retry_at is not None and now >= steal.retry_at
                ) or (now - steal.started > stall)
                if due:
                    del self._stealing[obj]
                    self._begin_steal(obj, floor=steal.highest_seen)
            # Queued objects with no steal in flight (demoted mid-queue).
            for obj in sorted(self._queued):
                if self._queued[obj] and obj not in self._owned:
                    self._ensure_steal(obj)
            # Unchosen phase-2 entries: retransmit the Accept round.
            for key in sorted(self._p2):
                state = self._p2[key]
                if now - state.sent < stall:
                    continue
                obj, slot = key
                if tuple(self._owned.get(obj, ZERO_BALLOT)) != state.ballot:
                    # Demoted: the thief's recovery re-proposes this slot.
                    del self._p2[key]
                    continue
                state.sent = now
                self.proposals_retransmitted += 1
                for voter in self._zones.get(self.addr.site, ()):
                    if voter != self.addr and voter not in state.acks:
                        self._send(voter, Accept(obj, state.ballot, slot,
                                                 state.txn, self.addr))
            # Gap repair.
            if self._gapped:
                self._gapped = {}
                self._send_resync_request()
