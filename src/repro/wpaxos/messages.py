"""WPaxos wire messages.

Ballots are ``(n, owner)`` pairs with ``owner`` the proposing voter's
address rendered as a string, so ballots from different voters never tie
and compare deterministically. Slots are per-object log positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.net.topology import NodeAddress

__all__ = [
    "Ballot",
    "Prepare",
    "Promise",
    "Reject",
    "Accept",
    "Accepted",
    "Learn",
    "SubmitReq",
    "ResyncReq",
    "ResyncRsp",
]

#: ``(n, owner_str)`` — lexicographic order; owner_str breaks ties.
Ballot = Tuple[int, str]


@dataclass(frozen=True)
class Prepare:
    """Phase-1a: ``src`` tries to take ownership of ``obj`` at ``ballot``.

    ``applied`` is the stealer's contiguous chosen prefix for ``obj`` so
    promisers can piggyback any chosen entries the stealer is missing.
    """

    obj: str
    ballot: Ballot
    src: NodeAddress
    applied: int


@dataclass(frozen=True)
class Promise:
    """Phase-1b grant: promiser will reject ballots below ``ballot``.

    ``accepted`` carries the promiser's accepted-but-unchosen entries for
    ``obj`` as ``(slot, ballot, txn)`` triples; ``chosen`` carries chosen
    entries at or above the stealer's ``applied`` mark.
    """

    obj: str
    ballot: Ballot
    src: NodeAddress
    accepted: Tuple[Tuple[int, Ballot, Any], ...]
    chosen: Tuple[Tuple[int, Ballot, Any], ...]


@dataclass(frozen=True)
class Reject:
    """Phase-1b refusal: ``promised`` is the ballot that outranks the bid."""

    obj: str
    ballot: Ballot
    src: NodeAddress
    promised: Ballot


@dataclass(frozen=True)
class Accept:
    """Phase-2a from the object owner to its zone quorum."""

    obj: str
    ballot: Ballot
    slot: int
    txn: Any
    src: NodeAddress


@dataclass(frozen=True)
class Accepted:
    """Phase-2b ack."""

    obj: str
    ballot: Ballot
    slot: int
    src: NodeAddress


@dataclass(frozen=True)
class Learn:
    """Commit notification fanned out to every member (learners included)."""

    obj: str
    ballot: Ballot
    slot: int
    txn: Any
    src: NodeAddress


@dataclass(frozen=True)
class SubmitReq:
    """A transaction forwarded by an observer (or any non-proposer)."""

    src: NodeAddress
    txn: Any


@dataclass(frozen=True)
class ResyncReq:
    """Catch-up request: ``versions`` maps objects to the requester's
    contiguous chosen prefix, as a sorted ``(obj, next_slot)`` tuple.
    Objects the requester has never heard of are implicitly at 0."""

    src: NodeAddress
    versions: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class ResyncRsp:
    """Catch-up reply: chosen entries the requester was missing."""

    src: NodeAddress
    entries: Tuple[Tuple[str, int, Ballot, Any], ...]
