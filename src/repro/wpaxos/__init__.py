"""WPaxos: multileader consensus with per-object ownership and stealing.

The first alternate broadcast substrate (see :mod:`repro.substrate`):
WAN writes to an owned object commit in a zone-local quorum; ownership
moves via phase-1 ballot takeover ("object stealing") instead of
WanKeeper's token grant/recall. Based on arXiv 1703.08905.
"""

from repro.wpaxos.peer import META_OBJECT, WPaxosPeer

__all__ = ["WPaxosPeer", "META_OBJECT"]
