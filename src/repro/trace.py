"""Structured event trace: a bounded ring buffer of simulation events.

Every layer of the stack (kernel, network, Zab, ZooKeeper servers,
WanKeeper brokers, the nemesis) carries an optional ``_trace`` reference.
When it is ``None`` — the default, and the only state the benchmarks ever
see — each instrumentation point costs exactly one attribute load and one
branch. When a :class:`TraceBuffer` is installed, events are appended to a
``deque(maxlen=capacity)``: O(1), no allocation beyond the event tuple, and
memory bounded regardless of run length.

Events are plain tuples ``(seq, t, cat, kind, node, detail)``:

* ``seq``    — monotonically increasing sequence number (global per buffer);
* ``t``      — simulated time in ms;
* ``cat``    — layer: ``kernel`` | ``net`` | ``zab`` | ``wpaxos`` |
  ``zk`` | ``wan`` | ``nemesis``;
* ``kind``   — event name within the layer (``apply``, ``token-grant``, …);
* ``node``   — the emitting component's name;
* ``detail`` — a small dict of event-specific fields (JSON-safe scalars,
  or values coerced with ``repr`` on export).

The JSONL export (``python -m repro trace``) writes one event per line so
two runs can be compared with :func:`first_divergence` (``python -m repro
diff-traces``): the first differing event is where two seeded histories
fork — turning "the digest changed" into "here is the divergent event."
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TraceBuffer",
    "TraceEvent",
    "first_divergence",
    "install_trace",
    "load_jsonl",
    "render_event",
]

TraceEvent = Tuple[int, float, str, str, str, Optional[Dict[str, Any]]]

#: Default ring capacity: large enough to hold the full causal neighborhood
#: of a failure, small enough to be irrelevant for memory.
DEFAULT_CAPACITY = 4096


class TraceBuffer:
    """Bounded ring buffer of structured simulation events."""

    __slots__ = ("capacity", "_events", "_seq")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._seq = 0

    def emit(
        self,
        t: float,
        cat: str,
        kind: str,
        node: str,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one event. Callers guard with ``if trace is not None``."""
        self._seq += 1
        self._events.append((self._seq, t, cat, kind, node, detail))

    def __len__(self) -> int:
        return len(self._events)

    @property
    def total_emitted(self) -> int:
        """Events emitted over the buffer's lifetime (>= len once wrapped)."""
        return self._seq

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def tail(self, count: int) -> List[TraceEvent]:
        """The most recent ``count`` events, oldest first."""
        if count <= 0:
            return []
        events = self._events
        if count >= len(events):
            return list(events)
        return list(events)[-count:]

    def clear(self) -> None:
        self._events.clear()

    # -- export -------------------------------------------------------------

    def to_jsonl(self) -> str:
        """All buffered events, one JSON object per line."""
        return "\n".join(_event_to_json(event) for event in self._events)

    def dump(self, path: str) -> int:
        """Write the buffer as JSONL to ``path``; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(_event_to_json(event))
                handle.write("\n")
        return len(self._events)

    def format_tail(self, count: int) -> str:
        """Human-readable rendering of the last ``count`` events."""
        lines = [render_event(event) for event in self.tail(count)]
        return "\n".join(lines)


def render_event(event: TraceEvent) -> str:
    seq, t, cat, kind, node, detail = event
    rendered = ""
    if detail:
        rendered = " " + " ".join(
            f"{key}={value!r}" for key, value in sorted(detail.items())
        )
    return f"  #{seq} t={t:.3f} [{cat}/{kind}] {node}{rendered}"


def _event_to_json(event: TraceEvent) -> str:
    seq, t, cat, kind, node, detail = event
    record = {"seq": seq, "t": t, "cat": cat, "kind": kind, "node": node}
    if detail:
        record["detail"] = detail
    # default=repr: NodeAddress, Zxid, bytes etc. serialize as their repr —
    # deterministic, and good enough for divergence comparison.
    return json.dumps(record, sort_keys=True, default=repr)


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a trace dumped by :meth:`TraceBuffer.dump`."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def first_divergence(
    a: Iterable[Dict[str, Any]], b: Iterable[Dict[str, Any]]
) -> Optional[Tuple[int, Optional[Dict[str, Any]], Optional[Dict[str, Any]]]]:
    """The first position where two traces differ.

    Returns ``(index, event_a, event_b)`` — either event is ``None`` when
    one trace is a strict prefix of the other — or ``None`` when the traces
    are identical. The ``seq`` field is ignored so a wrapped ring buffer
    (whose absolute numbering shifted) still compares by content.
    """
    list_a, list_b = list(a), list(b)
    for index in range(max(len(list_a), len(list_b))):
        event_a = list_a[index] if index < len(list_a) else None
        event_b = list_b[index] if index < len(list_b) else None
        if _strip_seq(event_a) != _strip_seq(event_b):
            return index, event_a, event_b
    return None


def _strip_seq(event: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    if event is None:
        return None
    return {key: value for key, value in event.items() if key != "seq"}


def install_trace(deployment, trace: Optional[TraceBuffer] = None) -> TraceBuffer:
    """Wire a trace buffer into every component of a deployment.

    Works for both :class:`~repro.zk.deployment.ZkDeployment` and
    :class:`~repro.wankeeper.deployment.WanKeeperDeployment` (anything with
    ``env``, ``net`` and ``servers``). Returns the installed buffer.
    """
    if trace is None:
        trace = TraceBuffer()
    deployment.env.trace = trace
    deployment.net.trace = trace
    for server in deployment.servers:
        server._trace = trace
        server.peer._trace = trace
    return trace
