"""On-disk content-addressed result cache for scenario payloads.

Entries are keyed by ``sha256(code_digest || scenario_digest)``: the
scenario digest covers the cell function name and every parameter, and
the code digest covers the content of every ``.py`` file in the
installed ``repro`` package — edit any source file and every cached cell
misses; untouched source keeps every hit. Payloads must be JSON-plain
(the scenario contract), so entries round-trip exactly: Python floats
survive ``json.dumps``/``loads`` bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

__all__ = [
    "CACHE_DIR_ENV",
    "ResultCache",
    "code_digest",
    "default_cache_dir",
]

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
_SCHEMA = "repro-cache/v1"

# Computed once per process; the package source does not change mid-run.
_code_digest_memo: Dict[str, str] = {}


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the cwd."""
    return os.environ.get(CACHE_DIR_ENV) or os.path.join(
        os.getcwd(), ".repro-cache"
    )


def code_digest() -> str:
    """SHA-256 over every ``.py`` file of the ``repro`` package.

    Files are hashed in sorted relative-path order (path and content
    both feed the digest), so renames, edits, additions, and deletions
    all change it, independent of filesystem iteration order.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    memo = _code_digest_memo.get(root)
    if memo is not None:
        return memo
    hasher = hashlib.sha256()
    sources = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in filenames:
            if filename.endswith(".py"):
                full = os.path.join(dirpath, filename)
                sources.append((os.path.relpath(full, root), full))
    for relative, full in sorted(sources):
        hasher.update(relative.replace(os.sep, "/").encode("utf-8"))
        hasher.update(b"\0")
        with open(full, "rb") as handle:
            hasher.update(handle.read())
        hasher.update(b"\0")
    digest = hasher.hexdigest()
    _code_digest_memo[root] = digest
    return digest


class ResultCache:
    """Content-addressed scenario-result store with hit/miss accounting."""

    def __init__(self, root: Optional[str] = None, code: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.code = code if code is not None else code_digest()
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------------

    def key(self, scenario) -> str:
        combined = f"{self.code}:{scenario.digest()}"
        return hashlib.sha256(combined.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- get/put --------------------------------------------------------------

    def get(self, scenario) -> Optional[Dict[str, Any]]:
        """The cached entry for ``scenario`` or None (counts hit/miss).

        Returns the full entry dict (``payload``, ``elapsed_s``, ...).
        A corrupt or schema-mismatched file is treated as a miss and
        removed.
        """
        path = self._path(self.key(scenario))
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("schema") != _SCHEMA:
                raise ValueError("schema mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError):
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, scenario, payload: Any, elapsed_s: float) -> str:
        """Store ``payload`` for ``scenario``; returns the entry path."""
        key = self.key(scenario)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema": _SCHEMA,
            "scenario": scenario.spec(),
            "code": self.code,
            "elapsed_s": elapsed_s,
            "payload": payload,
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)  # atomic: concurrent writers race benignly
        return path

    # -- maintenance ----------------------------------------------------------

    def _entries(self):
        if not os.path.isdir(self.root):
            return
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(".json"):
                    yield os.path.join(dirpath, filename)

    def stats(self) -> Dict[str, Any]:
        """Entry count, total bytes, and how many match the live code."""
        entries = 0
        total_bytes = 0
        current = 0
        for path in self._entries():
            entries += 1
            try:
                total_bytes += os.path.getsize(path)
                with open(path, encoding="utf-8") as handle:
                    if json.load(handle).get("code") == self.code:
                        current += 1
            except (ValueError, OSError):
                continue
        return {
            "root": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "current_code_entries": current,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        # Prune now-empty shard directories (best effort).
        if os.path.isdir(self.root):
            for name in os.listdir(self.root):
                shard = os.path.join(self.root, name)
                if os.path.isdir(shard) and not os.listdir(shard):
                    try:
                        os.rmdir(shard)
                    except OSError:
                        pass
        return removed
