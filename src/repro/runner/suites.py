"""Experiment suites: scenario builders + deterministic renderers.

Each suite converts one CLI experiment (``fig4`` ... ``ablations``,
``soak``) into its list of independent :class:`Scenario` cells and a
renderer that formats the collected payloads into the same plain-text
tables the serial CLI has always printed. Renderers iterate the
*builder's* grid order — never execution or completion order — so the
output of ``--jobs N`` is byte-identical for every N.

Builders and renderers both take ``(small, seed)`` and derive the grid
from the same size tables, so a cell's spec and its slot in the output
can never drift apart.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.experiments.common import format_table
from repro.runner.scenario import Scenario

__all__ = [
    "OPT_IN_SUITE_NAMES",
    "SUITES",
    "build_suite",
    "render_suite",
    "suite_names",
]

Results = Dict[str, Any]  # scenario digest -> payload


def _get(results: Results, scenario: Scenario) -> Any:
    return results[scenario.digest()]


# -- fig4 ---------------------------------------------------------------------

_FIG4_SYSTEMS = ("zk", "zk_observer", "wk")
_FIG4_FRACTIONS = (0.0, 0.05, 0.25, 0.5)


def _fig4_grid(small: bool, seed: int) -> List[Tuple[str, float, Scenario]]:
    ops = 2000 if small else 10000
    records = 300 if small else 1000
    grid = []
    for system in _FIG4_SYSTEMS:
        for fraction in _FIG4_FRACTIONS:
            grid.append(
                (
                    system,
                    fraction,
                    Scenario.make(
                        "ycsb_write_ratio",
                        dict(
                            system=system,
                            write_fraction=fraction,
                            seed=seed,
                            record_count=records,
                            operation_count=ops,
                        ),
                        suite="fig4",
                        label=f"{system}@{fraction:.0%}",
                    ),
                )
            )
    return grid


def _fig4_build(small: bool, seed: int) -> List[Scenario]:
    return [scenario for _, _, scenario in _fig4_grid(small, seed)]


def _fig4_render(small: bool, seed: int, results: Results) -> str:
    grid = _fig4_grid(small, seed)
    cells = {(system, fraction): _get(results, s) for system, fraction, s in grid}
    rows = []
    for fraction in _FIG4_FRACTIONS:
        rows.append(
            [f"{fraction:.0%}"]
            + [cells[(system, fraction)]["throughput"] for system in _FIG4_SYSTEMS]
        )
    latency_rows = []
    for fraction in _FIG4_FRACTIONS:
        for system in _FIG4_SYSTEMS:
            cell = cells[(system, fraction)]
            latency_rows.append(
                [f"{fraction:.0%}", system, cell["read_mean_ms"] or 0.0,
                 cell["write_mean_ms"] or 0.0]
            )
    return (
        format_table(["write%"] + list(_FIG4_SYSTEMS), rows,
                     title="Fig 4a: throughput (ops/sec)")
        + "\n\n"
        + format_table(
            ["write%", "system", "read ms", "write ms"],
            latency_rows,
            title="Fig 4b: mean latency",
        )
    )


# -- fig5 ---------------------------------------------------------------------

_FIG5_SYSTEMS = ("zk", "zk_observer", "wk")
_FIG5_FRACTIONS = (0.5, 1.0)


def _fig5_grid(small: bool, seed: int) -> List[Tuple[str, float, Scenario]]:
    records = 200 if small else 600
    ops = 1500 if small else 5000
    grid = []
    for system in _FIG5_SYSTEMS:
        for fraction in _FIG5_FRACTIONS:
            grid.append(
                (
                    system,
                    fraction,
                    Scenario.make(
                        "ycsb_write_ratio",
                        dict(
                            system=system,
                            write_fraction=fraction,
                            seed=seed,
                            record_count=records,
                            operation_count=ops,
                        ),
                        suite="fig5",
                        label=f"{system}@{fraction:.0%}",
                    ),
                )
            )
    return grid


def _fig5_build(small: bool, seed: int) -> List[Scenario]:
    return [scenario for _, _, scenario in _fig5_grid(small, seed)]


def _fig5_render(small: bool, seed: int, results: Results) -> str:
    grid = _fig5_grid(small, seed)
    rows = [
        [
            system,
            f"{fraction:.0%}",
            payload["local_write_fraction"],
            payload["write_p50_ms"],
            payload["write_p90_ms"],
        ]
        for (system, fraction), payload in sorted(
            ((sys_frac, _get(results, s)) for *sys_frac, s in grid),
            key=lambda item: item[0],
        )
    ]
    return format_table(
        ["system", "write%", "local frac", "p50 ms", "p90 ms"],
        rows,
        title="Fig 5: write-latency CDF summary",
    )


# -- fig6 ---------------------------------------------------------------------

_FIG6_SETUPS = ("zk", "zk_observer", "wk", "wk_hot")


def _fig6_grid(small: bool, seed: int) -> List[Tuple[str, Scenario]]:
    records = 300 if small else 1000
    ops = 1200 if small else 4000
    return [
        (
            setup,
            Scenario.make(
                "fig6",
                dict(
                    setup=setup,
                    seed=seed,
                    record_count=records,
                    operations_per_client=ops,
                    write_fraction=0.5,
                ),
                suite="fig6",
                label=setup,
            ),
        )
        for setup in _FIG6_SETUPS
    ]


def _fig6_build(small: bool, seed: int) -> List[Scenario]:
    return [scenario for _, scenario in _fig6_grid(small, seed)]


def _fig6_render(small: bool, seed: int, results: Results) -> str:
    rows = []
    for setup, scenario in _fig6_grid(small, seed):
        payload = _get(results, scenario)
        rows.append(
            [
                setup,
                payload["total_throughput"],
                payload["per_site_throughput"]["california"],
                payload["per_site_throughput"]["frankfurt"],
                payload["write_mean_ms"],
            ]
        )
    return format_table(
        ["setup", "total ops/s", "CA", "FR", "write ms"],
        rows,
        title="Fig 6: two-site throughput, disjoint access",
    )


# -- fig7 ---------------------------------------------------------------------

_FIG7_SYSTEMS = ("zk", "zk_observer", "wk")
_FIG7_OVERLAPS = (0.0, 0.5, 1.0)


def _fig7_grid(small: bool, seed: int) -> List[Tuple[str, float, Scenario]]:
    records = 200 if small else 400
    ops = 800 if small else 2500
    return [
        (
            system,
            overlap,
            Scenario.make(
                "fig7",
                dict(
                    system=system,
                    overlap=overlap,
                    seed=seed,
                    record_count=records,
                    operations_per_client=ops,
                ),
                suite="fig7",
                label=f"{system}@{overlap:.0%}",
            ),
        )
        for system in _FIG7_SYSTEMS
        for overlap in _FIG7_OVERLAPS
    ]


def _fig7_build(small: bool, seed: int) -> List[Scenario]:
    return [scenario for _, _, scenario in _fig7_grid(small, seed)]


def _fig7_render(small: bool, seed: int, results: Results) -> str:
    grid = _fig7_grid(small, seed)
    cells = {(system, overlap): _get(results, s) for system, overlap, s in grid}
    rows = [
        [f"{overlap:.0%}"]
        + [cells[(system, overlap)]["total_throughput"] for system in _FIG7_SYSTEMS]
        for overlap in _FIG7_OVERLAPS
    ]
    return format_table(
        ["overlap"] + list(_FIG7_SYSTEMS), rows, title="Fig 7: contention sweep"
    )


# -- fig8 ---------------------------------------------------------------------

_FIG8_SYSTEMS = ("zk", "zk_observer", "wk")
_FIG8_DURATIONS = (200.0, 400.0, 1600.0)


def _fig8_grid(small: bool, seed: int) -> List[Tuple[str, float, Scenario]]:
    total = 10000.0 if small else 25000.0
    return [
        (
            system,
            duration,
            Scenario.make(
                "fig8",
                dict(
                    system=system,
                    write_duration_ms=duration,
                    seed=seed,
                    total_duration_ms=total,
                ),
                suite="fig8",
                label=f"{system}@{duration:.0f}ms",
            ),
        )
        for system in _FIG8_SYSTEMS
        for duration in _FIG8_DURATIONS
    ]


def _fig8_build(small: bool, seed: int) -> List[Scenario]:
    return [scenario for _, _, scenario in _fig8_grid(small, seed)]


def _fig8_render(small: bool, seed: int, results: Results) -> str:
    grid = _fig8_grid(small, seed)
    cells = {(system, duration): _get(results, s) for system, duration, s in grid}
    rows = [
        [f"{duration/1000:.1f}s"]
        + [cells[(system, duration)]["entries_per_sec"] for system in _FIG8_SYSTEMS]
        for duration in _FIG8_DURATIONS
    ]
    return format_table(
        ["duration"] + list(_FIG8_SYSTEMS), rows,
        title="Fig 8b: BookKeeper entries/sec",
    )


# -- fig10 --------------------------------------------------------------------

_FIG10_SYSTEMS = ("zk_observer", "wk")
_FIG10_OVERLAPS = (0.1, 0.5, 0.8)


def _fig10_grid(
    small: bool, seed: int
) -> List[Tuple[str, float, bool, Scenario]]:
    records = 200 if small else 400
    ops = 800 if small else 2500
    grid = []
    for hotspot in (False, True):
        for system in _FIG10_SYSTEMS:
            for overlap in _FIG10_OVERLAPS:
                grid.append(
                    (
                        system,
                        overlap,
                        hotspot,
                        Scenario.make(
                            "fig10",
                            dict(
                                system=system,
                                overlap=overlap,
                                hotspot=hotspot,
                                seed=seed,
                                record_count=records,
                                operations_per_client=ops,
                            ),
                            suite="fig10",
                            label=f"{system}@{overlap:.0%}"
                            + ("+hotspot" if hotspot else ""),
                        ),
                    )
                )
    return grid


def _fig10_build(small: bool, seed: int) -> List[Scenario]:
    return [scenario for _, _, _, scenario in _fig10_grid(small, seed)]


def _fig10_render(small: bool, seed: int, results: Results) -> str:
    grid = _fig10_grid(small, seed)
    cells = {
        (system, overlap, hotspot): _get(results, s)
        for system, overlap, hotspot, s in grid
    }
    parts = []
    for title, hotspot in (
        ("Fig 10a: SCFS, no hotspot", False),
        ("Fig 10b: SCFS, 20% hotspot per site", True),
    ):
        rows = []
        for overlap in _FIG10_OVERLAPS:
            for system in _FIG10_SYSTEMS:
                cell = cells[(system, overlap, hotspot)]
                rows.append(
                    [f"{overlap:.0%}", system, cell["total_throughput"]]
                )
        parts.append(
            format_table(["overlap", "system", "ops/s"], rows, title=title)
        )
    return "\n\n".join(parts)


# -- ablations ----------------------------------------------------------------

_A1_R_VALUES = (1, 2, 4, 8, None)
_A2_POLICIES = ("consecutive(r=2)", "markov(r=2,t=0.6)")
_A3_POLICIES = ("bulk-migrating", "pinned-at-hub")
_A4_MODES = ("local", "forward", "fractional")
_A5_SITES = ("virginia", "california", "frankfurt")


def _ablations_grid(small: bool, seed: int) -> Dict[str, List[Scenario]]:
    grid: Dict[str, List[Scenario]] = {}
    grid["a1"] = [
        Scenario.make(
            "ablation_threshold",
            dict(
                r=r,
                seed=seed,
                record_count=150 if small else 300,
                operations_per_client=600 if small else 1500,
                overlap=0.3,
            ),
            suite="ablations",
            label=f"A1 r={r}",
        )
        for r in _A1_R_VALUES
    ]
    grid["a2"] = [
        Scenario.make(
            "ablation_prediction",
            dict(policy=policy, seed=seed),
            suite="ablations",
            label=f"A2 {policy}",
        )
        for policy in _A2_POLICIES
    ]
    grid["a3"] = [
        Scenario.make(
            "ablation_bulk_tokens",
            dict(policy=policy, seed=seed, rounds=15 if small else 25),
            suite="ablations",
            label=f"A3 {policy}",
        )
        for policy in _A3_POLICIES
    ]
    grid["a4"] = [
        Scenario.make(
            "ablation_read_mode",
            dict(
                mode=mode,
                seed=seed,
                operations_per_client=500 if small else 1500,
            ),
            suite="ablations",
            label=f"A4 {mode}",
        )
        for mode in _A4_MODES
    ]
    grid["a5"] = [
        Scenario.make(
            "ablation_hub_placement",
            dict(
                l2_site=site,
                seed=seed,
                record_count=100 if small else 200,
                operations_per_client=400 if small else 1000,
            ),
            suite="ablations",
            label=f"A5 hub={site}",
        )
        for site in _A5_SITES
    ]
    return grid


def _ablations_build(small: bool, seed: int) -> List[Scenario]:
    grid = _ablations_grid(small, seed)
    return [s for part in ("a1", "a2", "a3", "a4", "a5") for s in grid[part]]


def _ablations_render(small: bool, seed: int, results: Results) -> str:
    grid = _ablations_grid(small, seed)
    parts = []
    parts.append(
        format_table(
            ["policy", "ops/s", "write ms", "recalls"],
            [
                [
                    payload["label"],
                    payload["total_throughput"],
                    payload["write_mean_ms"],
                    payload["tokens_recalled"],
                ]
                for payload in (_get(results, s) for s in grid["a1"])
            ],
            title="A1: migration threshold r",
        )
    )
    parts.append(
        format_table(
            ["policy", "ops/s", "write ms"],
            [
                [
                    payload["policy"],
                    payload["total_throughput"],
                    payload["write_mean_ms"],
                ]
                for payload in (_get(results, s) for s in grid["a2"])
            ],
            title="A2: Markov prediction",
        )
    )
    parts.append(
        format_table(
            ["policy", "acquisitions/s"],
            [
                [payload["label"], payload["acquisitions_per_sec"]]
                for payload in (_get(results, s) for s in grid["a3"])
            ],
            title="A3: bulk sequential-znode tokens",
        )
    )
    parts.append(
        format_table(
            ["read mode", "read ms", "ops/s"],
            [
                [
                    payload["mode"],
                    payload["read_mean_ms"],
                    payload["total_throughput"],
                ]
                for payload in (_get(results, s) for s in grid["a4"])
            ],
            title="A4: fractional read/write tokens",
        )
    )
    parts.append(
        format_table(
            ["l2 site", "ops/s", "write ms"],
            [
                [
                    payload["l2_site"],
                    payload["total_throughput"],
                    payload["write_mean_ms"],
                ]
                for payload in (_get(results, s) for s in grid["a5"])
            ],
            title="A5: hub placement (CA-heavy workload)",
        )
    )
    return "\n\n".join(parts)


# -- fig_wpaxos (substrate comparison) ----------------------------------------

# WanKeeper's hierarchical token design vs the WPaxos design point: a flat
# multi-site ensemble on the multileader substrate, where per-object
# ownership plays the role of tokens and owned-object commits need only a
# zone-local quorum. Reuses the fig4/fig6/fig7 workloads so the comparison
# rides the exact cells the paper figures use.

_WPX_SYSTEMS = ("wk", "wpaxos")
_WPX_FRACTIONS = (0.05, 0.25, 0.5)
_WPX_SETUPS = ("wk", "wk_hot", "wpaxos")
_WPX_OVERLAPS = (0.0, 0.5, 1.0)


def _wpaxos_grid(small: bool, seed: int) -> Dict[str, List[Tuple]]:
    wr_records = 200 if small else 600
    wr_ops = 1200 if small else 5000
    f6_records = 200 if small else 600
    f6_ops = 800 if small else 2500
    f7_records = 150 if small else 400
    f7_ops = 600 if small else 2000
    grid: Dict[str, List[Tuple]] = {}
    grid["write_ratio"] = [
        (
            system,
            fraction,
            Scenario.make(
                "ycsb_write_ratio",
                dict(
                    system=system,
                    write_fraction=fraction,
                    seed=seed,
                    record_count=wr_records,
                    operation_count=wr_ops,
                ),
                suite="fig_wpaxos",
                label=f"{system}@{fraction:.0%}",
            ),
        )
        for system in _WPX_SYSTEMS
        for fraction in _WPX_FRACTIONS
    ]
    grid["disjoint"] = [
        (
            setup,
            Scenario.make(
                "fig6",
                dict(
                    setup=setup,
                    seed=seed,
                    record_count=f6_records,
                    operations_per_client=f6_ops,
                    write_fraction=0.5,
                ),
                suite="fig_wpaxos",
                label=f"disjoint/{setup}",
            ),
        )
        for setup in _WPX_SETUPS
    ]
    grid["contention"] = [
        (
            system,
            overlap,
            Scenario.make(
                "fig7",
                dict(
                    system=system,
                    overlap=overlap,
                    seed=seed,
                    record_count=f7_records,
                    operations_per_client=f7_ops,
                ),
                suite="fig_wpaxos",
                label=f"contention/{system}@{overlap:.0%}",
            ),
        )
        for system in _WPX_SYSTEMS
        for overlap in _WPX_OVERLAPS
    ]
    return grid


def _wpaxos_build(small: bool, seed: int) -> List[Scenario]:
    grid = _wpaxos_grid(small, seed)
    return [
        cell[-1]
        for part in ("write_ratio", "disjoint", "contention")
        for cell in grid[part]
    ]


def _wpaxos_render(small: bool, seed: int, results: Results) -> str:
    grid = _wpaxos_grid(small, seed)
    wr_cells = {
        (system, fraction): _get(results, s)
        for system, fraction, s in grid["write_ratio"]
    }
    wr_rows = []
    for fraction in _WPX_FRACTIONS:
        row = [f"{fraction:.0%}"]
        for system in _WPX_SYSTEMS:
            row.append(wr_cells[(system, fraction)]["throughput"])
        for system in _WPX_SYSTEMS:
            row.append(wr_cells[(system, fraction)]["write_mean_ms"] or 0.0)
        wr_rows.append(row)
    disjoint_rows = []
    for setup, scenario in grid["disjoint"]:
        payload = _get(results, scenario)
        disjoint_rows.append(
            [
                setup,
                payload["total_throughput"],
                payload["per_site_throughput"]["california"],
                payload["per_site_throughput"]["frankfurt"],
                payload["write_mean_ms"],
            ]
        )
    contention_cells = {
        (system, overlap): _get(results, s)
        for system, overlap, s in grid["contention"]
    }
    contention_rows = [
        [f"{overlap:.0%}"]
        + [
            contention_cells[(system, overlap)]["total_throughput"]
            for system in _WPX_SYSTEMS
        ]
        + [
            contention_cells[(system, overlap)]["write_mean_ms"]
            for system in _WPX_SYSTEMS
        ]
        for overlap in _WPX_OVERLAPS
    ]
    return (
        format_table(
            ["write%"]
            + [f"{s} ops/s" for s in _WPX_SYSTEMS]
            + [f"{s} wr ms" for s in _WPX_SYSTEMS],
            wr_rows,
            title="WPaxos A: remote-writer YCSB sweep (fig4 workload)",
        )
        + "\n\n"
        + format_table(
            ["setup", "total ops/s", "CA", "FR", "write ms"],
            disjoint_rows,
            title="WPaxos B: two-site disjoint access (fig6 workload)",
        )
        + "\n\n"
        + format_table(
            ["overlap"]
            + [f"{s} ops/s" for s in _WPX_SYSTEMS]
            + [f"{s} wr ms" for s in _WPX_SYSTEMS],
            contention_rows,
            title="WPaxos C: contention sweep (fig7 workload)",
        )
    )


# -- soak ---------------------------------------------------------------------


def _soak_grid(small: bool, seed: int) -> List[Tuple[int, Scenario]]:
    # Two independent seeded soaks per run, like the acceptance test's
    # seed parametrization (derived from --seed so sweeps stay seeded).
    seeds = (seed, seed + 14)
    ops = 25 if small else 60
    return [
        (
            soak_seed,
            Scenario.make(
                "soak",
                dict(
                    seed=soak_seed,
                    ops_per_actor=ops,
                    key_count=8,
                    quiesce_ms=30000.0,
                ),
                suite="soak",
                label=f"seed={soak_seed}",
            ),
        )
        for soak_seed in seeds
    ]


def _soak_build(small: bool, seed: int) -> List[Scenario]:
    return [scenario for _, scenario in _soak_grid(small, seed)]


def _soak_render(small: bool, seed: int, results: Results) -> str:
    rows = []
    for soak_seed, scenario in _soak_grid(small, seed):
        payload = _get(results, scenario)
        rows.append(
            [
                soak_seed,
                payload["writes"],
                payload["reads"],
                payload["failures"],
                "yes" if payload["converged"] else "NO",
                payload["token_conflicts"],
                payload["linearizability_violations"],
                payload["max_apply_count"],
            ]
        )
    return format_table(
        ["seed", "writes", "reads", "fails", "converged", "token conflicts",
         "lin viols", "max apply"],
        rows,
        title="Lossy-WAN gray-failure soak invariants",
    )


# -- fleet (open-loop planet-scale tier) --------------------------------------

# Site sweep: how throughput and token migration scale with the number
# of generated sites at fixed per-site offered load. The 20-site full
# cell is the acceptance anchor: 100k concurrent open-loop sessions.
_FLEET_SITES_FULL = (8, 20, 32)
_FLEET_SITES_SMALL = (4, 8)
# Offered-load sweep at the anchor site count. Per-site service capacity
# is 1000/service_time_ms ≈ 333 ops/s, so 2.0x load saturates sites at
# diurnal peaks — the open-loop knee the closed-loop clients can't show.
_FLEET_LOADS = (0.5, 1.0, 2.0)


def _fleet_params(small: bool, seed: int, n_sites: int, load: float) -> Dict:
    return dict(
        n_sites=n_sites,
        sessions_per_site=1250 if small else 5000,
        duration_ms=20000.0 if small else 60000.0,
        site_ops_per_sec=100.0 if small else 150.0,
        load_multiplier=load,
        seed=seed,
    )


def _fleet_grid(small: bool, seed: int):
    sites_axis = _FLEET_SITES_SMALL if small else _FLEET_SITES_FULL
    anchor = sites_axis[-1] if small else 20
    site_cells = [
        (
            n,
            Scenario.make(
                "fleet",
                _fleet_params(small, seed, n, 1.0),
                suite="fleet",
                label=f"{n} sites",
            ),
        )
        for n in sites_axis
    ]
    load_cells = [
        (
            load,
            Scenario.make(
                "fleet",
                _fleet_params(small, seed, anchor, load),
                suite="fleet",
                label=f"{anchor} sites @ {load:.1f}x load",
            ),
        )
        for load in _FLEET_LOADS
    ]
    return site_cells, load_cells


def _fleet_build(small: bool, seed: int) -> List[Scenario]:
    site_cells, load_cells = _fleet_grid(small, seed)
    scenarios = [s for _, s in site_cells] + [s for _, s in load_cells]
    return scenarios


def _fleet_render(small: bool, seed: int, results: Results) -> str:
    site_cells, load_cells = _fleet_grid(small, seed)
    site_rows = []
    for n, scenario in site_cells:
        payload = _get(results, scenario)
        site_rows.append(
            [
                n,
                payload["sessions"],
                payload["active_sessions"],
                payload["offered_ops_per_sec"],
                payload["throughput_ops_per_sec"],
                payload["token_migrations"],
                payload["write_p99_ms"] or 0.0,
            ]
        )
    load_rows = []
    for load, scenario in load_cells:
        payload = _get(results, scenario)
        load_rows.append(
            [
                f"{load:.1f}x",
                payload["offered_ops_per_sec"],
                payload["throughput_ops_per_sec"],
                payload["in_flight_at_horizon"],
                payload["mean_queue_ms"],
                payload["write_p99_ms"] or 0.0,
                payload["token_migrations"],
            ]
        )
    return (
        format_table(
            ["sites", "sessions", "active", "offered/s", "done/s",
             "migrations", "write p99 ms"],
            site_rows,
            title="Fleet A: throughput & token migration vs site count",
        )
        + "\n\n"
        + format_table(
            ["load", "offered/s", "done/s", "backlog", "queue ms",
             "write p99 ms", "migrations"],
            load_rows,
            title="Fleet B: open-loop offered-load sweep (saturation knee)",
        )
    )


# -- fleet_full (the real stack at fleet scale) -------------------------------

# Which real stacks the driver is pointed at: WanKeeper on zab, flat ZK
# on zab (hub voters + observers), flat ZK on the wpaxos multileader
# substrate (one voter per site).
_FLEET_FULL_STACKS = (
    ("wankeeper", "zab"),
    ("zk", "zab"),
    ("zk", "wpaxos"),
)


def _fleet_full_params(small: bool, seed: int, system: str, substrate: str):
    return dict(
        n_sites=4 if small else 8,
        sessions_per_site=50 if small else 1250,
        duration_ms=4000.0 if small else 15000.0,
        site_ops_per_sec=40.0,
        system=system,
        substrate=substrate,
        seed=seed,
    )


def _fleet_full_meso_params(small: bool, seed: int) -> Dict:
    """Mesoscale twin of the full-stack cells: same sites, sessions,
    duration and offered load, served by the queueing model instead of
    real servers — the crossover comparison in the renderer."""
    return dict(
        n_sites=4 if small else 8,
        sessions_per_site=50 if small else 1250,
        duration_ms=4000.0 if small else 15000.0,
        site_ops_per_sec=40.0,
        seed=seed,
    )


def _fleet_full_grid(small: bool, seed: int):
    stack_cells = [
        (
            system,
            substrate,
            Scenario.make(
                "fleet_full",
                _fleet_full_params(small, seed, system, substrate),
                suite="fleet_full",
                label=f"{system}/{substrate}",
            ),
        )
        for system, substrate in _FLEET_FULL_STACKS
    ]
    meso_cell = Scenario.make(
        "fleet",
        _fleet_full_meso_params(small, seed),
        suite="fleet_full",
        label="mesoscale twin",
    )
    return stack_cells, meso_cell


def _fleet_full_build(small: bool, seed: int) -> List[Scenario]:
    stack_cells, meso_cell = _fleet_full_grid(small, seed)
    return [s for _, _, s in stack_cells] + [meso_cell]


def _fleet_full_render(small: bool, seed: int, results: Results) -> str:
    stack_cells, meso_cell = _fleet_full_grid(small, seed)
    stack_rows = []
    for system, substrate, scenario in stack_cells:
        payload = _get(results, scenario)
        stack_rows.append(
            [
                f"{system}/{substrate}",
                payload["sessions"],
                payload["offered_ops_per_sec"],
                payload["throughput_ops_per_sec"],
                payload["read_p50_ms"] or 0.0,
                payload["write_p50_ms"] or 0.0,
                payload["write_p99_ms"] or 0.0,
                payload["token_migrations"],
                payload["messages_sent"],
            ]
        )
    meso = _get(results, meso_cell)
    wk = _get(results, stack_cells[0][2])
    compare_rows = [
        [
            "mesoscale",
            meso["sessions"],
            meso["offered_ops_per_sec"],
            meso["throughput_ops_per_sec"],
            meso["write_p99_ms"] or 0.0,
            meso["token_migrations"],
            0,
        ],
        [
            "full stack",
            wk["sessions"],
            wk["offered_ops_per_sec"],
            wk["throughput_ops_per_sec"],
            wk["write_p99_ms"] or 0.0,
            wk["token_migrations"],
            wk["messages_sent"],
        ],
    ]
    return (
        format_table(
            ["stack", "sessions", "offered/s", "done/s", "read p50",
             "write p50", "write p99", "migrations", "messages"],
            stack_rows,
            title="Fleet full stack: real servers under the open-loop driver",
        )
        + "\n\n"
        + format_table(
            ["tier", "sessions", "offered/s", "done/s", "write p99 ms",
             "migrations", "messages"],
            compare_rows,
            title="Mesoscale model vs full stack (wankeeper/zab cell)",
        )
    )


# -- registry -----------------------------------------------------------------

SUITES: Dict[
    str,
    Tuple[
        Callable[[bool, int], List[Scenario]],
        Callable[[bool, int, Results], str],
    ],
] = {
    "fig4": (_fig4_build, _fig4_render),
    "fig5": (_fig5_build, _fig5_render),
    "fig6": (_fig6_build, _fig6_render),
    "fig7": (_fig7_build, _fig7_render),
    "fig8": (_fig8_build, _fig8_render),
    "fig10": (_fig10_build, _fig10_render),
    "ablations": (_ablations_build, _ablations_render),
    "fig_wpaxos": (_wpaxos_build, _wpaxos_render),
    "soak": (_soak_build, _soak_render),
    "fleet": (_fleet_build, _fleet_render),
    "fleet_full": (_fleet_full_build, _fleet_full_render),
}

#: Suites included in ``--all`` (the CLI's historical experiment set;
#: the soak, the fleet tiers and the substrate comparison are opt-in
#: by name). ``--list`` marks these as opt-in.
OPT_IN_SUITE_NAMES = ("soak", "fleet", "fleet_full", "fig_wpaxos")

DEFAULT_SUITE_NAMES = tuple(
    sorted(name for name in SUITES if name not in OPT_IN_SUITE_NAMES)
)


def suite_names() -> List[str]:
    return sorted(SUITES)


def build_suite(name: str, small: bool, seed: int) -> List[Scenario]:
    build, _render = SUITES[name]
    return build(small, seed)


def render_suite(name: str, small: bool, seed: int, results: Results) -> str:
    _build, render = SUITES[name]
    return render(small, seed, results)
