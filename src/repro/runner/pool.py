"""Persistent warm worker pool for the scenario executor.

The original parallel executor spawned one pristine process per cell, so
every cell paid interpreter start-up plus a full ``repro`` import — on
machines where a cell runs for a second or two, parallel runs were
*slower* than serial (BENCH_experiments.json recorded a 0.68–0.75
"speedup"). This module replaces spawn-per-cell with a small fleet of
**long-lived workers**: spawn-started once, importing the package once,
then serving many cells over a duplex pipe.

Design points:

* **Spawn-started, warm thereafter.** Workers still use the ``spawn``
  start method (pristine interpreter, no fork-inherited simulation
  state), and cells remain pure functions of their spec, so reuse cannot
  leak observable state between cells — the determinism tests run the
  same cell through ``--jobs 1``, the pool, and the legacy spawn
  executor and require byte-identical payloads.
* **Batched dispatch.** Small cells are grouped into one ``("run",
  [spec, ...])`` message so per-dispatch latency amortizes (fuzz
  campaigns push hundreds of sub-second cells through here). Workers
  stream one result message per cell, in batch order, so the parent
  always knows the single in-flight cell.
* **Failure isolation.** A worker that dies (crash, ``os._exit``, OOM)
  or exceeds the per-cell timeout fails only its *in-flight* cell; the
  rest of its batch is requeued and the worker is replaced. Workers
  mark each cell's start with a begin message, so a death *between*
  cells (previous cell acked, next never started) fails no cell at all
  — every undelivered spec is requeued. A raising cell is reported over
  the pipe and the worker keeps serving.
* **Source-digest invalidation.** The process-wide pool is keyed by the
  ``repro`` source digest plus the ``REPRO_*`` environment (the sentinel
  gate travels by environment into spawned workers); any change shuts
  the fleet down and starts fresh, so a warm pool can never serve cells
  with stale code.
"""

from __future__ import annotations

import atexit
import json
import os
import time
import traceback
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.runner.cache import code_digest
from repro.runner.scenario import Scenario

__all__ = [
    "WorkerPool",
    "default_batch_size",
    "get_pool",
    "pool_key",
    "run_pooled",
    "shutdown_pool",
]

_POLL_INTERVAL_S = 0.02
# Grace period for a terminated worker to die before escalating to kill.
_REAP_GRACE_S = 5.0
# A worker may die between dispatches (send fails / exits before acking
# anything); after this many consecutive no-progress respawns the run is
# aborted instead of looping.
_MAX_BARREN_RESPAWNS = 5
#: Upper bound on cells per dispatch message.
MAX_BATCH = 8

#: Modules imported eagerly at worker start-up so the first cell runs as
#: warm as the hundredth (cells import lazily inside their functions).
_PRELOAD_MODULES = (
    "repro.runner.cells",
    "repro.experiments.common",
    "repro.experiments.fig4",
    "repro.experiments.fig6",
    "repro.experiments.fig7",
    "repro.experiments.fig8",
    "repro.experiments.fig10",
    "repro.experiments.ablations",
    "repro.wankeeper",
    "repro.nemesis",
    "repro.consistency",
    "repro.fuzz.case",
)


def default_batch_size(cells: int, jobs: int) -> int:
    """Cells per dispatch: 1 for coarse work, larger for cell swarms.

    Figure cells run for seconds — per-cell dispatch costs microseconds,
    and one-at-a-time hand-out load-balances heterogeneous cells best.
    Only when the queue is much deeper than the fleet (fuzz campaigns,
    sweep grids) do batches grow, capped at :data:`MAX_BATCH`.
    """
    if jobs <= 0:
        return 1
    return max(1, min(MAX_BATCH, cells // (jobs * 8)))


# -- worker process ------------------------------------------------------------


def _pool_worker(conn) -> None:
    """Worker-process main loop: recv a batch, stream one result per cell.

    Messages in: ``("run", [spec_json, ...])`` or ``("exit",)``.
    Messages out, per cell, in batch order: ``("begin",)`` as the cell
    starts, then ``("ok", payload, elapsed_s)`` or ``("error", message,
    traceback_text)``. The begin marker lets the parent distinguish a
    death *during* a cell (that cell failed) from a death *between*
    cells (nothing was in flight — every unacked spec is requeued, none
    is falsely blamed).
    """
    import importlib

    for name in _PRELOAD_MODULES:
        try:
            importlib.import_module(name)
        except Exception:  # pragma: no cover - optional warm-up only
            pass
    from repro.runner.cells import run_cell

    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not message or message[0] != "run":
                break
            for spec_json in message[1]:
                try:
                    conn.send(("begin",))
                except Exception:
                    # Parent gone; nothing left to report to.
                    return
                try:
                    scenario = Scenario.from_spec(json.loads(spec_json))
                    started = time.perf_counter()
                    payload = run_cell(scenario)
                    conn.send(("ok", payload, time.perf_counter() - started))
                except Exception as exc:
                    try:
                        conn.send(
                            (
                                "error",
                                f"{type(exc).__name__}: {exc}",
                                traceback.format_exc(),
                            )
                        )
                    except Exception:
                        # Cannot report (payload refused the pipe, parent
                        # gone): die so the parent sees a crash instead of
                        # a hang.
                        os._exit(70)
                except BaseException as exc:
                    # KeyboardInterrupt / SystemExit: report the in-flight
                    # cell, then let the worker die.
                    try:
                        conn.send(
                            (
                                "error",
                                f"{type(exc).__name__}: {exc}",
                                traceback.format_exc(),
                            )
                        )
                    finally:
                        raise
    finally:
        try:
            conn.close()
        except Exception:
            pass


# -- parent-side pool ----------------------------------------------------------


class PoolWorker:
    """Parent-side handle: process + pipe + in-flight batch bookkeeping."""

    __slots__ = ("proc", "conn", "assigned", "cell_started", "begun")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        #: Scenarios dispatched but not yet acked, in execution order;
        #: ``assigned[0]`` is the next cell the worker will run (and the
        #: in-flight cell once its begin marker arrives).
        self.assigned: Deque[Scenario] = deque()
        #: monotonic() when the in-flight cell started (dispatch time, or
        #: the previous cell's ack) — the per-cell timeout clock.
        self.cell_started = 0.0
        #: True between ``assigned[0]``'s begin marker and its result: a
        #: worker death with ``begun`` unset happened *between* cells, so
        #: no cell is blamed and everything assigned is requeued.
        self.begun = False

    def dispatch(self, batch: List[Scenario]) -> None:
        self.conn.send(("run", [json.dumps(s.spec()) for s in batch]))
        self.assigned = deque(batch)
        self.cell_started = time.monotonic()
        self.begun = False


class WorkerPool:
    """A fleet of persistent spawn workers, keyed by source digest."""

    def __init__(self, key: Tuple[Any, ...]):
        import multiprocessing

        self.key = key
        self._ctx = multiprocessing.get_context("spawn")
        self.workers: List[PoolWorker] = []
        #: Total workers ever started (respawns included) — test hook.
        self.spawned_total = 0
        #: Workers replaced after a crash/timeout — test hook.
        self.respawns = 0

    def _spawn(self) -> PoolWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(child_conn,),
            daemon=True,
            name=f"repro-pool-{self.spawned_total}",
        )
        proc.start()
        child_conn.close()  # parent keeps only its own end
        self.spawned_total += 1
        return PoolWorker(proc, parent_conn)

    def lease(self, jobs: int) -> List[PoolWorker]:
        """At least ``jobs`` live idle-ready workers (pruning dead ones)."""
        alive = []
        for worker in self.workers:
            if worker.proc.is_alive():
                alive.append(worker)
            else:
                self._reap(worker)
        self.workers = alive
        while len(self.workers) < jobs:
            self.workers.append(self._spawn())
        return self.workers[:jobs]

    def replace(self, worker: PoolWorker) -> PoolWorker:
        """Kill and reap ``worker``; spawn and return its successor."""
        self._reap(worker)
        try:
            self.workers.remove(worker)
        except ValueError:
            pass
        successor = self._spawn()
        self.workers.append(successor)
        self.respawns += 1
        return successor

    def _reap(self, worker: PoolWorker) -> None:
        try:
            worker.conn.close()
        except Exception:
            pass
        proc = worker.proc
        try:
            if proc.is_alive():
                proc.terminate()
                proc.join(_REAP_GRACE_S)
                if proc.is_alive():
                    proc.kill()
            proc.join(_REAP_GRACE_S)
        except Exception:
            pass
        try:
            proc.close()
        except Exception:
            pass

    def shutdown(self) -> None:
        """Graceful stop: ask every worker to exit, then reap the fleet."""
        for worker in self.workers:
            try:
                worker.conn.send(("exit",))
            except Exception:
                pass
        for worker in self.workers:
            try:
                worker.proc.join(1.0)
            except Exception:
                pass
            self._reap(worker)
        self.workers = []


# -- process-wide pool ---------------------------------------------------------

_ACTIVE: Optional[WorkerPool] = None


def pool_key() -> Tuple[Any, ...]:
    """Identity of the code/configuration a warm worker embodies.

    Covers the ``repro`` source digest (stale code must never serve a
    cell) and every ``REPRO_*`` environment variable (workers inherit
    the environment at spawn — the sentinel gate travels that way).
    """
    env = tuple(
        sorted(
            (name, value)
            for name, value in os.environ.items()
            if name.startswith("REPRO_")
        )
    )
    return (code_digest(), env)


def get_pool(jobs: int, key: Optional[Tuple[Any, ...]] = None) -> WorkerPool:
    """The process-wide pool, restarted if the key no longer matches."""
    global _ACTIVE
    if key is None:
        key = pool_key()
    if _ACTIVE is not None and _ACTIVE.key != key:
        _ACTIVE.shutdown()
        _ACTIVE = None
    if _ACTIVE is None:
        _ACTIVE = WorkerPool(key)
    _ACTIVE.lease(jobs)
    return _ACTIVE


def shutdown_pool() -> None:
    """Stop the process-wide pool (no-op when none is running)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.shutdown()
        _ACTIVE = None


atexit.register(shutdown_pool)


# -- pooled execution loop -----------------------------------------------------


def run_pooled(
    to_run: List[Scenario],
    jobs: int,
    cache,
    timeout_s: Optional[float],
    report,
    say,
    batch_size: Optional[int] = None,
) -> None:
    """Run ``to_run`` through the persistent pool, filling ``report``.

    Mirrors the legacy executor's contract exactly: results keyed by
    scenario digest, ``CellFailure`` kinds ``exception``/``crash``/
    ``timeout``, per-cell timeout, cache writes for fresh results — only
    the process economics differ.
    """
    from repro.runner.executor import CellFailure, _json_roundtrip

    if not to_run:
        return
    pool = get_pool(jobs)
    workers = pool.lease(jobs)
    if batch_size is None:
        batch_size = default_batch_size(len(to_run), jobs)

    pending: Deque[Scenario] = deque(to_run)
    idle: Deque[PoolWorker] = deque(workers)
    busy: List[PoolWorker] = []
    barren_respawns = 0

    def requeue_rest(worker: PoolWorker) -> None:
        # Everything behind the in-flight cell reruns elsewhere, ahead of
        # undispatched work so overall ordering stays close to spec order.
        rest = list(worker.assigned)
        worker.assigned.clear()
        pending.extendleft(reversed(rest))

    def fail_worker(worker: PoolWorker, kind: str, message: str) -> None:
        nonlocal barren_respawns
        busy.remove(worker)
        if worker.begun:
            # Death mid-cell: the in-flight cell is the victim, the rest
            # of the batch reruns elsewhere.
            victim = worker.assigned.popleft()
            requeue_rest(worker)
            report.failures.append(CellFailure(victim, kind, message))
            idle.append(pool.replace(worker))
            return
        # Death *between* cells (acked the previous cell, never began the
        # next): nothing was in flight, so no cell failed — requeue every
        # undelivered spec instead of blaming the head of the batch. The
        # barren counter keeps a fleet that can never begin from looping.
        requeue_rest(worker)
        idle.append(pool.replace(worker))
        barren_respawns += 1
        if barren_respawns > _MAX_BARREN_RESPAWNS:
            raise RuntimeError(
                "worker pool cannot make progress "
                f"({barren_respawns} consecutive between-cell respawns)"
            )

    while pending or busy:
        while pending and idle:
            worker = idle.popleft()
            batch = []
            while pending and len(batch) < batch_size:
                batch.append(pending.popleft())
            try:
                worker.dispatch(batch)
            except Exception:
                # Died between batches: nothing was in flight, so nothing
                # failed — requeue and respawn, but never loop on a fleet
                # that cannot even accept work.
                pending.extendleft(reversed(batch))
                idle.append(pool.replace(worker))
                barren_respawns += 1
                if barren_respawns > _MAX_BARREN_RESPAWNS:
                    raise RuntimeError(
                        "worker pool cannot accept work "
                        f"({barren_respawns} consecutive dispatch failures)"
                    )
                continue
            for scenario in batch:
                say(f"dispatch   {scenario.describe()}")
            busy.append(worker)

        progressed = False
        for worker in list(busy):
            if worker.conn.poll():
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    message = None
                if message is None:
                    fail_worker(
                        worker,
                        "crash",
                        "worker died without a result "
                        f"(exit code {worker.proc.exitcode})",
                    )
                    continue
                progressed = True
                barren_respawns = 0
                if message[0] == "begin":
                    worker.begun = True
                    worker.cell_started = time.monotonic()
                    continue
                scenario = worker.assigned.popleft()
                worker.begun = False
                worker.cell_started = time.monotonic()
                if message[0] == "ok":
                    _status, payload, elapsed = message
                    payload = _json_roundtrip(payload)
                    report.results[scenario.digest()] = payload
                    report.executed += 1
                    say(f"done       {scenario.describe()}")
                    if cache is not None:
                        cache.put(scenario, payload, elapsed)
                else:
                    _status, error_message, detail = message
                    report.failures.append(
                        CellFailure(scenario, "exception", error_message, detail)
                    )
                if not worker.assigned:
                    busy.remove(worker)
                    idle.append(worker)
            elif not worker.proc.is_alive():
                fail_worker(
                    worker,
                    "crash",
                    "worker died without a result "
                    f"(exit code {worker.proc.exitcode})",
                )
            elif (
                timeout_s is not None
                and time.monotonic() - worker.cell_started > timeout_s
            ):
                fail_worker(
                    worker,
                    "timeout",
                    f"cell exceeded the per-cell timeout of "
                    f"{timeout_s:.0f}s and was killed",
                )

        if busy and not progressed:
            time.sleep(_POLL_INTERVAL_S)
