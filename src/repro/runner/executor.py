"""Multiprocessing scenario executor.

``execute()`` fans independent scenario cells across worker processes
(``jobs > 1``) or runs them in-process (``jobs == 1``), consulting an
optional :class:`~repro.runner.cache.ResultCache` either way. Design
points the tests pin down:

* **Spawn-safe.** Workers use the ``spawn`` start method — the only one
  that is identical across platforms and immune to fork-inherited
  state — so a cell computes from a pristine interpreter. By default
  ``jobs > 1`` runs through the persistent warm pool
  (:mod:`repro.runner.pool`): workers are spawned once, import ``repro``
  once, and serve many cells each; ``pool=False`` (CLI ``--no-pool``)
  falls back to the legacy one-process-per-cell spawn path.
* **Deterministic results.** A cell's payload is a pure function of its
  scenario; the executor never lets completion order leak into results
  (they are keyed by scenario digest, and renderers iterate the
  scenario list). Serial, pooled, and spawn-per-cell execution are
  byte-identical.
* **No wedged runs.** A crashing worker is detected by its exit without
  a result; a hung worker is killed after ``timeout_s``. Both surface
  as :class:`CellFailure` entries carrying the full scenario spec, and
  :meth:`ExecutionReport.raise_on_failure` turns them into a non-zero
  exit instead of a deadlocked pool. In the pooled path a dead or hung
  worker fails only its in-flight cell and is replaced.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.runner.cells import run_cell
from repro.runner.scenario import Scenario

__all__ = [
    "CellFailure",
    "ExecutionReport",
    "ScenarioError",
    "execute",
]

_POLL_INTERVAL_S = 0.02
# Grace period for a terminated worker to die before escalating to kill.
_REAP_GRACE_S = 5.0


@dataclass
class CellFailure:
    """One scenario that did not produce a payload."""

    scenario: Scenario
    kind: str  # "exception" | "crash" | "timeout"
    message: str
    detail: str = ""

    def describe(self) -> str:
        spec = json.dumps(self.scenario.spec(), sort_keys=True)
        return f"[{self.kind}] {self.scenario.describe()}: {self.message}\n  spec: {spec}"


class ScenarioError(RuntimeError):
    """Raised when one or more cells failed; carries every failure."""

    def __init__(self, failures: List[CellFailure]):
        self.failures = failures
        super().__init__(
            f"{len(failures)} scenario cell(s) failed:\n"
            + "\n".join(f.describe() for f in failures)
        )


@dataclass
class ExecutionReport:
    """Results and accounting of one ``execute()`` call."""

    results: Dict[str, Any] = field(default_factory=dict)  # digest -> payload
    failures: List[CellFailure] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    wall_s: float = 0.0
    jobs: int = 1

    def payload(self, scenario: Scenario) -> Any:
        return self.results[scenario.digest()]

    def raise_on_failure(self) -> None:
        if self.failures:
            raise ScenarioError(self.failures)

    def summary(self) -> str:
        parts = [
            f"{len(self.results)} cells",
            f"{self.executed} executed",
            f"{self.cache_hits} cache hits",
        ]
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        parts.append(f"jobs={self.jobs}")
        parts.append(f"{self.wall_s:.1f}s")
        return ", ".join(parts)


def _worker(spec_json: str, conn) -> None:
    """Worker-process entry point: run one cell, send one message.

    Messages: ``("ok", payload, elapsed_s)`` or ``("error", message,
    traceback_text)``. Any exit without a message is a crash, detected
    by the parent via the process exit code.
    """
    try:
        scenario = Scenario.from_spec(json.loads(spec_json))
        started = time.perf_counter()
        payload = run_cell(scenario)
        conn.send(("ok", payload, time.perf_counter() - started))
    except BaseException as exc:  # report, never hang the parent
        try:
            conn.send(
                (
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
            )
        except Exception:
            pass
    finally:
        conn.close()


def _json_roundtrip(payload: Any) -> Any:
    """Normalize an in-process payload exactly as the cache/pipe would.

    Guarantees ``--jobs 1`` results are byte-identical to worker/cached
    results even for payloads with non-JSON niceties (tuples -> lists).
    """
    return json.loads(json.dumps(payload))


def execute(
    scenarios: Sequence[Scenario],
    jobs: int = 1,
    cache=None,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    pool: bool = True,
) -> ExecutionReport:
    """Run every scenario; returns payloads keyed by scenario digest.

    Duplicate scenarios (same digest) are executed once. With ``cache``
    set, hits skip execution and fresh results are stored. ``jobs == 1``
    executes in-process (the determinism reference); ``jobs > 1`` runs
    at most ``jobs`` cells concurrently, each subject to ``timeout_s`` —
    through the persistent warm worker pool by default, or one spawned
    process per cell with ``pool=False``.
    """
    started = time.perf_counter()
    report = ExecutionReport(jobs=jobs)
    say = progress or (lambda _msg: None)

    # Cache pass + dedup, preserving first-seen order.
    to_run: List[Scenario] = []
    seen = set()
    for scenario in scenarios:
        digest = scenario.digest()
        if digest in seen or digest in report.results:
            continue
        if cache is not None:
            entry = cache.get(scenario)
            if entry is not None:
                report.results[digest] = entry["payload"]
                report.cache_hits += 1
                say(f"cache hit  {scenario.describe()}")
                continue
            report.cache_misses += 1
        seen.add(digest)
        to_run.append(scenario)

    if jobs <= 1:
        _run_serial(to_run, cache, report, say)
    elif pool:
        from repro.runner.pool import run_pooled

        run_pooled(to_run, jobs, cache, timeout_s, report, say)
    else:
        _run_parallel(to_run, jobs, cache, timeout_s, report, say)

    report.wall_s = time.perf_counter() - started
    return report


def _run_serial(to_run, cache, report, say) -> None:
    for scenario in to_run:
        say(f"run        {scenario.describe()}")
        cell_started = time.perf_counter()
        try:
            payload = _json_roundtrip(run_cell(scenario))
        except Exception as exc:
            report.failures.append(
                CellFailure(
                    scenario,
                    "exception",
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                )
            )
            continue
        elapsed = time.perf_counter() - cell_started
        report.results[scenario.digest()] = payload
        report.executed += 1
        if cache is not None:
            cache.put(scenario, payload, elapsed)


def _run_parallel(to_run, jobs, cache, timeout_s, report, say) -> None:
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    pending = list(reversed(to_run))  # pop() from the tail = spec order
    running = {}  # proc -> (scenario, conn, started)

    def reap(proc):
        proc.join(_REAP_GRACE_S)
        if proc.is_alive():
            proc.kill()
            proc.join(_REAP_GRACE_S)
        try:
            proc.close()
        except Exception:
            pass

    try:
        while pending or running:
            while pending and len(running) < jobs:
                scenario = pending.pop()
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker,
                    args=(json.dumps(scenario.spec()), send_conn),
                    daemon=True,
                )
                say(f"spawn      {scenario.describe()}")
                proc.start()
                send_conn.close()  # parent keeps only the read end
                running[proc] = (scenario, recv_conn, time.monotonic())

            finished = []
            for proc, (scenario, conn, proc_started) in running.items():
                if conn.poll():
                    try:
                        message = conn.recv()
                    except EOFError:
                        message = None
                    finished.append((proc, scenario, conn, message))
                elif not proc.is_alive():
                    finished.append((proc, scenario, conn, None))
                elif (
                    timeout_s is not None
                    and time.monotonic() - proc_started > timeout_s
                ):
                    finished.append((proc, scenario, conn, "timeout"))

            for proc, scenario, conn, message in finished:
                del running[proc]
                try:
                    if message == "timeout":
                        proc.terminate()
                        reap(proc)
                        report.failures.append(
                            CellFailure(
                                scenario,
                                "timeout",
                                f"cell exceeded the per-cell timeout of "
                                f"{timeout_s:.0f}s and was killed",
                            )
                        )
                    elif message is None:
                        exitcode = proc.exitcode
                        reap(proc)
                        report.failures.append(
                            CellFailure(
                                scenario,
                                "crash",
                                f"worker died without a result "
                                f"(exit code {exitcode})",
                            )
                        )
                    elif message[0] == "ok":
                        _status, payload, elapsed = message
                        reap(proc)
                        payload = _json_roundtrip(payload)
                        report.results[scenario.digest()] = payload
                        report.executed += 1
                        say(f"done       {scenario.describe()}")
                        if cache is not None:
                            cache.put(scenario, payload, elapsed)
                    else:
                        _status, error_message, detail = message
                        reap(proc)
                        report.failures.append(
                            CellFailure(scenario, "exception", error_message, detail)
                        )
                finally:
                    # Close the read end on every path — success, crash,
                    # timeout, or a raising cache.put — or the parent
                    # accumulates one leaked pipe fd per finished cell.
                    conn.close()

            if running and not finished:
                time.sleep(_POLL_INTERVAL_S)
    finally:
        # Belt and braces: never leave workers or pipes behind
        # (^C, raise, ...).
        for proc, (_scenario, conn, _started) in running.items():
            try:
                conn.close()
            except Exception:
                pass
            try:
                proc.terminate()
                proc.join(_REAP_GRACE_S)
                if proc.is_alive():
                    proc.kill()
            except Exception:
                pass
