"""Declarative simulation-cell specs.

A :class:`Scenario` names a registered cell function plus its parameters
— nothing else. Specs are hashable, JSON-round-trippable, and carry a
stable content digest, which makes them usable as cache keys and as
self-describing error reports when a worker dies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

__all__ = ["Scenario"]

_PLAIN = (str, int, float, bool, type(None))


def _check_plain(value: Any, context: str) -> None:
    if not isinstance(value, _PLAIN):
        raise TypeError(
            f"scenario parameter {context} must be a JSON scalar "
            f"(str/int/float/bool/None), got {type(value).__name__}"
        )


@dataclass(frozen=True)
class Scenario:
    """One independent simulation cell: a cell function + its parameters.

    ``cell`` names a function registered in :mod:`repro.runner.cells`;
    ``params`` are its keyword arguments as a sorted tuple of pairs (flat
    JSON scalars only, so every spec serializes canonically). ``suite``
    and ``label`` are presentation metadata — they identify the cell in
    progress/error output but do **not** participate in the digest, so
    two suites sharing an identical cell share one cache entry.
    """

    cell: str
    params: Tuple[Tuple[str, Any], ...]
    suite: str = ""
    label: str = ""

    @staticmethod
    def make(
        cell: str, params: Mapping[str, Any], suite: str = "", label: str = ""
    ) -> "Scenario":
        for key, value in params.items():
            _check_plain(value, f"{cell}.{key}")
        ordered = tuple(sorted(params.items()))
        return Scenario(cell=cell, params=ordered, suite=suite, label=label)

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def spec(self) -> Dict[str, Any]:
        """The canonical JSON-plain form (identity only, no metadata)."""
        return {"cell": self.cell, "params": self.kwargs}

    def digest(self) -> str:
        payload = json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Human-readable one-liner, used in progress and error output."""
        args = ", ".join(f"{k}={v!r}" for k, v in self.params)
        prefix = f"{self.suite}:" if self.suite else ""
        return f"{prefix}{self.label or self.cell}({args})"

    @staticmethod
    def from_spec(
        spec: Mapping[str, Any], suite: str = "", label: str = ""
    ) -> "Scenario":
        return Scenario.make(
            spec["cell"], spec["params"], suite=suite, label=label
        )
