"""The registry of scenario cell functions.

Every cell is a pure function ``params -> JSON-plain payload``: it builds
a fresh seeded simulation, drives it to completion, and returns only
scalars/lists/dicts. That contract is what makes cells safely executable
in worker processes (payloads cross a pipe), cacheable on disk (payloads
round-trip ``json.dumps``/``loads`` bit-exactly), and comparable for the
determinism guard (in-process and worker runs must produce equal
payloads).

Cells wrap the per-cell entry points of :mod:`repro.experiments`; they
never format output — rendering lives in :mod:`repro.runner.suites`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

__all__ = ["CELLS", "run_cell"]


def _maybe(fn: Callable, *args) -> Optional[float]:
    try:
        return fn(*args)
    except ValueError:
        return None


# -- figure cells -------------------------------------------------------------


def cell_ycsb_write_ratio(
    system: str,
    write_fraction: float,
    seed: int = 42,
    record_count: int = 1000,
    operation_count: int = 10000,
) -> Dict[str, Any]:
    """One (system, write ratio) YCSB cell — feeds Fig. 4 and Fig. 5."""
    from repro.experiments.fig4 import run_write_ratio_cell

    cell = run_write_ratio_cell(
        system,
        write_fraction,
        seed=seed,
        record_count=record_count,
        operation_count=operation_count,
    )
    recorder = cell.recorder
    stats = recorder.summary()
    return {
        "system": system,
        "write_fraction": write_fraction,
        "throughput": cell.throughput,
        "read_mean_ms": cell.read_mean_ms,
        "write_mean_ms": cell.write_mean_ms,
        "read_p99_ms": cell.read_p99_ms,
        "write_p99_ms": cell.write_p99_ms,
        "write_p50_ms": stats["write_p50_ms"],
        "write_p90_ms": stats["write_p90_ms"],
        # Fig. 5's "local commit" fraction (threshold from Fig5Result).
        "local_write_fraction": _maybe(
            recorder.fraction_below, 10.0, "write"
        ),
        "ops": stats["count"],
    }


def cell_fig6(
    setup: str,
    seed: int = 42,
    record_count: int = 1000,
    operations_per_client: int = 5000,
    write_fraction: float = 0.5,
) -> Dict[str, Any]:
    from repro.experiments.fig6 import run_fig6_cell

    result = run_fig6_cell(
        setup,
        seed=seed,
        record_count=record_count,
        operations_per_client=operations_per_client,
        write_fraction=write_fraction,
    )
    return {
        "setup": result.setup,
        "total_throughput": result.total_throughput,
        "per_site_throughput": dict(result.per_site_throughput),
        "write_mean_ms": result.write_mean_ms,
    }


def cell_fig7(
    system: str,
    overlap: float,
    seed: int = 42,
    record_count: int = 500,
    operations_per_client: int = 3000,
) -> Dict[str, Any]:
    from repro.experiments.fig7 import run_fig7_cell

    cell = run_fig7_cell(
        system,
        overlap,
        seed=seed,
        record_count=record_count,
        operations_per_client=operations_per_client,
    )
    return {
        "system": cell.system,
        "overlap": cell.overlap,
        "total_throughput": cell.total_throughput,
        "write_mean_ms": cell.write_mean_ms,
    }


def cell_fig8(
    system: str,
    write_duration_ms: float,
    seed: int = 42,
    total_duration_ms: float = 30000.0,
) -> Dict[str, Any]:
    from repro.experiments.fig8 import run_fig8_cell

    cell = run_fig8_cell(
        system,
        write_duration_ms,
        seed=seed,
        total_duration_ms=total_duration_ms,
    )
    return {
        "system": cell.system,
        "write_duration_ms": cell.write_duration_ms,
        "entries_per_sec": cell.entries_per_sec,
        "handovers": cell.handovers,
        "entries_total": cell.entries_total,
    }


def cell_fig10(
    system: str,
    overlap: float,
    hotspot: bool,
    seed: int = 42,
    record_count: int = 500,
    operations_per_client: int = 3000,
) -> Dict[str, Any]:
    from repro.experiments.fig10 import run_fig10_cell

    cell, _recorders = run_fig10_cell(
        system,
        overlap,
        hotspot,
        seed=seed,
        record_count=record_count,
        operations_per_client=operations_per_client,
    )
    return {
        "system": cell.system,
        "overlap": cell.overlap,
        "hotspot": cell.hotspot,
        "per_site_throughput": dict(cell.per_site_throughput),
        "per_site_latency_ms": dict(cell.per_site_latency_ms),
        "total_throughput": cell.total_throughput,
    }


# -- ablation cells -----------------------------------------------------------


def cell_ablation_threshold(
    r: Optional[int],
    seed: int = 42,
    record_count: int = 300,
    operations_per_client: int = 1500,
    overlap: float = 0.3,
) -> Dict[str, Any]:
    from repro.experiments.ablations import run_threshold_cell

    cell = run_threshold_cell(
        r,
        seed=seed,
        record_count=record_count,
        operations_per_client=operations_per_client,
        overlap=overlap,
    )
    return {
        "label": cell.label,
        "total_throughput": cell.total_throughput,
        "write_mean_ms": cell.write_mean_ms,
        "tokens_recalled": cell.tokens_recalled,
    }


def cell_ablation_prediction(
    policy: str,
    seed: int = 42,
    record_count: int = 8,
    phase_len: int = 32,
    phases: int = 6,
) -> Dict[str, Any]:
    from repro.experiments.ablations import run_prediction_cell

    cell = run_prediction_cell(
        policy,
        seed=seed,
        record_count=record_count,
        phase_len=phase_len,
        phases=phases,
    )
    return {
        "policy": cell.policy,
        "total_throughput": cell.total_throughput,
        "write_mean_ms": cell.write_mean_ms,
    }


def cell_ablation_bulk_tokens(
    policy: str, seed: int = 42, rounds: int = 30
) -> Dict[str, Any]:
    from repro.experiments.ablations import run_bulk_token_cell

    cell = run_bulk_token_cell(policy, seed=seed, rounds=rounds)
    return {
        "label": cell.label,
        "acquisitions_per_sec": cell.acquisitions_per_sec,
    }


def cell_ablation_read_mode(
    mode: str,
    seed: int = 42,
    record_count: int = 100,
    operations_per_client: int = 1000,
    write_fraction: float = 0.05,
) -> Dict[str, Any]:
    from repro.experiments.ablations import run_read_mode_cell

    cell = run_read_mode_cell(
        mode,
        seed=seed,
        record_count=record_count,
        operations_per_client=operations_per_client,
        write_fraction=write_fraction,
    )
    return {
        "mode": cell.mode,
        "read_mean_ms": cell.read_mean_ms,
        "total_throughput": cell.total_throughput,
    }


def cell_ablation_hub_placement(
    l2_site: str,
    seed: int = 42,
    record_count: int = 200,
    operations_per_client: int = 1000,
    write_fraction: float = 0.5,
) -> Dict[str, Any]:
    from repro.experiments.ablations import run_hub_placement_cell

    cell = run_hub_placement_cell(
        l2_site,
        seed=seed,
        record_count=record_count,
        operations_per_client=operations_per_client,
        write_fraction=write_fraction,
    )
    return {
        "l2_site": cell.l2_site,
        "total_throughput": cell.total_throughput,
        "write_mean_ms": cell.write_mean_ms,
    }


# -- lossy soak ---------------------------------------------------------------


def cell_soak(
    seed: int = 3,
    ops_per_actor: int = 40,
    key_count: int = 8,
    quiesce_ms: float = 30000.0,
) -> Dict[str, Any]:
    """The lossy-WAN gray-failure soak as one scenario cell.

    A reduced form of ``tests/test_lossy_soak.py``: ambient loss and
    duplication on every WAN link, the full nemesis fault mix, retrying
    clients at all three sites. The payload reports the four global
    invariants (replica convergence, token exclusivity, per-key
    linearizability, no-double-apply) as data instead of asserting, so
    a soak cell rides the same executor/cache as the figure cells.
    """
    import random

    from repro.consistency import (
        HistoryRecorder,
        check_linearizable_per_key,
    )
    from repro.net import (
        CALIFORNIA,
        FRANKFURT,
        VIRGINIA,
        LinkProfile,
        Network,
        wan_topology,
    )
    from repro.nemesis import Nemesis, NemesisConfig
    from repro.sim import Environment, seeded_rng
    from repro.wankeeper import build_wankeeper_deployment
    from repro.zk import ConnectionLossError, SessionExpiredError

    sites = (VIRGINIA, CALIFORNIA, FRANKFURT)
    keys = [f"/soak/k{i}" for i in range(key_count)]

    env = Environment()
    topo = wan_topology(jitter_fraction=0.1)
    net = Network(env, topo, rng=seeded_rng(seed, "net"))
    deployment = build_wankeeper_deployment(env, net, topo)
    deployment.start()
    deployment.stabilize()
    import itertools

    ambient = LinkProfile(loss=0.02, duplicate=0.02)
    for site_a, site_b in itertools.combinations(sites, 2):
        net.degrade(site_a, site_b, ambient)

    nemesis = Nemesis(
        env,
        net,
        deployment,
        seeded_rng(seed, "nemesis"),
        NemesisConfig(
            interval_ms=1000.0,
            crash_probability=0.2,
            partition_probability=0.1,
            flaky_link_probability=0.15,
            oneway_partition_probability=0.15,
            gray_degrade_probability=0.15,
            repair_after_ms=2500.0,
        ),
    )
    history = HistoryRecorder()
    counter = {"next": 0}
    failures = {"count": 0}
    ops = {"write": 0, "read": 0}
    indeterminate = set()

    def site_client(site):
        client = deployment.client(
            site, session_timeout_ms=30000.0, request_timeout_ms=3000.0
        )
        leader = deployment.site_leader(site)
        if leader is not None and leader.is_alive:
            client.server_addr = leader.client_addr
        return client

    def actor(site, rng):
        client = site_client(site)
        yield client.connect_retrying(max_retries=10)
        for _ in range(ops_per_actor):
            key = rng.choice(keys)
            is_write = rng.random() < 0.6
            start = env.now
            try:
                if is_write:
                    counter["next"] += 1
                    value = counter["next"]
                    yield client.set_data_retrying(
                        key, str(value).encode(), max_retries=10
                    )
                    history.record(site, "write", key, value, start, env.now)
                    ops["write"] += 1
                else:
                    data, _stat = yield client.get_data_retrying(
                        key, max_retries=10
                    )
                    history.record(
                        site,
                        "read",
                        key,
                        int(data) if data else None,
                        start,
                        env.now,
                    )
                    ops["read"] += 1
            except (ConnectionLossError, SessionExpiredError) as exc:
                failures["count"] += 1
                if is_write:
                    indeterminate.add(key)
                if isinstance(exc, SessionExpiredError):
                    client = site_client(site)
                    yield client.connect_retrying(max_retries=10)
            yield env.timeout(rng.uniform(100.0, 600.0))

    def app():
        setup = deployment.client(VIRGINIA)
        yield setup.connect()
        yield setup.create("/soak", b"")
        for key in keys:
            yield setup.create(key, b"")
        yield env.timeout(1000.0)
        nemesis.start()
        procs = [
            env.process(actor(site, random.Random(seed * 1000 + i)))
            for i, site in enumerate(sites)
        ]
        for proc in procs:
            yield proc
        nemesis.stop_and_repair()
        net.restore_all()
        net.heal_all()
        yield env.timeout(quiesce_ms)
        return True

    process = env.process(app())
    deadline = env.now + 3.6e6
    while (
        not process.triggered
        and env.now < deadline
        and env.peek() != float("inf")
    ):
        env.run(until=min(deadline, env.now + 5000.0))
    if not process.triggered:
        raise RuntimeError("soak did not finish within the sim-time budget")
    if not process.ok:
        raise process.exception

    # Invariants, reported as data.
    fingerprints = set(deployment.content_fingerprints().values())
    owners = {}
    for site in sites:
        leader = deployment.site_leader(site)
        for key in leader.site_tokens.owned:
            owners.setdefault(key, []).append(site)
    token_conflicts = sum(1 for held in owners.values() if len(held) > 1)

    checkable = [key for key in keys if key not in indeterminate]
    tree = deployment.servers[0].tree
    now = env.now
    for key in checkable:
        data, _stat = tree.get_data(key)
        history.record(
            "final-check", "read", key, int(data) if data else None, now, now + 1.0
        )
    lin_ops = [
        op
        for op in history.operations
        if op.key in checkable
        and (op.kind == "write" or op.client == "final-check")
    ]
    violations = check_linearizable_per_key(lin_ops, initial=None)
    max_apply = max(
        max(server.apply_counts.values(), default=0)
        for server in deployment.servers
    )
    return {
        "seed": seed,
        "writes": ops["write"],
        "reads": ops["read"],
        "failures": failures["count"],
        "indeterminate_keys": len(indeterminate),
        "converged": len(fingerprints) == 1,
        "token_conflicts": token_conflicts,
        "linearizability_violations": len(violations),
        "max_apply_count": max_apply,
        "nemesis": dict(sorted(nemesis.summary().items())),
    }


# -- fleet-scale cells --------------------------------------------------------


def cell_fleet(**kwargs) -> Dict[str, Any]:
    """One open-loop fleet-tier run (:mod:`repro.fleet`).

    Parameters are :class:`repro.fleet.FleetSpec` fields (all JSON
    scalars). The payload — throughput, token migrations, latency
    sketch percentiles, session accounting — is a pure function of the
    spec: bit-identical across hash seeds and executors, like every
    other cell.
    """
    from repro.fleet import FleetSpec, run_fleet

    return run_fleet(FleetSpec(**kwargs))


def cell_fleet_full(**kwargs) -> Dict[str, Any]:
    """One full-stack fleet cell (:mod:`repro.fleet.full`).

    The open-loop fleet driver injects its ops into a *real*
    ZK/WanKeeper deployment; parameters are
    :class:`repro.fleet.FleetFullSpec` fields (all JSON scalars). The
    payload excludes ``fast_forward``/``recycle_messages`` — those only
    change wall-clock time, so a cell run with either toggle lands on
    the same digestible result.
    """
    from repro.fleet import FleetFullSpec, run_fleet_full

    return run_fleet_full(FleetFullSpec(**kwargs))


def cell_fleet_topology(n_sites: int, seed: int = 42) -> Dict[str, Any]:
    """Fingerprint + shape stats of one generated fleet topology.

    Exists so the cross-executor determinism tests can push topology
    generation through the pool/spawn workers and compare fingerprints.
    """
    from repro.fleet import fleet_sites, fleet_topology, topology_fingerprint

    topology = fleet_topology(n_sites, seed=seed)
    sites = fleet_sites(n_sites, seed=seed)
    delays = [delay for _a, _b, delay in topology.wan_pairs()]
    return {
        "n_sites": n_sites,
        "seed": seed,
        "fingerprint": topology_fingerprint(topology),
        "continents": len({site.continent for site in sites}),
        "pairs": len(delays),
        "min_one_way_ms": min(delays),
        "max_one_way_ms": max(delays),
    }


# -- fuzz cells ---------------------------------------------------------------


def cell_fuzz_case(spec_json: str) -> Dict[str, Any]:
    """One coverage-guided fuzz case (:mod:`repro.fuzz`).

    The declarative case spec travels as its compact canonical JSON string
    so it satisfies the flat-scalar scenario-parameter contract; the cell
    digest is therefore a digest of the spec itself.
    """
    import json

    from repro.fuzz.case import run_fuzz_case

    return run_fuzz_case(json.loads(spec_json))


# -- debug cells (exercised by the runner's own tests) ------------------------


def cell_debug_echo(value: int = 0, sleep_s: float = 0.0) -> Dict[str, Any]:
    """Trivial cell: optionally sleeps (wall clock), then echoes."""
    if sleep_s:
        import time

        time.sleep(sleep_s)
    return {"value": value}


def cell_debug_crash(message: str = "boom") -> Dict[str, Any]:
    """Cell that always raises — exercises failure surfacing."""
    raise RuntimeError(message)


def cell_debug_hang() -> Dict[str, Any]:
    """Cell that never returns — exercises the per-cell timeout."""
    import time

    while True:
        time.sleep(0.1)


def cell_debug_exit(code: int = 17) -> Dict[str, Any]:
    """Cell that kills its worker outright — exercises crash handling.

    ``os._exit`` skips the executor's exception reporting entirely, so the
    parent sees a worker death mid-cell, exactly like a segfault or OOM
    kill would look.
    """
    import os

    os._exit(code)


def cell_debug_quit(message: str = "quitting") -> Dict[str, Any]:
    """Cell that raises ``SystemExit`` — exercises ack-then-die.

    The pool worker's ``BaseException`` path reports the error over the
    pipe and then re-raises, so the worker dies *between* cells: the
    parent must fail only this cell and requeue the rest of the batch,
    not blame the never-started successor.
    """
    raise SystemExit(message)


def cell_debug_pid(tag: int = 0) -> Dict[str, Any]:
    """Cell that reports its worker's pid — exercises warm-pool reuse.

    ``tag`` only differentiates scenario digests so repeated calls are
    distinct cells (and never collapse into one cache entry).
    """
    import os

    return {"tag": tag, "pid": os.getpid()}


CELLS: Dict[str, Callable[..., Any]] = {
    "ycsb_write_ratio": cell_ycsb_write_ratio,
    "fig6": cell_fig6,
    "fig7": cell_fig7,
    "fig8": cell_fig8,
    "fig10": cell_fig10,
    "ablation_threshold": cell_ablation_threshold,
    "ablation_prediction": cell_ablation_prediction,
    "ablation_bulk_tokens": cell_ablation_bulk_tokens,
    "ablation_read_mode": cell_ablation_read_mode,
    "ablation_hub_placement": cell_ablation_hub_placement,
    "soak": cell_soak,
    "fleet": cell_fleet,
    "fleet_full": cell_fleet_full,
    "fleet_topology": cell_fleet_topology,
    "fuzz_case": cell_fuzz_case,
    "debug_echo": cell_debug_echo,
    "debug_crash": cell_debug_crash,
    "debug_hang": cell_debug_hang,
    "debug_exit": cell_debug_exit,
    "debug_pid": cell_debug_pid,
    "debug_quit": cell_debug_quit,
}


def run_cell(scenario) -> Any:
    """Execute ``scenario``'s cell function with its parameters."""
    try:
        fn = CELLS[scenario.cell]
    except KeyError:
        raise KeyError(
            f"unknown cell {scenario.cell!r}; registered: {sorted(CELLS)}"
        ) from None
    return fn(**scenario.kwargs)
