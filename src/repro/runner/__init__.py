"""Parallel scenario runner with content-addressed result caching.

The evaluation surface of the paper (fig4--fig10, the ablations, the
lossy soak) decomposes into dozens of *independent* seeded simulation
cells. This package turns each cell into a declarative
:class:`~repro.runner.scenario.Scenario` spec, fans the cells across
worker processes (:mod:`repro.runner.executor`), and memoizes their
JSON-plain result payloads in an on-disk content-addressed cache keyed
by (scenario digest, code digest) (:mod:`repro.runner.cache`) — so a
warm re-run of ``repro experiments --all`` is near-instant and only
changed cells are ever re-simulated.

Determinism contract: a scenario's payload is a pure function of its
spec and the code digest. The executor preserves bit-identical payloads
whether a cell runs in-process (``--jobs 1``) or in a spawned worker,
and renderers order output by the scenario list, never by completion
order — parallel runs print byte-identical tables.
"""

from repro.runner.cache import ResultCache, code_digest, default_cache_dir
from repro.runner.executor import CellFailure, ExecutionReport, ScenarioError, execute
from repro.runner.pool import WorkerPool, get_pool, pool_key, shutdown_pool
from repro.runner.scenario import Scenario
from repro.runner.suites import SUITES, build_suite, render_suite

__all__ = [
    "CellFailure",
    "ExecutionReport",
    "ResultCache",
    "SUITES",
    "Scenario",
    "ScenarioError",
    "WorkerPool",
    "build_suite",
    "code_digest",
    "default_cache_dir",
    "execute",
    "get_pool",
    "pool_key",
    "render_suite",
    "shutdown_pool",
]
