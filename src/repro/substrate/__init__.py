"""Pluggable broadcast-substrate registry.

The coordination service (:mod:`repro.zk.server`) is written against a
*broadcast substrate*: a per-server peer object that turns submitted
transactions into a committed, replicated stream. Any protocol that
honors the contract below can slot under the same ZK service, WanKeeper
layer, fleet driver, and experiment figures.

Peer contract (duck-typed; :class:`repro.zab.peer.ZabPeer` is the
reference implementation, :class:`repro.wpaxos.peer.WPaxosPeer` the
first alternate):

* construction — ``factory(env, net, addr, config, name="")`` where
  ``config`` is an :class:`repro.zab.config.EnsembleConfig` (voters +
  observers + timing knobs);
* lifecycle — ``start()``, ``crash()``, ``restart()`` (durable state
  survives a crash; volatile state does not);
* propose/commit ordering — ``submit(txn)`` on a server that reports
  ``is_leader``; ``forward_submit(txn, ctx=None)`` on one that does not;
  every committed txn is delivered exactly once per live replica through
  the ``on_commit(zxid, txn)`` hook, in an order that is total per
  ordering domain (the whole ensemble for zab; one object for wpaxos);
* leadership + epoch change — ``is_leader``, ``leader_addr``, ``state``
  (a :class:`repro.zab.peer.PeerState`), and ``current_epoch`` (a
  non-decreasing regime number while the peer is up);
* observer/learner hooks — non-voting members listed in
  ``config.observers`` follow the commit stream and serve reads;
* snapshot-resync — a peer that rejoins or detects a gap brings itself
  back to the committed prefix; ``on_reset(peer)`` fires if that resync
  rewrites history (SNAP in zab) so the state machine above can rebuild
  from zero;
* observability — ``sentinel`` and ``_trace`` attributes (``None`` off),
  adopted by :mod:`repro.invariants` / :mod:`repro.trace`.

``single_leader`` substrates serialize all objects through one elected
proposer; WanKeeper's broker layer (site-local leader + L2 hub) requires
that shape and refuses multileader substrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

__all__ = [
    "SubstrateSpec",
    "SUBSTRATES",
    "register_substrate",
    "get_substrate",
    "create_peer",
    "substrate_names",
]


@dataclass(frozen=True)
class SubstrateSpec:
    """One registered broadcast substrate."""

    name: str
    #: ``factory(env, net, addr, config, name="") -> peer``
    factory: Callable[..., Any]
    #: True when exactly one member proposes at a time (Zab); WanKeeper's
    #: broker layer requires this shape. Multileader substrates (WPaxos)
    #: report every live voter as a proposer.
    single_leader: bool
    description: str = ""


SUBSTRATES: Dict[str, SubstrateSpec] = {}


def register_substrate(spec: SubstrateSpec) -> None:
    if spec.name in SUBSTRATES:
        raise ValueError(f"substrate {spec.name!r} already registered")
    SUBSTRATES[spec.name] = spec


def get_substrate(name: str) -> SubstrateSpec:
    try:
        return SUBSTRATES[name]
    except KeyError:
        raise ValueError(
            f"unknown substrate {name!r}; pick from {substrate_names()}"
        ) from None


def create_peer(substrate: str, env, net, addr, config, name: str = ""):
    """Build one substrate peer for a server."""
    return get_substrate(substrate).factory(env, net, addr, config, name=name)


def substrate_names() -> Tuple[str, ...]:
    return tuple(sorted(SUBSTRATES))


def _register_builtins() -> None:
    from repro.zab.peer import ZabPeer
    from repro.wpaxos.peer import WPaxosPeer

    register_substrate(
        SubstrateSpec(
            name="zab",
            factory=ZabPeer,
            single_leader=True,
            description="Zab atomic broadcast: elected leader, "
            "majority quorums, one total order",
        )
    )
    register_substrate(
        SubstrateSpec(
            name="wpaxos",
            factory=WPaxosPeer,
            single_leader=False,
            description="WPaxos multileader: per-object ownership, "
            "flexible grid quorums, phase-1 ballot steals",
        )
    )


_register_builtins()
