"""The bookie: a ledger storage server.

Stores (ledger, entry) -> payload with a small configurable write delay
standing in for the journal fsync. Bookies are deliberately simple — the
paper's benchmark stresses the *coordination* path, and "BookKeeper removes
ZooKeeper out of the critical path of data replication" (§IV-B).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bookkeeper.messages import (
    AddAck,
    AddEntry,
    FenceAck,
    FenceLedger,
    ReadEntry,
    ReadReply,
)
from repro.net.topology import NodeAddress
from repro.net.transport import Network
from repro.sim.kernel import Environment, Interrupt
from repro.sim.store import StoreClosed

__all__ = ["Bookie"]


class Bookie:
    """One storage server."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        addr: NodeAddress,
        journal_delay_ms: float = 0.5,
    ):
        self.env = env
        self.net = net
        self.addr = addr
        self.journal_delay_ms = journal_delay_ms
        self.inbox = net.register(addr)
        self._entries: Dict[Tuple[int, int], bytes] = {}
        self._fenced: set = set()
        self.entries_stored = 0
        self.adds_rejected = 0
        self._alive = False
        self._proc = None

    def start(self) -> None:
        if self._alive:
            raise RuntimeError(f"bookie {self.addr} already started")
        self._alive = True
        self._proc = self.env.process(self._loop(), name=f"bookie.{self.addr}")

    def crash(self) -> None:
        if not self._alive:
            return
        self._alive = False
        self.net.crash(self.addr)
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("crash")

    def entry(self, ledger_id: int, entry_id: int) -> Optional[bytes]:
        return self._entries.get((ledger_id, entry_id))

    def _loop(self):
        while self._alive:
            try:
                envelope = yield self.inbox.get()
            except (StoreClosed, Interrupt):
                return
            msg = envelope.body
            if isinstance(msg, AddEntry):
                if msg.ledger_id in self._fenced:
                    self.adds_rejected += 1
                    self.net.send(
                        self.addr,
                        msg.sender,
                        AddAck(msg.ledger_id, msg.entry_id, ok=False),
                    )
                    continue
                yield self.env.timeout(self.journal_delay_ms)
                if not self._alive:
                    return
                self._entries[(msg.ledger_id, msg.entry_id)] = msg.payload
                self.entries_stored += 1
                self.net.send(
                    self.addr, msg.sender, AddAck(msg.ledger_id, msg.entry_id)
                )
            elif isinstance(msg, FenceLedger):
                self._fenced.add(msg.ledger_id)
                last = max(
                    (
                        entry_id
                        for ledger_id, entry_id in self._entries
                        if ledger_id == msg.ledger_id
                    ),
                    default=-1,
                )
                self.net.send(
                    self.addr, msg.sender, FenceAck(msg.ledger_id, last)
                )
            elif isinstance(msg, ReadEntry):
                payload = self._entries.get((msg.ledger_id, msg.entry_id))
                self.net.send(
                    self.addr,
                    msg.sender,
                    ReadReply(msg.ledger_id, msg.entry_id, payload),
                )
            else:
                raise ValueError(f"bookie {self.addr}: unexpected {msg!r}")
