"""BookKeeper client: ledger lifecycle + quorum appends.

Ledger metadata lives in the coordination service exactly as in BookKeeper
(§IV-B): "the ensemble composition of ledgers, write quorum size, ledger
status, and the last entry successfully written to a closed ledger".
Entry appends go straight to bookies and wait for a write quorum of acks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.bookkeeper.messages import (
    AddAck,
    AddEntry,
    FenceAck,
    FenceLedger,
    ReadEntry,
    ReadReply,
)
from repro.net.topology import NodeAddress
from repro.net.transport import Network
from repro.sim.kernel import Environment, Event, Interrupt
from repro.sim.store import StoreClosed
from repro.zk.client import ZkClient
from repro.zk.errors import NodeExistsError

__all__ = ["BookKeeperClient", "LedgerFencedError", "LedgerHandle"]

LEDGERS_ROOT = "/ledgers"


class LedgerFencedError(Exception):
    """An add was rejected: the ledger was fenced by a recovery-opener."""


@dataclass
class LedgerHandle:
    """An open ledger from the writer's (or reader's) point of view."""

    ledger_id: int
    path: str
    ensemble: List[NodeAddress]
    write_quorum: int
    state: str = "open"  # open | closed
    last_entry: int = -1
    next_entry: int = 0


def _encode_metadata(handle: LedgerHandle) -> bytes:
    return repr(
        {
            "ensemble": [(addr.site, addr.name) for addr in handle.ensemble],
            "write_quorum": handle.write_quorum,
            "state": handle.state,
            "last_entry": handle.last_entry,
        }
    ).encode()


def _decode_metadata(ledger_id: int, path: str, data: bytes) -> LedgerHandle:
    raw = ast.literal_eval(data.decode())
    return LedgerHandle(
        ledger_id=ledger_id,
        path=path,
        ensemble=[NodeAddress(site, name) for site, name in raw["ensemble"]],
        write_quorum=raw["write_quorum"],
        state=raw["state"],
        last_entry=raw["last_entry"],
        next_entry=raw["last_entry"] + 1,
    )


class BookKeeperClient:
    """A BookKeeper writer/reader bound to a coordination client."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        addr: NodeAddress,
        zk: ZkClient,
        bookies: List[NodeAddress],
        ensemble_size: int = 3,
        write_quorum: int = 2,
        add_timeout_ms: float = 10000.0,
    ):
        if ensemble_size > len(bookies):
            raise ValueError("not enough bookies for the ensemble size")
        if write_quorum > ensemble_size:
            raise ValueError("write quorum larger than ensemble")
        self.env = env
        self.net = net
        self.addr = addr
        self.zk = zk
        self.bookies = list(bookies)
        self.ensemble_size = ensemble_size
        self.write_quorum = write_quorum
        self.add_timeout_ms = add_timeout_ms

        self.inbox = net.register(addr)
        self._pending_adds: Dict[Tuple[int, int], Tuple[Set[NodeAddress], Event]] = {}
        self._pending_reads: Dict[Tuple[int, int], Event] = {}
        # ledger -> (acks: {bookie: last_entry}, event, quorum needed)
        self._pending_fences: Dict[int, Tuple[Dict[NodeAddress, int], Event, int]] = {}
        self.entries_written = 0

        self._alive = True
        self._proc = env.process(self._pump(), name=f"bk.{addr}")

    # -------------------------------------------------------------- ledgers

    def create_ledger(self):
        """Generator: create a new ledger; returns a LedgerHandle."""
        try:
            yield self.zk.create(LEDGERS_ROOT, b"")
        except NodeExistsError:
            pass
        path = yield self.zk.create(
            f"{LEDGERS_ROOT}/ledger-", b"", sequential=True
        )
        ledger_id = int(path.rsplit("-", 1)[1])
        handle = LedgerHandle(
            ledger_id=ledger_id,
            path=path,
            ensemble=self.bookies[: self.ensemble_size],
            write_quorum=self.write_quorum,
        )
        yield self.zk.set_data(path, _encode_metadata(handle))
        return handle

    def close_ledger(self, handle: LedgerHandle):
        """Generator: seal the ledger and record the last entry."""
        handle.state = "closed"
        handle.last_entry = handle.next_entry - 1
        yield self.zk.set_data(handle.path, _encode_metadata(handle))

    def open_ledger(self, ledger_id: int):
        """Generator: read a ledger's metadata; returns a LedgerHandle."""
        path = f"{LEDGERS_ROOT}/ledger-{ledger_id:010d}"
        data, _stat = yield self.zk.get_data(path)
        return _decode_metadata(ledger_id, path, data)

    def recover_ledger(self, ledger_id: int):
        """Generator: recovery-open — fence the ensemble, decide the last
        entry, seal the metadata (BookKeeper's fencing protocol).

        After this completes, the previous writer's adds fail with
        :class:`LedgerFencedError` and readers agree on the ledger's end.
        """
        handle = yield from self.open_ledger(ledger_id)
        event = Event(self.env)
        quorum = len(handle.ensemble) - handle.write_quorum + 1
        self._pending_fences[ledger_id] = ({}, event, quorum)
        for bookie in handle.ensemble:
            self.net.send(
                self.addr, bookie, FenceLedger(self.addr, ledger_id)
            )
        self._guard(event, ledger_id, self._pending_fences)
        last_entry = yield event
        handle.state = "closed"
        handle.last_entry = last_entry
        handle.next_entry = last_entry + 1
        yield self.zk.set_data(handle.path, _encode_metadata(handle))
        return handle

    # -------------------------------------------------------------- entries

    def add_entry(self, handle: LedgerHandle, payload: bytes):
        """Generator: append an entry; completes at write-quorum acks."""
        if handle.state != "open":
            raise RuntimeError(f"ledger {handle.ledger_id} is closed")
        entry_id = handle.next_entry
        handle.next_entry += 1
        event = Event(self.env)
        self._pending_adds[(handle.ledger_id, entry_id)] = (set(), event)
        for bookie in handle.ensemble:
            self.net.send(
                self.addr,
                bookie,
                AddEntry(self.addr, handle.ledger_id, entry_id, payload),
            )
        self._guard(event, (handle.ledger_id, entry_id), self._pending_adds)
        yield event
        self.entries_written += 1
        return entry_id

    def read_entry(self, handle: LedgerHandle, entry_id: int):
        """Generator: read one entry from the ensemble."""
        event = Event(self.env)
        self._pending_reads[(handle.ledger_id, entry_id)] = event
        for bookie in handle.ensemble:
            self.net.send(
                self.addr, bookie, ReadEntry(self.addr, handle.ledger_id, entry_id)
            )
        self._guard(event, (handle.ledger_id, entry_id), self._pending_reads)
        payload = yield event
        return payload

    # ---------------------------------------------------------------- guts

    def _guard(self, event: Event, key, table) -> None:
        def watchdog():
            yield self.env.timeout(self.add_timeout_ms)
            if not event.triggered:
                table.pop(key, None)
                event.fail(TimeoutError(f"bookkeeper op timed out: {key}"))

        self.env.process(watchdog(), name=f"bk.{self.addr}.guard")

    def _pump(self):
        while self._alive:
            try:
                envelope = yield self.inbox.get()
            except (StoreClosed, Interrupt):
                return
            msg = envelope.body
            if isinstance(msg, AddAck):
                key = (msg.ledger_id, msg.entry_id)
                pending = self._pending_adds.get(key)
                if pending is None:
                    continue
                acked, event = pending
                if not msg.ok:
                    # Fenced by a recovery-opener: the writer lost the
                    # ledger; no quorum can form any more.
                    del self._pending_adds[key]
                    if not event.triggered:
                        event.fail(
                            LedgerFencedError(
                                f"ledger {msg.ledger_id} fenced during add "
                                f"of entry {msg.entry_id}"
                            )
                        )
                    continue
                acked.add(envelope.src)
                if len(acked) >= self.write_quorum and not event.triggered:
                    del self._pending_adds[key]
                    event.succeed(msg.entry_id)
            elif isinstance(msg, FenceAck):
                pending = self._pending_fences.get(msg.ledger_id)
                if pending is None:
                    continue
                acks, event, quorum = pending
                acks[envelope.src] = msg.last_entry
                if len(acks) >= quorum and not event.triggered:
                    del self._pending_fences[msg.ledger_id]
                    event.succeed(max(acks.values()))
            elif isinstance(msg, ReadReply):
                key = (msg.ledger_id, msg.entry_id)
                event = self._pending_reads.get(key)
                if event is None or event.triggered:
                    continue
                if msg.payload is not None:
                    del self._pending_reads[key]
                    event.succeed(msg.payload)
            else:
                raise ValueError(f"bk client {self.addr}: unexpected {msg!r}")

    def stop(self) -> None:
        self._alive = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stopped")
