"""Apache BookKeeper-style replicated log service (paper §IV-B use case).

BookKeeper stores log segments (*ledgers*) on storage servers (*bookies*)
and keeps ledger **metadata** — ensemble composition, quorum size, state,
last entry — in the coordination service. The data path (entry appends to
bookies) never touches coordination; the metadata path does, which is
exactly why a centralized coordinator bottlenecks WAN writers and why
swapping in WanKeeper restores locality (§IV-B).

This package implements bookies, the ledger client, and the paper's
geo-distributed *iterating writers* benchmark topology (Fig. 8a): writers
take a coordination-service lock on a shared logical log, record their
ledger in a shared metadata znode, append entries to their local bookies
for a fixed duration, then hand the log over.
"""

from repro.bookkeeper.bookie import Bookie
from repro.bookkeeper.client import (
    BookKeeperClient,
    LedgerFencedError,
    LedgerHandle,
)

__all__ = ["Bookie", "BookKeeperClient", "LedgerFencedError", "LedgerHandle"]
