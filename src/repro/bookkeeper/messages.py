"""Bookie wire messages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["AddAck", "AddEntry", "FenceAck", "FenceLedger", "ReadEntry", "ReadReply"]


@dataclass(frozen=True)
class AddEntry:
    sender: Any  # NodeAddress of the client
    ledger_id: int
    entry_id: int
    payload: bytes


@dataclass(frozen=True)
class AddAck:
    ledger_id: int
    entry_id: int
    ok: bool = True


@dataclass(frozen=True)
class ReadEntry:
    sender: Any
    ledger_id: int
    entry_id: int


@dataclass(frozen=True)
class ReadReply:
    ledger_id: int
    entry_id: int
    payload: Optional[bytes]  # None = not stored here


@dataclass(frozen=True)
class FenceLedger:
    """Recovery-opener -> bookie: reject all further adds to this ledger.

    BookKeeper's fencing protocol: a reader recovering a ledger fences it
    on a quorum of bookies so the (possibly still alive) old writer cannot
    append after recovery has decided the last entry.
    """

    sender: Any
    ledger_id: int


@dataclass(frozen=True)
class FenceAck:
    ledger_id: int
    last_entry: int  # highest entry id this bookie stores (-1 = none)
