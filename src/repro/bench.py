"""Kernel/transport/end-to-end throughput benchmarks: ``repro bench``.

Three workloads, each reporting wall-clock throughput of the simulation
substrate itself (not simulated-time throughput, which is what the figure
experiments measure):

* **kernel** — a ring of processes exchanging items through
  :class:`~repro.sim.store.Store` with interleaved timeouts; measures raw
  scheduler events/sec with no network or protocol stack involved.
* **burst** — zero-delay ``call_soon`` cascades; measures the same-instant
  batched run-to-quiescence fast path in isolation.
* **transport** — a producer/consumer pair streaming messages across one
  WAN link; measures messages/sec through :class:`~repro.net.Network`.
* **ycsb** — a full seeded YCSB run against the replicated ZooKeeper world
  (three sites, one client each); measures end-to-end events/sec and
  ops/wall-sec through the entire stack.

A second, protocol-layer group behind ``--server`` benches the replicated
state machine with no kernel or network in the loop:

* **datatree** — seeded apply/read mix against a bare DataTree (wide
  parent, get_data/exists/get_children/set_data);
* **watches** — watch register/fire/miss/drop-session churn through
  WatchManager;
* **tokens** — WanKeeper token grant/recall/migration loop through
  SiteTokenState/HubTokenState and token_key(s).

``repro bench`` writes ``BENCH_kernel.json`` in the current directory (the
repo root, when run from there); ``--server`` writes ``BENCH_server.json``.
An existing file's ``before`` section is preserved so the committed
artifact keeps the pre-optimization numbers next to the current ones, and
every write appends a ``{commit, label, events_per_sec}`` point to the
file's ``history`` list (``--label`` names the point) so BENCH files keep
a trajectory instead of losing prior numbers. ``--check`` compares a fresh
run against the file's ``after`` section — hardware-normalized via a
calibration loop — and fails when events/sec regresses by more than the
per-bench tolerance (20% for ycsb, 30% elsewhere); CI runs it with
``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "BENCH_FILE",
    "CHECK_TOLERANCE",
    "EXPERIMENTS_BENCH_FILE",
    "SERVER_BENCH_FILE",
    "FLEET_BENCH_FILE",
    "bench_burst",
    "bench_datatree",
    "bench_experiments",
    "bench_fleet",
    "bench_fleet_full",
    "bench_kernel",
    "bench_tokens",
    "bench_transport",
    "bench_watches",
    "bench_ycsb",
    "calibrate",
    "main",
    "run_server_suite",
    "run_suite",
]

BENCH_FILE = "BENCH_kernel.json"
EXPERIMENTS_BENCH_FILE = "BENCH_experiments.json"
SERVER_BENCH_FILE = "BENCH_server.json"
FLEET_BENCH_FILE = "BENCH_fleet.json"

# --check fails when normalized events/sec fall more than this fraction
# below the committed baseline (per-bench overrides in _TOLERANCES).
CHECK_TOLERANCE = 0.30

#: Per-bench --check tolerances. YCSB is the end-to-end headline number
#: and the quietest of the three, so it gets the tighter CI gate.
_TOLERANCES = {"ycsb": 0.20}

#: BENCH files keep at most this many trajectory points.
HISTORY_LIMIT = 20

# --experiments --check fails unless cold parallel beats serial by at
# least this factor (only enforced on >= 2 cores).
EXPERIMENTS_SPEEDUP_FLOOR = 1.0

# (full size, --quick size) for each workload.
_KERNEL_SIZES = {"procs": (50, 20), "rounds": (2000, 400)}
_BURST_SIZES = {"chains": (200, 50), "hops": (2000, 400)}
_TRANSPORT_SIZES = {"messages": (60000, 10000)}
_YCSB_SIZES = {"operations": (1500, 300), "records": (200, 100)}
_DATATREE_SIZES = {"children": (400, 80), "ops": (80000, 8000)}
_WATCH_SIZES = {"paths": (150, 40), "sessions": (100, 25), "ops": (60000, 6000)}
_TOKEN_SIZES = {"keys": (240, 48), "ops": (50000, 5000)}


def _size(table: Dict[str, Any], key: str, quick: bool) -> int:
    full, small = table[key]
    return small if quick else full


# -- workloads ---------------------------------------------------------------


def bench_kernel(quick: bool = False) -> Dict[str, Any]:
    """Scheduler-only ring benchmark: Store ping-pong plus timeouts."""
    from repro.sim import Environment, Store

    n_procs = _size(_KERNEL_SIZES, "procs", quick)
    n_rounds = _size(_KERNEL_SIZES, "rounds", quick)
    env = Environment()
    stores = [Store(env) for _ in range(n_procs)]

    def actor(env, i):
        nxt = stores[(i + 1) % n_procs]
        mine = stores[i]
        for r in range(n_rounds):
            yield env.timeout(0.1)
            nxt.put(r)
            yield mine.get()

    for i in range(n_procs):
        env.process(actor(env, i), name=f"actor{i}")
    started = time.perf_counter()
    env.run()
    wall = time.perf_counter() - started
    return {
        "events": env._seq,
        "wall_s": wall,
        "events_per_sec": env._seq / wall,
    }


def bench_burst(quick: bool = False) -> Dict[str, Any]:
    """Same-instant cascade benchmark: zero-delay callback chains.

    Every event after the opening timeout is scheduled at the *current*
    instant (``call_soon`` chains — the shape transport delivery and Zab
    commit fan-out generate), so the run measures the batched
    run-to-quiescence fast path with no heap traffic at all.
    """
    from repro.sim import Environment

    n_chains = _size(_BURST_SIZES, "chains", quick)
    n_hops = _size(_BURST_SIZES, "hops", quick)
    env = Environment()
    done = [0]

    def hop(remaining):
        if remaining:
            env.call_soon(hop, remaining - 1)
        else:
            done[0] += 1

    def kick(_arg):
        for _ in range(n_chains):
            env.call_soon(hop, n_hops)

    env.call_in(1.0, kick)
    started = time.perf_counter()
    env.run()
    wall = time.perf_counter() - started
    assert done[0] == n_chains
    return {
        "events": env._seq,
        "wall_s": wall,
        "events_per_sec": env._seq / wall,
    }


def bench_transport(quick: bool = False) -> Dict[str, Any]:
    """One-link streaming benchmark through the Network layer."""
    from repro.net import Network, wan_topology
    from repro.net.topology import NodeAddress
    from repro.sim import Environment

    n_messages = _size(_TRANSPORT_SIZES, "messages", quick)
    env = Environment()
    topo = wan_topology(jitter_fraction=0.0)
    net = Network(env, topo)
    src = NodeAddress("virginia", "src")
    dst = NodeAddress("california", "dst")
    net.register(src)
    inbox = net.register(dst)
    received = [0]

    def producer(env):
        for i in range(n_messages):
            net.send(src, dst, i)
            if i % 100 == 99:
                yield env.timeout(1.0)

    def consumer(env):
        while received[0] < n_messages:
            yield inbox.get()
            received[0] += 1

    env.process(producer(env), name="producer")
    env.process(consumer(env), name="consumer")
    started = time.perf_counter()
    env.run()
    wall = time.perf_counter() - started
    assert received[0] == n_messages
    return {
        "messages": n_messages,
        "wall_s": wall,
        "msgs_per_sec": n_messages / wall,
        "events": env._seq,
        "events_per_sec": env._seq / wall,
    }


def bench_ycsb(quick: bool = False, seed: int = 42) -> Dict[str, Any]:
    """End-to-end seeded YCSB run against the replicated ZooKeeper world."""
    from repro.experiments.common import build_world
    from repro.sim import seeded_rng
    from repro.workloads.driver import ClientPlan, YcsbSpec, run_ycsb
    from repro.workloads.stats import LatencyRecorder

    operations = _size(_YCSB_SIZES, "operations", quick)
    records = _size(_YCSB_SIZES, "records", quick)
    started = time.perf_counter()
    world = build_world("zk", seed=seed)
    spec = YcsbSpec(
        record_count=records, operation_count=operations, write_fraction=0.5
    )
    plans = []
    for i, site in enumerate(("virginia", "california", "frankfurt")):
        plans.append(
            ClientPlan(
                world.client(site),
                seeded_rng(seed, f"client{i}"),
                LatencyRecorder(site),
            )
        )
    run_ycsb(world.env, plans, spec)
    wall = time.perf_counter() - started
    ops = sum(plan.recorder.count() for plan in plans)
    return {
        "ops": ops,
        "wall_s": wall,
        "ops_per_wall_sec": ops / wall,
        "events": world.env._seq,
        "events_per_sec": world.env._seq / wall,
        "messages": world.net.messages_sent,
    }


# -- server-layer (protocol/state-machine) microbenchmarks --------------------


def bench_datatree(quick: bool = False, seed: int = 42) -> Dict[str, Any]:
    """Seeded apply/read mix against a bare DataTree (no kernel, no net).

    One wide parent with hundreds of children — the shape that makes
    get_children and per-read Stat allocation expensive — driven with a
    precomputed 10% set_data / 90% read schedule so the timed loop does
    nothing but DataTree work.
    """
    from repro.sim import seeded_rng
    from repro.zab.zxid import Zxid
    from repro.zk.data_tree import DataTree
    from repro.zk.ops import CreateOp, SetDataOp

    n_children = _size(_DATATREE_SIZES, "children", quick)
    n_ops = _size(_DATATREE_SIZES, "ops", quick)
    rng = seeded_rng(seed, "bench-datatree")
    tree = DataTree()
    counter = [0]

    def next_zxid() -> Zxid:
        counter[0] += 1
        return Zxid(1, counter[0])

    tree.apply(CreateOp("/bench"), next_zxid(), "bench-session")
    paths = [f"/bench/item{i:04d}" for i in range(n_children)]
    for path in paths:
        tree.apply(CreateOp(path, b"v0"), next_zxid(), "bench-session")

    schedule = []
    for index in range(n_ops):
        roll = rng.random()
        path = paths[rng.randrange(n_children)]
        if roll < 0.10:
            schedule.append(("set", SetDataOp(path, b"v%d" % index)))
        elif roll < 0.45:
            schedule.append(("get", path))
        elif roll < 0.70:
            schedule.append(("exists", path))
        else:
            schedule.append(("children", "/bench"))

    started = time.perf_counter()
    for kind, arg in schedule:
        if kind == "get":
            tree.get_data(arg)
        elif kind == "exists":
            tree.exists(arg)
        elif kind == "children":
            tree.get_children(arg)
        else:
            tree.apply(arg, next_zxid(), "bench-session")
    wall = time.perf_counter() - started
    return {"ops": n_ops, "wall_s": wall, "ops_per_sec": n_ops / wall}


def bench_watches(quick: bool = False, seed: int = 42) -> Dict[str, Any]:
    """Watch register/fire/miss/drop churn through WatchManager.

    The mix includes fires on never-watched paths (the common case on a
    busy server: most committed writes touch paths nobody watches) and
    periodic whole-session drops.
    """
    from repro.sim import seeded_rng
    from repro.zk.records import WatchEvent, WatchType
    from repro.zk.watches import WatchManager

    n_paths = _size(_WATCH_SIZES, "paths", quick)
    n_sessions = _size(_WATCH_SIZES, "sessions", quick)
    n_ops = _size(_WATCH_SIZES, "ops", quick)
    rng = seeded_rng(seed, "bench-watches")
    paths = [f"/w/p{i:03d}" for i in range(n_paths)]
    cold = [f"/cold/p{i:03d}" for i in range(n_paths)]
    sessions = [f"sess-{i:03d}" for i in range(n_sessions)]
    manager = WatchManager()

    schedule = []
    for _ in range(n_ops):
        roll = rng.random()
        path = paths[rng.randrange(n_paths)]
        session = sessions[rng.randrange(n_sessions)]
        if roll < 0.25:
            schedule.append(("data", path, session))
        elif roll < 0.40:
            schedule.append(("child", path, session))
        elif roll < 0.70:
            schedule.append(
                ("fire", WatchEvent(WatchType.NODE_DATA_CHANGED, path), None)
            )
        elif roll < 0.97:
            miss = cold[rng.randrange(n_paths)]
            schedule.append(
                ("fire", WatchEvent(WatchType.NODE_CHILDREN_CHANGED, miss), None)
            )
        else:
            schedule.append(("drop", session, None))

    fired = 0
    started = time.perf_counter()
    for kind, arg, session in schedule:
        if kind == "fire":
            fired += len(manager.trigger(arg))
        elif kind == "data":
            manager.add_data_watch(arg, session)
        elif kind == "child":
            manager.add_child_watch(arg, session)
        else:
            manager.drop_session(arg)
    wall = time.perf_counter() - started
    return {
        "ops": n_ops,
        "fired": fired,
        "wall_s": wall,
        "ops_per_sec": n_ops / wall,
    }


def bench_tokens(quick: bool = False, seed: int = 42) -> Dict[str, Any]:
    """WanKeeper token grant/recall/migration loop, three simulated sites.

    Drives SiteTokenState/HubTokenState plus token_key/token_keys with a
    precomputed write mix (plain set_data, bulk-token sequential deletes,
    sequential creates) — every write resolves its keys, migrates tokens
    between sites through the hub when missing, and admits/retires the
    inflight count, exactly the per-commit bookkeeping the brokers do.
    """
    from repro.sim import seeded_rng
    from repro.wankeeper.tokens import (
        HubTokenState,
        SiteTokenState,
        token_key,
        token_keys,
    )
    from repro.zk.ops import CreateOp, DeleteOp, SetDataOp

    n_keys = _size(_TOKEN_SIZES, "keys", quick)
    n_ops = _size(_TOKEN_SIZES, "ops", quick)
    rng = seeded_rng(seed, "bench-tokens")
    plain = [f"/app/key{i:04d}" for i in range(n_keys)]
    queues = [f"/queue{i:02d}" for i in range(12)]
    site_names = ("virginia", "california", "frankfurt")
    sites = {name: SiteTokenState(name) for name in site_names}
    hub = HubTokenState()

    schedule = []
    for index in range(n_ops):
        roll = rng.random()
        site = site_names[rng.randrange(3)]
        if roll < 0.55:
            op = SetDataOp(plain[rng.randrange(n_keys)], b"")
        elif roll < 0.75:
            queue = queues[rng.randrange(len(queues))]
            op = DeleteOp(f"{queue}/n-{index % 1000:010d}")
        elif roll < 0.90:
            queue = queues[rng.randrange(len(queues))]
            op = CreateOp(f"{queue}/n-", sequential=True)
        else:
            schedule.append(("probe", site, plain[rng.randrange(n_keys)]))
            continue
        schedule.append(("write", site, op))

    started = time.perf_counter()
    for kind, site, arg in schedule:
        state = sites[site]
        if kind == "probe":
            hub.where(token_key(arg))
            continue
        keys = token_keys(arg)
        if not state.holds_all(keys):
            for key in sorted(keys):
                if state.holds(key):
                    continue
                owner = hub.where(key)
                if owner is not None and owner != site:
                    other = sites[owner]
                    other.start_recall(key)
                    other.release(key)
                    hub.accept_return(key)
                hub.grant(key, site)
                state.grant(key)
        state.admit(keys)
        ready = state.retire(keys)
        for key in sorted(ready):
            state.release(key)
            hub.accept_return(key)
    wall = time.perf_counter() - started
    return {"ops": n_ops, "wall_s": wall, "ops_per_sec": n_ops / wall}


# -- fleet-tier memory/throughput benchmark -----------------------------------


def bench_fleet(quick: bool = False, seed: int = 42) -> Dict[str, Any]:
    """Memory/throughput profile of the fleet suite's cells.

    Runs exactly the cells the ``fleet`` experiment suite commits (site
    sweep + offered-load sweep), measuring per cell: wall-clock seconds,
    tracemalloc traced peak (the gated number — it counts only Python
    allocations, so it is stable across machines), sessions per GB of
    traced peak, and the process ``ru_maxrss`` high-water mark
    (informational only: it never shrinks and includes the interpreter).

    The anchor cell — the largest session count — is run twice and its
    payloads compared, so the BENCH file also certifies the fleet tier's
    determinism contract. Peak-RSS numbers live *here* and never in the
    deterministic cell payloads.
    """
    import resource
    import tracemalloc

    from repro.runner.cells import CELLS
    from repro.runner.suites import build_suite

    scenarios = build_suite("fleet", quick, seed)
    cell_fn = CELLS["fleet"]
    cells: List[Dict[str, Any]] = []
    seen = set()
    anchor = None
    for scenario in scenarios:
        digest = scenario.digest()
        if digest in seen:
            continue
        seen.add(digest)
        kwargs = scenario.kwargs
        tracemalloc.start()
        started = time.perf_counter()
        payload = cell_fn(**kwargs)
        wall = time.perf_counter() - started
        _, traced_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        peak_mb = traced_peak / 1e6
        record = {
            "label": scenario.label or scenario.cell,
            "n_sites": payload["n_sites"],
            "sessions": payload["sessions"],
            "load_multiplier": kwargs.get("load_multiplier", 1.0),
            "offered_ops_per_sec": payload["offered_ops_per_sec"],
            "throughput_ops_per_sec": payload["throughput_ops_per_sec"],
            "token_migrations": payload["token_migrations"],
            "write_p99_ms": payload["write_p99_ms"],
            "wall_s": round(wall, 3),
            "traced_peak_mb": round(peak_mb, 3),
            "sessions_per_gb": (
                round(payload["sessions"] / (peak_mb / 1000.0), 1)
                if peak_mb
                else None
            ),
            "rss_peak_mb": round(rss_kb / 1024.0, 1),
        }
        cells.append(record)
        if anchor is None or payload["sessions"] > anchor[1]["sessions"]:
            anchor = (scenario, payload)

    # Determinism certificate: re-run the anchor cell and compare.
    anchor_scenario, anchor_payload = anchor
    rerun = cell_fn(**anchor_scenario.kwargs)
    deterministic = json.dumps(rerun, sort_keys=True) == json.dumps(
        anchor_payload, sort_keys=True
    )
    return {
        "quick": quick,
        "seed": seed,
        "cells": cells,
        "max_sessions": max(cell["sessions"] for cell in cells),
        "max_traced_peak_mb": max(cell["traced_peak_mb"] for cell in cells),
        "anchor_label": anchor_scenario.label or anchor_scenario.cell,
        "deterministic": deterministic,
        "full_stack": bench_fleet_full(quick=quick, seed=seed),
    }


# -- full-stack fleet benchmark -----------------------------------------------


#: The sparse-arrival cell demonstrating idle-gap fast-forward: 600k
#: 0.1 ms ticks over one simulated minute with ~2 offered ops/s across
#: all eight sites, so nearly every tick is quiescent. The naive driver
#: pays one kernel wake per tick; fast-forward walks the tick grid
#: inline and only touches the kernel for real arrivals.
FLEET_FULL_SPARSE_PARAMS: Dict[str, Any] = dict(
    n_sites=8,
    sessions_per_site=64,
    duration_ms=60000.0,
    tick_ms=0.1,
    site_ops_per_sec=0.25,
    diurnal_amplitude=0.0,
)


def bench_fleet_full(quick: bool = False, seed: int = 42) -> Dict[str, Any]:
    """Full-stack fleet benchmark: the real protocol stack at 10^4 sessions.

    Three measurements:

    * **anchor** — 8 sites x 1250 *real* sessions against the
      WanKeeper/zab deployment: wall clock, tracemalloc traced peak,
      sessions per GB of traced peak, plus a re-run determinism check.
      Quick mode shortens the driven window but keeps the full session
      count, so the 10^4-session floor is certified on every CI run.
    * **load knee** — offered-load multipliers over the same shape; the
      throughput-vs-offered-load rows show where the real stack's
      completed rate falls away from the offered rate.
    * **fast-forward pair** — the sparse-arrival cell run with idle-gap
      fast-forward on and off. The payloads must be bit-identical (the
      two drivers perform the same draws in the same order) and the
      wall-clock ratio is the committed speedup number.
    """
    import resource
    import tracemalloc

    from repro.fleet import FleetFullSpec, run_fleet_full

    def run_cell(params: Dict[str, Any], trace: bool = False):
        spec = FleetFullSpec(seed=seed, **params)
        if trace:
            tracemalloc.start()
        started = time.perf_counter()
        payload = run_fleet_full(spec)
        wall = time.perf_counter() - started
        peak_mb = None
        if trace:
            _, traced_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peak_mb = traced_peak / 1e6
        return payload, wall, peak_mb

    anchor_params = dict(
        n_sites=8,
        sessions_per_site=1250,
        duration_ms=6000.0 if quick else 15000.0,
    )
    anchor, anchor_wall, anchor_peak = run_cell(anchor_params, trace=True)
    rerun, _, _ = run_cell(anchor_params)
    deterministic = json.dumps(rerun, sort_keys=True) == json.dumps(
        anchor, sort_keys=True
    )
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    knee = []
    for load in (0.5, 1.0, 2.0):
        payload, wall, _ = run_cell(
            dict(
                n_sites=8,
                sessions_per_site=250 if quick else 1250,
                duration_ms=5000.0 if quick else 15000.0,
                load_multiplier=load,
            )
        )
        knee.append(
            {
                "load_multiplier": load,
                "offered_ops_per_sec": payload["offered_ops_per_sec"],
                "throughput_ops_per_sec": payload["throughput_ops_per_sec"],
                "in_flight_at_horizon": payload["in_flight_at_horizon"],
                "write_p99_ms": payload["write_p99_ms"],
                "wall_s": round(wall, 3),
            }
        )

    sparse = dict(FLEET_FULL_SPARSE_PARAMS)
    ff_payload, ff_wall, _ = run_cell({**sparse, "fast_forward": True})
    naive_payload, naive_wall, _ = run_cell({**sparse, "fast_forward": False})
    return {
        "quick": quick,
        "seed": seed,
        "anchor": {
            "system": anchor["system"],
            "substrate": anchor["substrate"],
            "n_sites": anchor["n_sites"],
            "sessions": anchor["sessions"],
            "offered_ops_per_sec": anchor["offered_ops_per_sec"],
            "throughput_ops_per_sec": anchor["throughput_ops_per_sec"],
            "token_migrations": anchor["token_migrations"],
            "messages_sent": anchor["messages_sent"],
            "write_p99_ms": anchor["write_p99_ms"],
            "wall_s": round(anchor_wall, 3),
            "traced_peak_mb": round(anchor_peak, 3),
            "sessions_per_gb": (
                round(anchor["sessions"] / (anchor_peak / 1000.0), 1)
                if anchor_peak
                else None
            ),
            "rss_peak_mb": round(rss_kb / 1024.0, 1),
        },
        "deterministic": deterministic,
        "load_knee": knee,
        "fast_forward": {
            "cell": sparse,
            "ticks": int(round(sparse["duration_ms"] / sparse["tick_ms"])),
            "completed_ops": ff_payload["completed_ops"],
            "wall_s": round(ff_wall, 3),
            "naive_wall_s": round(naive_wall, 3),
            "speedup": round(naive_wall / ff_wall, 2) if ff_wall else None,
            "payloads_identical": ff_payload == naive_payload,
        },
    }


#: --fleet --check ceilings: traced peak per cell (catches per-session
#: object or per-op tuple regressions — the committed cells sit well
#: under 10 MB) and a generous absolute RSS backstop for CI memory
#: limits. The session floor certifies the acceptance criterion.
FLEET_TRACED_PEAK_CEILING_MB = 48.0
FLEET_RSS_CEILING_MB = 2048.0
FLEET_SESSION_FLOOR = {"quick": 10_000, "full": 100_000}

#: Full-stack gates. The anchor must keep >= 10^4 *real* concurrent
#: sessions at >= 8 sites within the traced-peak ceiling; sessions/GB
#: certifies the flyweight-session design (measured ~700k/GB, floored
#: far below to absorb machine variance); the wall ceiling is a
#: generous runaway guard (the committed anchor runs in a few seconds).
#: The fast-forward speedup floor is only asserted on full (non-quick)
#: runs, where the timing is long enough to be stable.
FLEET_FULL_SESSION_FLOOR = 10_000
FLEET_FULL_TRACED_PEAK_CEILING_MB = 64.0
FLEET_FULL_SESSIONS_PER_GB_FLOOR = 200_000.0
FLEET_FULL_WALL_CEILING_S = {"quick": 120.0, "full": 240.0}
FLEET_FULL_SPEEDUP_FLOOR = 2.0


def _check_fleet(results: Dict[str, Any]) -> List[str]:
    failures = []
    floor = FLEET_SESSION_FLOOR["quick" if results["quick"] else "full"]
    if results["max_sessions"] < floor:
        failures.append(
            f"max_sessions {results['max_sessions']:,} is below the "
            f"{floor:,} concurrent-session floor"
        )
    for cell in results["cells"]:
        if cell["traced_peak_mb"] > FLEET_TRACED_PEAK_CEILING_MB:
            failures.append(
                f"{cell['label']}: traced peak {cell['traced_peak_mb']:.1f} "
                f"MB exceeds the {FLEET_TRACED_PEAK_CEILING_MB:.0f} MB "
                "ceiling"
            )
        if cell["rss_peak_mb"] > FLEET_RSS_CEILING_MB:
            failures.append(
                f"{cell['label']}: rss peak {cell['rss_peak_mb']:.0f} MB "
                f"exceeds the {FLEET_RSS_CEILING_MB:.0f} MB backstop"
            )
    if not results["deterministic"]:
        failures.append(
            "anchor cell payloads differ across two runs — the fleet "
            "engine's determinism contract is broken"
        )
    failures += _check_fleet_full(results.get("full_stack"))
    return failures


def _check_fleet_full(full_stack: Optional[Dict[str, Any]]) -> List[str]:
    if not full_stack:
        return []
    failures = []
    anchor = full_stack["anchor"]
    wall_key = "quick" if full_stack["quick"] else "full"
    if anchor["n_sites"] < 8:
        failures.append(
            f"full-stack anchor has {anchor['n_sites']} sites (< 8)"
        )
    if anchor["sessions"] < FLEET_FULL_SESSION_FLOOR:
        failures.append(
            f"full-stack anchor sessions {anchor['sessions']:,} below the "
            f"{FLEET_FULL_SESSION_FLOOR:,} real-session floor"
        )
    if anchor["traced_peak_mb"] > FLEET_FULL_TRACED_PEAK_CEILING_MB:
        failures.append(
            f"full-stack anchor traced peak {anchor['traced_peak_mb']:.1f} "
            f"MB exceeds the {FLEET_FULL_TRACED_PEAK_CEILING_MB:.0f} MB "
            "ceiling"
        )
    sessions_per_gb = anchor["sessions_per_gb"] or 0.0
    if sessions_per_gb < FLEET_FULL_SESSIONS_PER_GB_FLOOR:
        failures.append(
            f"full-stack anchor {sessions_per_gb:,.0f} sessions/GB is "
            f"below the {FLEET_FULL_SESSIONS_PER_GB_FLOOR:,.0f} floor"
        )
    wall_ceiling = FLEET_FULL_WALL_CEILING_S[wall_key]
    if anchor["wall_s"] > wall_ceiling:
        failures.append(
            f"full-stack anchor wall {anchor['wall_s']:.1f}s exceeds the "
            f"{wall_ceiling:.0f}s ceiling"
        )
    if not full_stack["deterministic"]:
        failures.append(
            "full-stack anchor payloads differ across two runs — the "
            "full-stack determinism contract is broken"
        )
    ff = full_stack["fast_forward"]
    if not ff["payloads_identical"]:
        failures.append(
            "fast-forward and naive drivers produced different payloads "
            "on the sparse cell — the two modes' schedules diverged"
        )
    if not full_stack["quick"] and (ff["speedup"] or 0.0) < FLEET_FULL_SPEEDUP_FLOOR:
        failures.append(
            f"fast-forward speedup {ff['speedup']}x is below the "
            f"{FLEET_FULL_SPEEDUP_FLOOR:.1f}x floor on the sparse cell"
        )
    return failures


def _format_fleet(results: Dict[str, Any]) -> str:
    from repro.experiments.common import format_table

    rows = [
        [
            cell["label"],
            f"{cell['sessions']:,}",
            f"{cell['throughput_ops_per_sec']:,.0f}",
            cell["token_migrations"],
            f"{cell['wall_s']:.1f}",
            f"{cell['traced_peak_mb']:.1f}",
            f"{cell['sessions_per_gb']:,.0f}",
        ]
        for cell in results["cells"]
    ]
    suffix = " (quick)" if results.get("quick") else ""
    table = format_table(
        ["cell", "sessions", "ops/s", "migr", "wall s", "peak MB",
         "sessions/GB"],
        rows,
        title=f"Fleet tier memory/throughput{suffix}",
    )
    table += (
        f"\nanchor {results['anchor_label']!r} deterministic across "
        f"re-runs: {results['deterministic']}"
    )
    full_stack = results.get("full_stack")
    if full_stack:
        anchor = full_stack["anchor"]
        knee_rows = [
            [
                f"{row['load_multiplier']:.1f}x",
                f"{row['offered_ops_per_sec']:,.0f}",
                f"{row['throughput_ops_per_sec']:,.0f}",
                row["in_flight_at_horizon"],
                f"{row['write_p99_ms'] or 0.0:.1f}",
            ]
            for row in full_stack["load_knee"]
        ]
        ff = full_stack["fast_forward"]
        table += "\n\n" + format_table(
            ["load", "offered/s", "done/s", "backlog", "write p99 ms"],
            knee_rows,
            title=(
                f"Full stack ({anchor['system']}/{anchor['substrate']}): "
                f"{anchor['sessions']:,} real sessions, "
                f"{anchor['n_sites']} sites — "
                f"wall {anchor['wall_s']:.1f}s, "
                f"peak {anchor['traced_peak_mb']:.1f} MB, "
                f"{anchor['sessions_per_gb']:,.0f} sessions/GB"
            ),
        )
        table += (
            f"\nfast-forward on sparse cell ({ff['ticks']:,} ticks): "
            f"{ff['wall_s']:.2f}s vs naive {ff['naive_wall_s']:.2f}s = "
            f"{ff['speedup']}x, payloads identical: "
            f"{ff['payloads_identical']}"
        )
    return table


# -- experiment-suite runner benchmark ----------------------------------------


def bench_experiments(
    quick: bool = False,
    seed: int = 42,
    jobs: Optional[int] = None,
    suites: Optional[List[str]] = None,
    pool: bool = True,
) -> Dict[str, Any]:
    """Wall-clock comparison of the scenario runner's three modes.

    Runs the full figure/ablation scenario set three ways — serial
    in-process (the determinism reference), parallel cold-cache, and
    parallel warm-cache — verifies all three produce identical payloads
    *and* identical rendered tables, and reports the wall-clock numbers
    that ``BENCH_experiments.json`` commits.

    "Cold" means cold *everything*: the warm worker pool is shut down
    first, so the parallel number pays pool start-up (interpreter +
    import) exactly once, the way a fresh ``repro experiments`` run
    would. On a single-core machine the speedup is recorded but marked
    ``single_core_advisory`` — process parallelism cannot beat serial
    with one core, so the number says nothing about the executor.
    """
    import shutil
    import tempfile

    from repro.runner import ResultCache, build_suite, code_digest, execute, render_suite
    from repro.runner.pool import shutdown_pool
    from repro.runner.suites import DEFAULT_SUITE_NAMES

    names = list(suites or DEFAULT_SUITE_NAMES)
    jobs = jobs or (os.cpu_count() or 1)
    cpu_count = os.cpu_count() or 1
    scenarios = []
    for name in names:
        scenarios += build_suite(name, quick, seed)

    def tables(results: Dict[str, Any]) -> str:
        return "\n".join(render_suite(n, quick, seed, results) for n in names)

    serial = execute(scenarios, jobs=1)
    serial.raise_on_failure()

    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        # Charge pool start-up to the cold run: a warm fleet left over
        # from an earlier call would flatter the number.
        shutdown_pool()
        cold = execute(
            scenarios,
            jobs=jobs,
            cache=ResultCache(cache_root),
            timeout_s=3600,
            pool=pool,
        )
        cold.raise_on_failure()
        warm = execute(
            scenarios,
            jobs=jobs,
            cache=ResultCache(cache_root),
            timeout_s=3600,
            pool=pool,
        )
        warm.raise_on_failure()
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    identical = (
        serial.results == cold.results == warm.results
        and tables(serial.results) == tables(cold.results)
    )
    if not identical:
        raise AssertionError(
            "serial, parallel, and cache-warm runs disagree — the runner's "
            "determinism contract is broken"
        )
    return {
        "quick": quick,
        "seed": seed,
        "jobs": jobs,
        "cpu_count": cpu_count,
        "executor": "pool" if pool else "spawn",
        "suites": names,
        "cells": len(serial.results),
        "serial_wall_s": round(serial.wall_s, 3),
        "parallel_cold_wall_s": round(cold.wall_s, 3),
        "parallel_warm_wall_s": round(warm.wall_s, 3),
        "parallel_speedup": (
            round(serial.wall_s / cold.wall_s, 3) if cold.wall_s else None
        ),
        # With one core the speedup measures scheduling overhead, not
        # parallelism — recorded for the trajectory, meaningless as a gate.
        "single_core_advisory": cpu_count < 2,
        "warm_fraction_of_cold": (
            round(warm.wall_s / cold.wall_s, 4) if cold.wall_s else None
        ),
        "warm_cache_hits": warm.cache_hits,
        "results_identical": identical,
        "code_digest": code_digest(),
    }


def _format_experiments(results: Dict[str, Any]) -> str:
    from repro.experiments.common import format_table

    rows = [
        ["serial (jobs=1)", f"{results['serial_wall_s']:.1f}", "1.00x"],
        [
            f"parallel cold (jobs={results['jobs']})",
            f"{results['parallel_cold_wall_s']:.1f}",
            f"{results['parallel_speedup']:.2f}x",
        ],
        [
            f"parallel warm (jobs={results['jobs']})",
            f"{results['parallel_warm_wall_s']:.1f}",
            f"{results['warm_fraction_of_cold']:.1%} of cold",
        ],
    ]
    suffix = " (quick)" if results.get("quick") else ""
    table = format_table(
        ["mode", "wall s", "vs serial"],
        rows,
        title=(
            f"Experiment suite runner{suffix}: {results['cells']} cells, "
            f"{results['cpu_count']} CPU(s), "
            f"{results.get('executor', 'spawn')} executor"
        ),
    )
    if results.get("single_core_advisory"):
        table += (
            "\n(single core: speedup numbers are advisory — parallelism "
            "cannot pay here)"
        )
    return table


# -- hardware normalization ---------------------------------------------------


def calibrate(rounds: int = 3) -> float:
    """A machine-speed score (higher = faster), used to normalize --check.

    Runs a tiny fixed kernel workload — the same primitives the real
    benchmarks exercise — and returns its events/sec. Comparing
    ``events_per_sec / calibration`` across machines cancels most of the
    hardware difference, so the CI regression gate tracks code changes, not
    runner speed.
    """
    from repro.sim import Environment, Store

    best = 0.0
    for _ in range(rounds):
        env = Environment()
        store = Store(env)

        def bouncer(env):
            for r in range(2000):
                yield env.timeout(0.1)
                store.put(r)
                yield store.get()

        env.process(bouncer(env), name="cal")
        started = time.perf_counter()
        env.run()
        wall = time.perf_counter() - started
        best = max(best, env._seq / wall)
    return best


# -- suite -------------------------------------------------------------------


#: Bench names and headline metric per suite.
_KERNEL_BENCHES = ("kernel", "burst", "transport", "ycsb")
_SERVER_BENCHES = ("datatree", "watches", "tokens")


def run_suite(quick: bool = False, seed: int = 42) -> Dict[str, Any]:
    results: Dict[str, Any] = {
        "quick": quick,
        "calibration_events_per_sec": calibrate(),
        "kernel": bench_kernel(quick=quick),
        "burst": bench_burst(quick=quick),
        "transport": bench_transport(quick=quick),
        "ycsb": bench_ycsb(quick=quick, seed=seed),
    }
    return results


def run_server_suite(quick: bool = False, seed: int = 42) -> Dict[str, Any]:
    results: Dict[str, Any] = {
        "quick": quick,
        "calibration_events_per_sec": calibrate(),
        "datatree": bench_datatree(quick=quick, seed=seed),
        "watches": bench_watches(quick=quick, seed=seed),
        "tokens": bench_tokens(quick=quick, seed=seed),
    }
    return results


def _format_server_suite(results: Dict[str, Any]) -> str:
    from repro.experiments.common import format_table

    rows = [
        [
            name,
            results[name]["ops"],
            f"{results[name]['ops_per_sec']:,.0f}",
        ]
        for name in _SERVER_BENCHES
    ]
    suffix = " (quick)" if results.get("quick") else ""
    return format_table(
        ["bench", "ops", "ops/sec"],
        rows,
        title=f"Server-layer (protocol) throughput{suffix}",
    )


def _format_suite(results: Dict[str, Any]) -> str:
    from repro.experiments.common import format_table

    rows = [
        [
            "kernel",
            results["kernel"]["events"],
            f"{results['kernel']['events_per_sec']:,.0f}",
            "-",
        ],
        [
            "burst",
            results["burst"]["events"],
            f"{results['burst']['events_per_sec']:,.0f}",
            "-",
        ]
        if "burst" in results
        else None,
        [
            "transport",
            results["transport"]["events"],
            f"{results['transport']['events_per_sec']:,.0f}",
            f"{results['transport']['msgs_per_sec']:,.0f} msgs/s",
        ],
        [
            "ycsb",
            results["ycsb"]["events"],
            f"{results['ycsb']['events_per_sec']:,.0f}",
            f"{results['ycsb']['ops_per_wall_sec']:,.0f} ops/s",
        ],
    ]
    rows = [row for row in rows if row is not None]
    suffix = " (quick)" if results.get("quick") else ""
    return format_table(
        ["bench", "events", "events/sec", "domain rate"],
        rows,
        title=f"Simulator throughput{suffix}",
    )


def _check(
    results: Dict[str, Any],
    baseline: Dict[str, Any],
    benches: tuple = _KERNEL_BENCHES,
    metric: str = "events_per_sec",
) -> List[str]:
    """Compare normalized throughput against a baseline suite result.

    Returns a list of failure messages (empty = pass). Only benches present
    in both results are compared, and the baseline must have been taken at
    the same size (quick vs full) to be comparable. Each bench uses its own
    tolerance (_TOLERANCES, default CHECK_TOLERANCE).
    """
    failures = []
    if bool(baseline.get("quick")) != bool(results.get("quick")):
        return [
            "baseline was recorded at a different size "
            f"(baseline quick={baseline.get('quick')}, "
            f"run quick={results.get('quick')}); re-record the baseline"
        ]
    cal_now = results["calibration_events_per_sec"]
    cal_base = baseline.get("calibration_events_per_sec")
    scale = (cal_now / cal_base) if cal_base else 1.0
    for name in benches:
        if name not in baseline or name not in results:
            continue
        tolerance = _TOLERANCES.get(name, CHECK_TOLERANCE)
        measured = results[name][metric]
        expected = baseline[name][metric] * scale
        floor = expected * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{name}: {measured:,.0f} {metric} is more than "
                f"{tolerance:.0%} below the normalized baseline "
                f"{expected:,.0f} (floor {floor:,.0f})"
            )
    return failures


def _git_commit() -> str:
    """Short commit hash for bench-history points ("unknown" off-repo)."""
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except Exception:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def _write_payload(
    out: str,
    existing: Dict[str, Any],
    results: Dict[str, Any],
    schema: str,
    benches: tuple,
    metric: str,
    label: Optional[str],
) -> Dict[str, Any]:
    """Merge a fresh suite run into a BENCH file.

    Keeps the recorded pre-optimization ``before`` section, recomputes
    per-bench and aggregate (geometric-mean) speedups when both sides are
    present, and appends one ``{commit, label, <metric>}`` point to the
    bounded ``history`` trajectory.
    """
    payload: Dict[str, Any] = {
        "schema": schema,
        "before": existing.get("before"),
        "after" if not results.get("quick") else "quick_after": results,
    }
    for key in ("after", "quick_after"):
        if key not in payload and key in existing:
            payload[key] = existing[key]
    before = payload.get("before")
    after = payload.get("after")
    if before and after:
        speedup = {
            name: round(after[name][metric] / before[name][metric], 3)
            for name in benches
            if name in before and name in after
        }
        if speedup:
            product = 1.0
            for value in speedup.values():
                product *= value
            speedup["aggregate"] = round(product ** (1.0 / len(speedup)), 3)
        payload["speedup"] = speedup
    elif "speedup" in existing:
        payload["speedup"] = existing["speedup"]

    entry: Dict[str, Any] = {
        "commit": _git_commit(),
        "quick": bool(results.get("quick")),
        metric: {
            name: round(results[name][metric], 1)
            for name in benches
            if name in results
        },
    }
    if label:
        entry["label"] = label
    history = list(existing.get("history", []))
    history.append(entry)
    payload["history"] = history[-HISTORY_LIMIT:]

    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return payload


def _load_bench_file(path: str) -> Optional[Dict[str, Any]]:
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Measure simulator throughput (kernel/transport/ycsb).",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sizes (CI smoke run)"
    )
    parser.add_argument(
        "--server",
        action="store_true",
        help=(
            "run the server-layer (protocol/state-machine) microbench group "
            f"(datatree/watches/tokens) and write {SERVER_BENCH_FILE} instead"
        ),
    )
    parser.add_argument(
        "--label",
        default=None,
        help="name for this run's bench-history point (default: commit only)",
    )
    parser.add_argument(
        "--experiments",
        action="store_true",
        help=(
            "benchmark the experiment-suite runner (serial vs parallel vs "
            f"cache-warm) and write {EXPERIMENTS_BENCH_FILE} instead"
        ),
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "run the fleet-tier memory/throughput benchmark (mesoscale "
            "site/load sweeps plus the full-stack anchor, load knee and "
            f"fast-forward pair) and write {FLEET_BENCH_FILE} instead"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes for --experiments (0 = one per CPU)",
    )
    parser.add_argument(
        "--pool",
        dest="pool",
        action="store_true",
        default=True,
        help="--experiments: parallel runs use the warm worker pool "
        "(default)",
    )
    parser.add_argument(
        "--no-pool",
        dest="pool",
        action="store_false",
        help="--experiments: spawn one process per cell instead",
    )
    parser.add_argument(
        "--json", action="store_true", help="print results as JSON"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "compare against the committed baseline in BENCH_kernel.json "
            f"and fail on a >{CHECK_TOLERANCE:.0%} events/sec regression"
        ),
    )
    parser.add_argument(
        "--out",
        default=BENCH_FILE,
        help=f"result file to write/check (default {BENCH_FILE})",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    if args.fleet:
        results = bench_fleet(quick=args.quick, seed=args.seed)
        out = args.out if args.out != BENCH_FILE else FLEET_BENCH_FILE

        if args.check:
            failures = _check_fleet(results)
            print(_format_fleet(results))
            if failures:
                for failure in failures:
                    print(f"FAIL {failure}")
                return 1
            print(
                f"OK: fleet tier within ceilings "
                f"({results['max_sessions']:,} sessions, peak "
                f"{results['max_traced_peak_mb']:.1f} MB traced, "
                "deterministic)"
            )
            return 0

        existing = _load_bench_file(out) or {}
        payload = {"schema": "bench_fleet/v1"}
        payload["quick" if args.quick else "full"] = results
        for key in ("quick", "full"):
            if key not in payload and key in existing:
                payload[key] = existing[key]
        entry = {
            "commit": _git_commit(),
            "quick": bool(args.quick),
            "max_sessions": results["max_sessions"],
            "max_traced_peak_mb": results["max_traced_peak_mb"],
            "deterministic": results["deterministic"],
        }
        full_stack = results.get("full_stack")
        if full_stack:
            entry["full_stack_sessions"] = full_stack["anchor"]["sessions"]
            entry["full_stack_wall_s"] = full_stack["anchor"]["wall_s"]
            entry["full_stack_sessions_per_gb"] = full_stack["anchor"][
                "sessions_per_gb"
            ]
            entry["fast_forward_speedup"] = full_stack["fast_forward"][
                "speedup"
            ]
        if args.label:
            entry["label"] = args.label
        history = list(existing.get("history", []))
        history.append(entry)
        payload["history"] = history[-HISTORY_LIMIT:]
        with open(out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        if args.json:
            print(json.dumps(results, indent=2))
        else:
            print(_format_fleet(results))
            print(f"wrote {out}")
        return 0

    if args.experiments:
        results = bench_experiments(
            quick=args.quick,
            seed=args.seed,
            jobs=args.jobs or None,
            pool=args.pool,
        )
        out = args.out if args.out != BENCH_FILE else EXPERIMENTS_BENCH_FILE

        if args.check:
            # The determinism half of the gate always applies; the
            # parallel-beats-serial half is only meaningful with real
            # cores to spread across.
            print(_format_experiments(results))
            if not results["results_identical"]:
                print("FAIL serial and parallel payloads differ")
                return 1
            if results["single_core_advisory"]:
                print(
                    "SKIP parallel-beats-serial gate: "
                    f"cpu_count={results['cpu_count']} < 2 "
                    "(speedup is advisory on a single core)"
                )
                return 0
            speedup = results["parallel_speedup"] or 0.0
            if speedup <= EXPERIMENTS_SPEEDUP_FLOOR:
                print(
                    f"FAIL parallel_speedup {speedup:.2f}x is not above "
                    f"{EXPERIMENTS_SPEEDUP_FLOOR:.1f}x on "
                    f"{results['cpu_count']} cores"
                )
                return 1
            print(
                f"OK: parallel beats serial ({speedup:.2f}x cold on "
                f"{results['cpu_count']} cores, results identical)"
            )
            return 0

        existing = _load_bench_file(out) or {}
        payload = {"schema": "bench_experiments/v1"}
        payload["quick" if args.quick else "full"] = results
        for key in ("quick", "full"):
            if key not in payload and key in existing:
                payload[key] = existing[key]
        entry = {
            "commit": _git_commit(),
            "quick": bool(args.quick),
            "jobs": results["jobs"],
            "cpu_count": results["cpu_count"],
            "executor": results["executor"],
            "parallel_speedup": results["parallel_speedup"],
            "single_core_advisory": results["single_core_advisory"],
        }
        if args.label:
            entry["label"] = args.label
        history = list(existing.get("history", []))
        history.append(entry)
        payload["history"] = history[-HISTORY_LIMIT:]
        with open(out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        if args.json:
            print(json.dumps(results, indent=2))
        else:
            print(_format_experiments(results))
            print(f"wrote {out}")
        return 0

    if args.server:
        suite_name = "server"
        results = run_server_suite(quick=args.quick, seed=args.seed)
        out = args.out if args.out != BENCH_FILE else SERVER_BENCH_FILE
        schema = "bench_server/v1"
        benches: tuple = _SERVER_BENCHES
        metric = "ops_per_sec"
        formatted = _format_server_suite(results)
    else:
        suite_name = "kernel"
        results = run_suite(quick=args.quick, seed=args.seed)
        out = args.out
        schema = "bench_kernel/v1"
        benches = _KERNEL_BENCHES
        metric = "events_per_sec"
        formatted = _format_suite(results)

    if args.check:
        existing = _load_bench_file(out)
        if not existing:
            print(f"--check: no baseline file {out!r}")
            return 2
        key = "quick_after" if args.quick else "after"
        baseline = existing.get(key)
        if not baseline:
            print(f"--check: baseline file has no {key!r} section")
            return 2
        failures = _check(results, baseline, benches=benches, metric=metric)
        print(formatted)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}")
            return 1
        print(f"OK: {suite_name} suite within tolerance of committed baseline")
        return 0

    existing = _load_bench_file(out) or {}
    _write_payload(out, existing, results, schema, benches, metric, args.label)

    if args.json:
        print(json.dumps(results, indent=2))
    else:
        print(formatted)
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
