"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any of the paper's figures (or the ablations) from the shell
and prints the result tables. ``--small`` runs a reduced configuration for
a quick look; the full-size runs match the benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments.common import format_table

__all__ = ["main"]


def _fig4(small: bool, seed: int) -> str:
    from repro.experiments.fig4 import run_fig4

    ops = 2000 if small else 10000
    records = 300 if small else 1000
    fractions = (0.0, 0.05, 0.25, 0.5)
    results = run_fig4(
        write_fractions=fractions,
        seed=seed,
        record_count=records,
        operation_count=ops,
    )
    systems = list(results)
    rows = []
    for index, fraction in enumerate(fractions):
        rows.append(
            [f"{fraction:.0%}"]
            + [results[system][index].throughput for system in systems]
        )
    latency_rows = []
    for index, fraction in enumerate(fractions):
        for system in systems:
            cell = results[system][index]
            latency_rows.append(
                [f"{fraction:.0%}", system, cell.read_mean_ms or 0.0,
                 cell.write_mean_ms or 0.0]
            )
    return (
        format_table(["write%"] + systems, rows,
                     title="Fig 4a: throughput (ops/sec)")
        + "\n\n"
        + format_table(
            ["write%", "system", "read ms", "write ms"],
            latency_rows,
            title="Fig 4b: mean latency",
        )
    )


def _fig5(small: bool, seed: int) -> str:
    from repro.experiments.fig5 import run_fig5

    results = run_fig5(
        seed=seed,
        record_count=200 if small else 600,
        operation_count=1500 if small else 5000,
    )
    rows = [
        [
            system,
            f"{fraction:.0%}",
            result.local_fraction,
            result.recorder.percentile_latency(50, "write"),
            result.recorder.percentile_latency(90, "write"),
        ]
        for (system, fraction), result in sorted(results.items())
    ]
    return format_table(
        ["system", "write%", "local frac", "p50 ms", "p90 ms"],
        rows,
        title="Fig 5: write-latency CDF summary",
    )


def _fig6(small: bool, seed: int) -> str:
    from repro.experiments.fig6 import run_fig6

    results = run_fig6(
        seed=seed,
        record_count=300 if small else 1000,
        operations_per_client=1200 if small else 4000,
    )
    rows = [
        [
            setup,
            result.total_throughput,
            result.per_site_throughput["california"],
            result.per_site_throughput["frankfurt"],
            result.write_mean_ms,
        ]
        for setup, result in results.items()
    ]
    return format_table(
        ["setup", "total ops/s", "CA", "FR", "write ms"],
        rows,
        title="Fig 6: two-site throughput, disjoint access",
    )


def _fig7(small: bool, seed: int) -> str:
    from repro.experiments.fig7 import run_fig7

    overlaps = (0.0, 0.5, 1.0)
    results = run_fig7(
        overlaps=overlaps,
        seed=seed,
        record_count=200 if small else 400,
        operations_per_client=800 if small else 2500,
    )
    systems = list(results)
    rows = [
        [f"{overlap:.0%}"]
        + [results[system][index].total_throughput for system in systems]
        for index, overlap in enumerate(overlaps)
    ]
    return format_table(
        ["overlap"] + systems, rows, title="Fig 7: contention sweep"
    )


def _fig8(small: bool, seed: int) -> str:
    from repro.experiments.fig8 import run_fig8

    durations = (200.0, 400.0, 1600.0)
    results = run_fig8(
        write_durations_ms=durations,
        seed=seed,
        total_duration_ms=10000.0 if small else 25000.0,
    )
    systems = list(results)
    rows = [
        [f"{duration/1000:.1f}s"]
        + [results[system][index].entries_per_sec for system in systems]
        for index, duration in enumerate(durations)
    ]
    return format_table(
        ["duration"] + systems, rows, title="Fig 8b: BookKeeper entries/sec"
    )


def _fig10(small: bool, seed: int) -> str:
    from repro.experiments.fig10 import run_fig10a, run_fig10b

    overlaps = (0.1, 0.5, 0.8)
    kwargs = dict(
        overlaps=overlaps,
        seed=seed,
        record_count=200 if small else 400,
        operations_per_client=800 if small else 2500,
    )
    parts = []
    for title, run in (
        ("Fig 10a: SCFS, no hotspot", run_fig10a),
        ("Fig 10b: SCFS, 20% hotspot per site", run_fig10b),
    ):
        results = run(**kwargs)
        rows = []
        for index, overlap in enumerate(overlaps):
            for system in results:
                cell = results[system][index]
                rows.append(
                    [f"{overlap:.0%}", system, cell.total_throughput]
                )
        parts.append(
            format_table(["overlap", "system", "ops/s"], rows, title=title)
        )
    return "\n\n".join(parts)


def _ablations(small: bool, seed: int) -> str:
    from repro.experiments.ablations import (
        run_ablation_bulk_tokens,
        run_ablation_migration_threshold,
        run_ablation_prediction,
        run_ablation_read_modes,
    )

    parts = []
    cells = run_ablation_migration_threshold(
        seed=seed,
        record_count=150 if small else 300,
        operations_per_client=600 if small else 1500,
    )
    parts.append(
        format_table(
            ["policy", "ops/s", "write ms", "recalls"],
            [[c.label, c.total_throughput, c.write_mean_ms, c.tokens_recalled]
             for c in cells],
            title="A1: migration threshold r",
        )
    )
    cells = run_ablation_prediction(seed=seed)
    parts.append(
        format_table(
            ["policy", "ops/s", "write ms"],
            [[c.policy, c.total_throughput, c.write_mean_ms] for c in cells],
            title="A2: Markov prediction",
        )
    )
    cells = run_ablation_bulk_tokens(seed=seed, rounds=15 if small else 25)
    parts.append(
        format_table(
            ["policy", "acquisitions/s"],
            [[c.label, c.acquisitions_per_sec] for c in cells],
            title="A3: bulk sequential-znode tokens",
        )
    )
    cells = run_ablation_read_modes(
        seed=seed, operations_per_client=500 if small else 1500
    )
    parts.append(
        format_table(
            ["read mode", "read ms", "ops/s"],
            [[c.mode, c.read_mean_ms, c.total_throughput] for c in cells],
            title="A4: fractional read/write tokens",
        )
    )
    from repro.experiments.ablations import run_ablation_hub_placement

    cells = run_ablation_hub_placement(
        seed=seed,
        record_count=100 if small else 200,
        operations_per_client=400 if small else 1000,
    )
    parts.append(
        format_table(
            ["l2 site", "ops/s", "write ms"],
            [[c.l2_site, c.total_throughput, c.write_mean_ms] for c in cells],
            title="A5: hub placement (CA-heavy workload)",
        )
    )
    return "\n\n".join(parts)


EXPERIMENTS: Dict[str, Callable[[bool, int], str]] = {
    "fig4": _fig4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig10": _fig10,
    "ablations": _ablations,
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # Simulator-throughput benchmarks live behind their own subcommand
        # with bench-specific flags (--quick/--json/--check); everything
        # else goes through the figure-experiment parser below.
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the WanKeeper paper's evaluation figures "
        "('bench' runs the simulator throughput benchmarks).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--small", action="store_true", help="reduced size for a quick look"
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(f"== {name} (seed {args.seed}"
              f"{', small' if args.small else ''}) ==")
        print(EXPERIMENTS[name](args.small, args.seed))
        print(f"[{time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
