"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any of the paper's figures (or the ablations) from the shell
and prints the result tables. ``--small`` runs a reduced configuration for
a quick look; the full-size runs match the benchmark suite.

Subcommands:

* ``python -m repro <experiment>`` — legacy serial path (kept stable).
* ``python -m repro experiments [names|--all] --jobs N`` — the parallel
  scenario runner with content-addressed result caching; result tables
  go to stdout (byte-identical for any ``--jobs``), progress/timing to
  stderr.
* ``python -m repro cache stats|clear`` — inspect or empty the cache.
* ``python -m repro bench`` — simulator-throughput benchmarks.
* ``python -m repro profile <target>`` — cProfile a bench workload or a
  runner suite; top-N hotspots plus a per-layer tottime rollup
  (kernel/net/zab/zk/wankeeper/workload), JSON-diffable across PRs.
* ``python -m repro trace --out FILE`` — run a small traced WanKeeper
  workload (sentinel on) and dump the structured event trace as JSONL.
* ``python -m repro diff-traces A B`` — first divergence of two JSONL
  traces (sequence numbers ignored).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List

__all__ = ["EXPERIMENTS", "main"]


def _run_suite_serial(name: str, small: bool, seed: int) -> str:
    """Legacy single-experiment path: in-process, uncached, serial."""
    from repro.runner import build_suite, execute, render_suite

    scenarios = build_suite(name, small, seed)
    report = execute(scenarios, jobs=1)
    report.raise_on_failure()
    return render_suite(name, small, seed, report.results)


def _legacy_runner(name: str) -> Callable[[bool, int], str]:
    def run(small: bool, seed: int) -> str:
        return _run_suite_serial(name, small, seed)

    return run


#: Legacy registry: experiment name -> ``fn(small, seed) -> table text``.
#: (The ``soak`` suite is reachable via ``experiments soak`` only.)
EXPERIMENTS: Dict[str, Callable[[bool, int], str]] = {
    name: _legacy_runner(name)
    for name in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig10", "ablations")
}


# -- `experiments` subcommand -------------------------------------------------


def _experiments_main(argv: List[str]) -> int:
    from repro.runner import (
        ResultCache,
        SUITES,
        build_suite,
        default_cache_dir,
        execute,
        render_suite,
    )
    from repro.runner.suites import DEFAULT_SUITE_NAMES

    parser = argparse.ArgumentParser(
        prog="python -m repro experiments",
        description=(
            "Run evaluation suites through the parallel scenario runner. "
            "Tables print to stdout and are byte-identical for any --jobs; "
            "progress, timing, and cache accounting go to stderr."
        ),
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="experiment",
        help=f"suites to run (available: {', '.join(sorted(SUITES))})",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="run the full figure/ablation set "
        f"({', '.join(DEFAULT_SUITE_NAMES)})",
    )
    parser.add_argument(
        "--small", action="store_true", help="reduced size for a quick look"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = in-process serial; 0 = one per CPU)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=1800.0,
        metavar="SECONDS",
        help="per-cell wall-clock timeout in worker mode (default 1800)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default {default_cache_dir()!r})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always recompute; neither read nor write the result cache",
    )
    parser.add_argument(
        "--pool",
        dest="pool",
        action="store_true",
        default=True,
        help="run parallel cells through the persistent warm worker pool "
        "(default)",
    )
    parser.add_argument(
        "--no-pool",
        dest="pool",
        action="store_false",
        help="escape hatch: spawn one fresh process per cell instead of "
        "using the warm pool",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="per-cell progress on stderr"
    )
    parser.add_argument(
        "--sentinel",
        action="store_true",
        help="run every scenario with the online invariant sentinel attached "
        "(any invariant violation fails the run with a trace tail)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print every registered suite and its cells, then exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SUITES):
            scenarios = build_suite(name, args.small, args.seed)
            marker = "" if name in DEFAULT_SUITE_NAMES else "  (opt-in)"
            print(f"{name}: {len(scenarios)} cells{marker}")
            for scenario in scenarios:
                print(f"  {scenario.describe()}")
        return 0

    if args.sentinel:
        # Worker processes are spawned and inherit os.environ, so setting
        # the gate here covers in-process and parallel execution alike.
        from repro.invariants import SENTINEL_ENV

        os.environ[SENTINEL_ENV] = "1"

    names = list(args.names)
    if args.all:
        names += [n for n in DEFAULT_SUITE_NAMES if n not in names]
    if not names:
        parser.error("name at least one experiment or pass --all")
    unknown = [name for name in names if name not in SUITES]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)} "
            f"(available: {', '.join(sorted(SUITES))})"
        )

    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)

    scenarios = []
    for name in names:
        scenarios += build_suite(name, args.small, args.seed)

    progress = None
    if args.verbose:
        progress = lambda message: print(message, file=sys.stderr)

    started = time.time()
    report = execute(
        scenarios,
        jobs=jobs,
        cache=cache,
        timeout_s=args.timeout,
        progress=progress,
        pool=args.pool,
    )

    # Tables always print, in request order, for every cell that has a
    # result — even when other cells failed.
    for name in names:
        try:
            table = render_suite(name, args.small, args.seed, report.results)
        except KeyError:
            print(
                f"[{name}] skipped: missing cell results (see failures)",
                file=sys.stderr,
            )
            continue
        print(f"== {name} (seed {args.seed}"
              f"{', small' if args.small else ''}) ==")
        print(table)
        print()

    print(
        f"[experiments] {report.summary()}, total {time.time() - started:.1f}s",
        file=sys.stderr,
    )
    if cache is not None:
        print(
            f"[cache] {cache.hits} hits, {cache.misses} misses ({cache.root})",
            file=sys.stderr,
        )
    if report.failures:
        for failure in report.failures:
            print(f"FAIL {failure.describe()}", file=sys.stderr)
        return 1
    return 0


# -- `cache` subcommand -------------------------------------------------------


def _cache_main(argv: List[str]) -> int:
    from repro.runner import ResultCache, default_cache_dir

    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or clear the scenario result cache.",
    )
    parser.add_argument("action", choices=("stats", "clear"))
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache directory (default {default_cache_dir()!r})",
    )
    args = parser.parse_args(argv)

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache dir: {stats['root']}")
        print(f"entries:   {stats['entries']}")
        print(f"bytes:     {stats['bytes']}")
        print(
            f"current:   {stats['current_code_entries']} "
            "(match the live code digest)"
        )
        return 0
    removed = cache.clear()
    print(f"removed {removed} cache entries from {cache.root}")
    return 0


# -- `trace` / `diff-traces` subcommands --------------------------------------


def _trace_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run a small WanKeeper workload with the structured trace and "
            "invariant sentinel enabled, then dump the trace as JSONL. Two "
            "runs with the same --seed/--ops produce comparable traces for "
            "`python -m repro diff-traces`."
        ),
    )
    parser.add_argument("--out", required=True, help="JSONL output path")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--ops", type=int, default=60, help="writes per site (default 60)"
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=65536,
        help="trace ring-buffer capacity (default 65536)",
    )
    args = parser.parse_args(argv)

    from repro.invariants import SENTINEL_ENV

    os.environ[SENTINEL_ENV] = "1"

    import random

    from repro.net.topology import CALIFORNIA, VIRGINIA, wan_topology
    from repro.net.transport import Network
    from repro.sim.kernel import Environment
    from repro.trace import TraceBuffer, install_trace
    from repro.wankeeper import build_wankeeper_deployment

    env = Environment()
    topology = wan_topology(jitter_fraction=0.0)
    net = Network(env, topology, rng=random.Random(args.seed))
    deployment = build_wankeeper_deployment(env, net, topology)
    # Builder attached a default-capacity trace; swap in the sized one
    # before anything runs so the dump can hold the whole workload.
    trace = install_trace(deployment, TraceBuffer(capacity=args.capacity))
    if deployment.sentinel is not None:
        deployment.sentinel.trace = trace
    deployment.start()
    deployment.stabilize()

    def workload(client):
        yield client.connect()
        for index in range(args.ops):
            yield client.create(f"/trace-{client.name}-{index}", b"x")
        yield client.close()

    for site in (VIRGINIA, CALIFORNIA):
        client = deployment.client(site, name=f"tracer-{site}")
        env.process(workload(client), name=f"wl-{site}")
    env.run(until=env.now + 60000.0)
    if deployment.sentinel is not None:
        deployment.sentinel.final_check()

    count = trace.dump(args.out)
    print(
        f"wrote {count} trace events to {args.out} "
        f"({trace.total_emitted} emitted, capacity {args.capacity})"
    )
    return 0


def _diff_traces_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro diff-traces",
        description=(
            "Compare two JSONL traces (from `repro trace` or "
            "TraceBuffer.dump) and report the first divergent event. "
            "Sequence numbers are ignored: only time, category, kind, node, "
            "and detail are compared."
        ),
    )
    parser.add_argument("trace_a")
    parser.add_argument("trace_b")
    parser.add_argument(
        "--context",
        type=int,
        default=3,
        metavar="N",
        help="matching events to print before the divergence (default 3)",
    )
    args = parser.parse_args(argv)

    from repro.trace import first_divergence, load_jsonl

    events_a = load_jsonl(args.trace_a)
    events_b = load_jsonl(args.trace_b)
    divergence = first_divergence(events_a, events_b)
    if divergence is None:
        print(f"traces agree ({len(events_a)} events)")
        return 0
    index, event_a, event_b = divergence
    for back in range(max(0, index - args.context), index):
        print(f"  = #{back} {events_a[back]}")
    print(f"first divergence at event #{index}:")
    print(f"  a: {event_a if event_a is not None else '<trace ended>'}")
    print(f"  b: {event_b if event_b is not None else '<trace ended>'}")
    return 1


# -- entry point --------------------------------------------------------------


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # Simulator-throughput benchmarks live behind their own subcommand
        # with bench-specific flags (--quick/--json/--check); everything
        # else goes through the figure-experiment parser below.
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "profile":
        from repro.profiling import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.fuzz.cli import main as fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "experiments":
        return _experiments_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "diff-traces":
        return _diff_traces_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the WanKeeper paper's evaluation figures "
        "('experiments' runs them in parallel with result caching; "
        "'bench' runs the simulator throughput benchmarks).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--small", action="store_true", help="reduced size for a quick look"
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(f"== {name} (seed {args.seed}"
              f"{', small' if args.small else ''}) ==")
        print(EXPERIMENTS[name](args.small, args.seed))
        print(f"[{time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
