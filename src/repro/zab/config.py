"""Ensemble membership and protocol timing configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.net.topology import NodeAddress

__all__ = ["EnsembleConfig"]


@dataclass
class EnsembleConfig:
    """Static membership of one Zab ensemble.

    ``voters`` participate in elections and commit quorums; ``observers``
    are non-voting learners (the paper's "ZooKeeper with observers"
    baseline places one observer per remote region).
    """

    voters: List[NodeAddress]
    observers: List[NodeAddress] = field(default_factory=list)

    # Timing knobs, in simulated milliseconds.
    heartbeat_interval_ms: float = 50.0
    election_timeout_ms: float = 300.0
    # Extra per-request processing cost at a server (CPU stand-in).
    processing_delay_ms: float = 0.02

    def __post_init__(self) -> None:
        if not self.voters:
            raise ValueError("ensemble needs at least one voter")
        seen = set()
        for addr in list(self.voters) + list(self.observers):
            if addr in seen:
                raise ValueError(f"duplicate member: {addr}")
            seen.add(addr)
        overlap = set(self.voters) & set(self.observers)
        if overlap:
            raise ValueError(f"members cannot be both voter and observer: {overlap}")

    @property
    def quorum_size(self) -> int:
        return len(self.voters) // 2 + 1

    def is_quorum(self, acks: int) -> bool:
        return acks >= self.quorum_size

    def is_voter(self, addr: NodeAddress) -> bool:
        return addr in self.voters

    def is_observer(self, addr: NodeAddress) -> bool:
        return addr in self.observers

    @property
    def members(self) -> List[NodeAddress]:
        return list(self.voters) + list(self.observers)

    def peers_of(self, addr: NodeAddress) -> List[NodeAddress]:
        """All other members, from one member's point of view."""
        return [member for member in self.members if member != addr]
