"""Zab protocol messages.

Message classes are hand-written ``__slots__`` records; the network layer
delivers them opaquely. Names follow the ZooKeeper implementation where one
exists. Equality and hash match the frozen dataclasses they replaced
(field-tuple equality, ``hash(field tuple)``) so container iteration
orders are unchanged; the ``__slots__`` form exists because message
allocation is the protocol layer's hottest loop and the generated frozen
``__init__`` (a chain of ``object.__setattr__`` calls) was measurable.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.net.topology import NodeAddress
from repro.zab.log import LogEntry
from repro.zab.zxid import Zxid

__all__ = [
    "Ack",
    "AckEpoch",
    "AckNewLeader",
    "Commit",
    "Diff",
    "FollowerInfo",
    "Inform",
    "LeaderInfo",
    "NewLeader",
    "Ping",
    "Pong",
    "Propose",
    "Snap",
    "SubmitRequest",
    "Trunc",
    "UpToDate",
    "Vote",
    "VoteNotification",
]


# -- election ---------------------------------------------------------------


class Vote:
    """A candidate preference: compare by (last_zxid, node id)."""

    __slots__ = ('node', 'last_zxid')

    def __init__(self, node: NodeAddress, last_zxid: Zxid):
        self.node = node
        self.last_zxid = last_zxid

    def beats(self, other: "Vote") -> bool:
        return (self.last_zxid, self.node) > (other.last_zxid, other.node)

    def _astuple(self) -> tuple:
        return (self.node, self.last_zxid)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Vote:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"Vote(node={self.node!r}, last_zxid={self.last_zxid!r})"


class VoteNotification:
    """Election gossip: the sender's current vote in its current round."""

    __slots__ = ('sender', 'vote', 'round', 'sender_state')

    def __init__(
        self,
        sender: NodeAddress,
        vote: Vote,
        round: int,
        sender_state: str,  # PeerState value of the sender
    ):
        self.sender = sender
        self.vote = vote
        self.round = round
        self.sender_state = sender_state

    def _astuple(self) -> tuple:
        return (self.sender, self.vote, self.round, self.sender_state)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not VoteNotification:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"VoteNotification(sender={self.sender!r}, vote={self.vote!r}, "
            f"round={self.round!r}, sender_state={self.sender_state!r})"
        )


# -- discovery --------------------------------------------------------------


class FollowerInfo:
    """Follower -> prospective leader: my accepted epoch and log tail."""

    __slots__ = ('sender', 'accepted_epoch', 'last_zxid')

    def __init__(
        self, sender: NodeAddress, accepted_epoch: int, last_zxid: Zxid
    ):
        self.sender = sender
        self.accepted_epoch = accepted_epoch
        self.last_zxid = last_zxid

    def _astuple(self) -> tuple:
        return (self.sender, self.accepted_epoch, self.last_zxid)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not FollowerInfo:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"FollowerInfo(sender={self.sender!r}, "
            f"accepted_epoch={self.accepted_epoch!r}, "
            f"last_zxid={self.last_zxid!r})"
        )


class LeaderInfo:
    """Leader -> follower: the new epoch (a.k.a. NEWEPOCH)."""

    __slots__ = ('sender', 'new_epoch')

    def __init__(self, sender: NodeAddress, new_epoch: int):
        self.sender = sender
        self.new_epoch = new_epoch

    def _astuple(self) -> tuple:
        return (self.sender, self.new_epoch)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not LeaderInfo:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"LeaderInfo(sender={self.sender!r}, new_epoch={self.new_epoch!r})"


class AckEpoch:
    """Follower -> leader: epoch accepted; carries history position."""

    __slots__ = ('sender', 'current_epoch', 'last_zxid')

    def __init__(
        self, sender: NodeAddress, current_epoch: int, last_zxid: Zxid
    ):
        self.sender = sender
        self.current_epoch = current_epoch
        self.last_zxid = last_zxid

    def _astuple(self) -> tuple:
        return (self.sender, self.current_epoch, self.last_zxid)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not AckEpoch:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"AckEpoch(sender={self.sender!r}, "
            f"current_epoch={self.current_epoch!r}, "
            f"last_zxid={self.last_zxid!r})"
        )


# -- synchronization ----------------------------------------------------------


class Diff:
    """Leader -> follower: entries the follower is missing."""

    __slots__ = ('sender', 'entries')

    def __init__(self, sender: NodeAddress, entries: List[LogEntry]):
        self.sender = sender
        self.entries = entries

    def _astuple(self) -> tuple:
        return (self.sender, self.entries)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Diff:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Diff(sender={self.sender!r}, entries={self.entries!r})"


class Trunc:
    """Leader -> follower: drop log entries after ``truncate_to``."""

    __slots__ = ('sender', 'truncate_to', 'entries')

    def __init__(
        self,
        sender: NodeAddress,
        truncate_to: Zxid,
        entries: Optional[List[LogEntry]] = None,
    ):
        self.sender = sender
        self.truncate_to = truncate_to
        self.entries = [] if entries is None else entries

    def _astuple(self) -> tuple:
        return (self.sender, self.truncate_to, self.entries)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Trunc:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return (
            f"Trunc(sender={self.sender!r}, truncate_to={self.truncate_to!r}, "
            f"entries={self.entries!r})"
        )


class Snap:
    """Leader -> follower: full log snapshot."""

    __slots__ = ('sender', 'entries')

    def __init__(self, sender: NodeAddress, entries: List[LogEntry]):
        self.sender = sender
        self.entries = entries

    def _astuple(self) -> tuple:
        return (self.sender, self.entries)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Snap:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Snap(sender={self.sender!r}, entries={self.entries!r})"


class NewLeader:
    """Leader -> follower: end of sync for the new epoch."""

    __slots__ = ('sender', 'epoch')

    def __init__(self, sender: NodeAddress, epoch: int):
        self.sender = sender
        self.epoch = epoch

    def _astuple(self) -> tuple:
        return (self.sender, self.epoch)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not NewLeader:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"NewLeader(sender={self.sender!r}, epoch={self.epoch!r})"


class AckNewLeader:
    __slots__ = ('sender', 'epoch')

    def __init__(self, sender: NodeAddress, epoch: int):
        self.sender = sender
        self.epoch = epoch

    def _astuple(self) -> tuple:
        return (self.sender, self.epoch)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not AckNewLeader:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"AckNewLeader(sender={self.sender!r}, epoch={self.epoch!r})"


class UpToDate:
    """Leader -> follower: the new epoch now serves traffic.

    ``committed_to`` is the leader's commit point at activation; entries the
    learner holds beyond it are still in flight and must not be applied yet.
    """

    __slots__ = ('sender', 'epoch', 'committed_to')

    def __init__(
        self,
        sender: NodeAddress,
        epoch: int,
        committed_to: Zxid = Zxid.ZERO,
    ):
        self.sender = sender
        self.epoch = epoch
        self.committed_to = committed_to

    def _astuple(self) -> tuple:
        return (self.sender, self.epoch, self.committed_to)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not UpToDate:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"UpToDate(sender={self.sender!r}, epoch={self.epoch!r}, "
            f"committed_to={self.committed_to!r})"
        )


# -- broadcast ---------------------------------------------------------------


class SubmitRequest:
    """Any server -> leader: please broadcast this transaction.

    ``ctx`` is an opaque correlation value returned in the commit callback
    so the request-processor layer can find the waiting client.
    """

    __slots__ = ('sender', 'txn', 'ctx')

    def __init__(self, sender: NodeAddress, txn: Any, ctx: Any = None):
        self.sender = sender
        self.txn = txn
        self.ctx = ctx

    def _astuple(self) -> tuple:
        return (self.sender, self.txn, self.ctx)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not SubmitRequest:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return (
            f"SubmitRequest(sender={self.sender!r}, txn={self.txn!r}, "
            f"ctx={self.ctx!r})"
        )


class Propose:
    """Leader -> follower: vote on this transaction.

    One is allocated per send on the hot path, where the frozen-dataclass
    ``__init__`` overhead was measurable.
    """

    __slots__ = ('sender', 'zxid', 'txn')

    def __init__(self, sender: NodeAddress, zxid: Zxid, txn: Any):
        self.sender = sender
        self.zxid = zxid
        self.txn = txn

    def _astuple(self) -> tuple:
        return (self.sender, self.zxid, self.txn)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Propose:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Propose(sender={self.sender!r}, zxid={self.zxid!r}, txn={self.txn!r})"


class Ack:
    __slots__ = ('sender', 'zxid')

    def __init__(self, sender: NodeAddress, zxid: Zxid):
        self.sender = sender
        self.zxid = zxid

    def _astuple(self) -> tuple:
        return (self.sender, self.zxid)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Ack:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Ack(sender={self.sender!r}, zxid={self.zxid!r})"


class Commit:
    __slots__ = ('sender', 'zxid')

    def __init__(self, sender: NodeAddress, zxid: Zxid):
        self.sender = sender
        self.zxid = zxid

    def _astuple(self) -> tuple:
        return (self.sender, self.zxid)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Commit:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Commit(sender={self.sender!r}, zxid={self.zxid!r})"


class Inform:
    """Leader -> observer: a committed transaction (observers skip voting)."""

    __slots__ = ('sender', 'zxid', 'txn')

    def __init__(self, sender: NodeAddress, zxid: Zxid, txn: Any):
        self.sender = sender
        self.zxid = zxid
        self.txn = txn

    def _astuple(self) -> tuple:
        return (self.sender, self.zxid, self.txn)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Inform:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Inform(sender={self.sender!r}, zxid={self.zxid!r}, txn={self.txn!r})"


# -- liveness ---------------------------------------------------------------


class Ping:
    """Leader -> members: liveness probe.

    The leader piggybacks its last committed zxid so lagging followers
    can detect gaps (they resync via FollowerInfo if needed).
    """

    __slots__ = ('sender', 'epoch', 'last_committed')

    def __init__(self, sender: NodeAddress, epoch: int, last_committed: Optional[Zxid] = None):
        self.sender = sender
        self.epoch = epoch
        self.last_committed = last_committed

    def _astuple(self) -> tuple:
        return (self.sender, self.epoch, self.last_committed)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Ping:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Ping(sender={self.sender!r}, epoch={self.epoch!r}, last_committed={self.last_committed!r})"


class Pong:
    __slots__ = ('sender', 'epoch')

    def __init__(self, sender: NodeAddress, epoch: int):
        self.sender = sender
        self.epoch = epoch

    def _astuple(self) -> tuple:
        return (self.sender, self.epoch)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Pong:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Pong(sender={self.sender!r}, epoch={self.epoch!r})"
