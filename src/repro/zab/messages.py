"""Zab protocol messages.

Message classes are plain dataclasses; the network layer delivers them
opaquely. Names follow the ZooKeeper implementation where one exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.net.topology import NodeAddress
from repro.zab.log import LogEntry
from repro.zab.zxid import Zxid

__all__ = [
    "Ack",
    "AckEpoch",
    "AckNewLeader",
    "Commit",
    "Diff",
    "FollowerInfo",
    "Inform",
    "LeaderInfo",
    "NewLeader",
    "Ping",
    "Pong",
    "Propose",
    "Snap",
    "SubmitRequest",
    "Trunc",
    "UpToDate",
    "Vote",
    "VoteNotification",
]


# -- election ---------------------------------------------------------------


@dataclass(frozen=True)
class Vote:
    """A candidate preference: compare by (last_zxid, node id)."""

    node: NodeAddress
    last_zxid: Zxid

    def beats(self, other: "Vote") -> bool:
        return (self.last_zxid, self.node) > (other.last_zxid, other.node)


@dataclass(frozen=True)
class VoteNotification:
    """Election gossip: the sender's current vote in its current round."""

    sender: NodeAddress
    vote: Vote
    round: int
    sender_state: str  # PeerState value of the sender


# -- discovery --------------------------------------------------------------


@dataclass(frozen=True)
class FollowerInfo:
    """Follower -> prospective leader: my accepted epoch and log tail."""

    sender: NodeAddress
    accepted_epoch: int
    last_zxid: Zxid


@dataclass(frozen=True)
class LeaderInfo:
    """Leader -> follower: the new epoch (a.k.a. NEWEPOCH)."""

    sender: NodeAddress
    new_epoch: int


@dataclass(frozen=True)
class AckEpoch:
    """Follower -> leader: epoch accepted; carries history position."""

    sender: NodeAddress
    current_epoch: int
    last_zxid: Zxid


# -- synchronization ----------------------------------------------------------


@dataclass(frozen=True)
class Diff:
    """Leader -> follower: entries the follower is missing."""

    sender: NodeAddress
    entries: List[LogEntry]


@dataclass(frozen=True)
class Trunc:
    """Leader -> follower: drop log entries after ``truncate_to``."""

    sender: NodeAddress
    truncate_to: Zxid
    entries: List[LogEntry] = field(default_factory=list)


@dataclass(frozen=True)
class Snap:
    """Leader -> follower: full log snapshot."""

    sender: NodeAddress
    entries: List[LogEntry]


@dataclass(frozen=True)
class NewLeader:
    """Leader -> follower: end of sync for the new epoch."""

    sender: NodeAddress
    epoch: int


@dataclass(frozen=True)
class AckNewLeader:
    sender: NodeAddress
    epoch: int


@dataclass(frozen=True)
class UpToDate:
    """Leader -> follower: the new epoch now serves traffic.

    ``committed_to`` is the leader's commit point at activation; entries the
    learner holds beyond it are still in flight and must not be applied yet.
    """

    sender: NodeAddress
    epoch: int
    committed_to: Zxid = Zxid.ZERO


# -- broadcast ---------------------------------------------------------------


@dataclass(frozen=True)
class SubmitRequest:
    """Any server -> leader: please broadcast this transaction.

    ``ctx`` is an opaque correlation value returned in the commit callback
    so the request-processor layer can find the waiting client.
    """

    sender: NodeAddress
    txn: Any
    ctx: Any = None


@dataclass(frozen=True)
class Propose:
    sender: NodeAddress
    zxid: Zxid
    txn: Any


@dataclass(frozen=True)
class Ack:
    sender: NodeAddress
    zxid: Zxid


@dataclass(frozen=True)
class Commit:
    sender: NodeAddress
    zxid: Zxid


@dataclass(frozen=True)
class Inform:
    """Leader -> observer: a committed transaction (observers skip voting)."""

    sender: NodeAddress
    zxid: Zxid
    txn: Any


# -- liveness ---------------------------------------------------------------


@dataclass(frozen=True)
class Ping:
    sender: NodeAddress
    epoch: int
    # Leader piggybacks its last committed zxid so lagging followers can
    # detect gaps (they resync via FollowerInfo if needed).
    last_committed: Optional[Zxid] = None


@dataclass(frozen=True)
class Pong:
    sender: NodeAddress
    epoch: int
