"""Zab protocol messages.

Message classes are plain dataclasses; the network layer delivers them
opaquely. Names follow the ZooKeeper implementation where one exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.net.topology import NodeAddress
from repro.zab.log import LogEntry
from repro.zab.zxid import Zxid

__all__ = [
    "Ack",
    "AckEpoch",
    "AckNewLeader",
    "Commit",
    "Diff",
    "FollowerInfo",
    "Inform",
    "LeaderInfo",
    "NewLeader",
    "Ping",
    "Pong",
    "Propose",
    "Snap",
    "SubmitRequest",
    "Trunc",
    "UpToDate",
    "Vote",
    "VoteNotification",
]


# -- election ---------------------------------------------------------------


@dataclass(frozen=True)
class Vote:
    """A candidate preference: compare by (last_zxid, node id)."""

    node: NodeAddress
    last_zxid: Zxid

    def beats(self, other: "Vote") -> bool:
        return (self.last_zxid, self.node) > (other.last_zxid, other.node)


@dataclass(frozen=True)
class VoteNotification:
    """Election gossip: the sender's current vote in its current round."""

    sender: NodeAddress
    vote: Vote
    round: int
    sender_state: str  # PeerState value of the sender


# -- discovery --------------------------------------------------------------


@dataclass(frozen=True)
class FollowerInfo:
    """Follower -> prospective leader: my accepted epoch and log tail."""

    sender: NodeAddress
    accepted_epoch: int
    last_zxid: Zxid


@dataclass(frozen=True)
class LeaderInfo:
    """Leader -> follower: the new epoch (a.k.a. NEWEPOCH)."""

    sender: NodeAddress
    new_epoch: int


@dataclass(frozen=True)
class AckEpoch:
    """Follower -> leader: epoch accepted; carries history position."""

    sender: NodeAddress
    current_epoch: int
    last_zxid: Zxid


# -- synchronization ----------------------------------------------------------


@dataclass(frozen=True)
class Diff:
    """Leader -> follower: entries the follower is missing."""

    sender: NodeAddress
    entries: List[LogEntry]


@dataclass(frozen=True)
class Trunc:
    """Leader -> follower: drop log entries after ``truncate_to``."""

    sender: NodeAddress
    truncate_to: Zxid
    entries: List[LogEntry] = field(default_factory=list)


@dataclass(frozen=True)
class Snap:
    """Leader -> follower: full log snapshot."""

    sender: NodeAddress
    entries: List[LogEntry]


@dataclass(frozen=True)
class NewLeader:
    """Leader -> follower: end of sync for the new epoch."""

    sender: NodeAddress
    epoch: int


@dataclass(frozen=True)
class AckNewLeader:
    sender: NodeAddress
    epoch: int


@dataclass(frozen=True)
class UpToDate:
    """Leader -> follower: the new epoch now serves traffic.

    ``committed_to`` is the leader's commit point at activation; entries the
    learner holds beyond it are still in flight and must not be applied yet.
    """

    sender: NodeAddress
    epoch: int
    committed_to: Zxid = Zxid.ZERO


# -- broadcast ---------------------------------------------------------------


@dataclass(frozen=True)
class SubmitRequest:
    """Any server -> leader: please broadcast this transaction.

    ``ctx`` is an opaque correlation value returned in the commit callback
    so the request-processor layer can find the waiting client.
    """

    sender: NodeAddress
    txn: Any
    ctx: Any = None


class Propose:
    """Leader -> follower: vote on this transaction.

    A hand-written ``__slots__`` class (like the other broadcast-phase
    messages below): one is allocated per send on the hot path, where the
    frozen-dataclass ``__init__`` overhead was measurable.
    """

    __slots__ = ('sender', 'zxid', 'txn')

    def __init__(self, sender: NodeAddress, zxid: Zxid, txn: Any):
        self.sender = sender
        self.zxid = zxid
        self.txn = txn

    def _astuple(self) -> tuple:
        return (self.sender, self.zxid, self.txn)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Propose:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Propose(sender={self.sender!r}, zxid={self.zxid!r}, txn={self.txn!r})"


class Ack:
    __slots__ = ('sender', 'zxid')

    def __init__(self, sender: NodeAddress, zxid: Zxid):
        self.sender = sender
        self.zxid = zxid

    def _astuple(self) -> tuple:
        return (self.sender, self.zxid)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Ack:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Ack(sender={self.sender!r}, zxid={self.zxid!r})"


class Commit:
    __slots__ = ('sender', 'zxid')

    def __init__(self, sender: NodeAddress, zxid: Zxid):
        self.sender = sender
        self.zxid = zxid

    def _astuple(self) -> tuple:
        return (self.sender, self.zxid)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Commit:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Commit(sender={self.sender!r}, zxid={self.zxid!r})"


class Inform:
    """Leader -> observer: a committed transaction (observers skip voting)."""

    __slots__ = ('sender', 'zxid', 'txn')

    def __init__(self, sender: NodeAddress, zxid: Zxid, txn: Any):
        self.sender = sender
        self.zxid = zxid
        self.txn = txn

    def _astuple(self) -> tuple:
        return (self.sender, self.zxid, self.txn)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Inform:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Inform(sender={self.sender!r}, zxid={self.zxid!r}, txn={self.txn!r})"


# -- liveness ---------------------------------------------------------------


class Ping:
    """Leader -> members: liveness probe.

    The leader piggybacks its last committed zxid so lagging followers
    can detect gaps (they resync via FollowerInfo if needed).
    """

    __slots__ = ('sender', 'epoch', 'last_committed')

    def __init__(self, sender: NodeAddress, epoch: int, last_committed: Optional[Zxid] = None):
        self.sender = sender
        self.epoch = epoch
        self.last_committed = last_committed

    def _astuple(self) -> tuple:
        return (self.sender, self.epoch, self.last_committed)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Ping:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Ping(sender={self.sender!r}, epoch={self.epoch!r}, last_committed={self.last_committed!r})"


class Pong:
    __slots__ = ('sender', 'epoch')

    def __init__(self, sender: NodeAddress, epoch: int):
        self.sender = sender
        self.epoch = epoch

    def _astuple(self) -> tuple:
        return (self.sender, self.epoch)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Pong:
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return f"Pong(sender={self.sender!r}, epoch={self.epoch!r})"
