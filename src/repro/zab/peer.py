"""The Zab peer state machine.

One :class:`ZabPeer` per server. A peer is LOOKING until an election
completes, then LEADING or FOLLOWING (or OBSERVING for non-voting learners).
The peer owns a durable transaction log; the replicated state machine above
it registers ``on_commit`` and applies transactions in commit (zxid) order.

Protocol structure follows Zab's four phases (election, discovery,
synchronization, broadcast); see the package docstring for the mapping.
"""

from __future__ import annotations

import enum
from collections import OrderedDict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.net.topology import NodeAddress
from repro.net.transport import Network
from repro.sim.kernel import Environment, Interrupt
from repro.sim.store import StoreClosed
from repro.zab.config import EnsembleConfig
from repro.zab.log import TxnLog
from repro.zab.messages import (
    Ack,
    AckEpoch,
    AckNewLeader,
    Commit,
    Diff,
    FollowerInfo,
    Inform,
    LeaderInfo,
    NewLeader,
    Ping,
    Pong,
    Propose,
    Snap,
    SubmitRequest,
    Trunc,
    UpToDate,
    Vote,
    VoteNotification,
)
from repro.zab.zxid import Zxid

__all__ = ["PeerState", "ZabPeer"]


#: How many distinct forwarded-transaction ids a leader remembers for
#: duplicate suppression (bounds memory; far above any in-flight window).
SUBMIT_DEDUP_LIMIT = 4096


def submit_dedup_id(payload: Any) -> Optional[Tuple[Any, ...]]:
    """Stable identity of a forwarded transaction, for duplicate suppression.

    Client transactions are identified by ``(session_id, cxid)`` — the same
    pair whether they travel bare (:class:`~repro.zk.ops.Txn`) or wrapped
    (``WanTxn.wan_id``), so a retransmitted forward is recognized no matter
    how the leader first saw the transaction. Payloads without an identity
    (marker ops) return None and are never deduplicated.
    """
    wan_id = getattr(payload, "wan_id", None)
    if wan_id is not None:
        return tuple(wan_id)
    session_id = getattr(payload, "session_id", None)
    cxid = getattr(payload, "cxid", None)
    if session_id is not None and cxid is not None:
        return (session_id, cxid)
    return None


class PeerState(str, enum.Enum):
    LOOKING = "looking"
    FOLLOWING = "following"
    LEADING = "leading"
    OBSERVING = "observing"
    DOWN = "down"


class ZabPeer:
    """A single Zab server: voter or observer."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        addr: NodeAddress,
        config: EnsembleConfig,
        name: str = "",
    ):
        if not (config.is_voter(addr) or config.is_observer(addr)):
            raise ValueError(f"{addr} is not a member of the ensemble")
        self.env = env
        self.net = net
        self.addr = addr
        self.config = config
        self.name = name or str(addr)
        self.is_observer = config.is_observer(addr)

        # Message-type dispatch table, built once: _dispatch runs for every
        # delivered message and rebuilding a 17-entry dict per message was
        # one of the hottest lines in the whole simulation.
        self._handlers: Dict[type, Callable[[NodeAddress, Any], None]] = {
            VoteNotification: self._on_vote_notification,
            FollowerInfo: self._on_follower_info,
            LeaderInfo: self._on_leader_info,
            AckEpoch: self._on_ack_epoch,
            Diff: self._on_diff,
            Trunc: self._on_trunc,
            Snap: self._on_snap,
            NewLeader: self._on_new_leader,
            AckNewLeader: self._on_ack_new_leader,
            UpToDate: self._on_up_to_date,
            Propose: self._on_propose,
            Ack: self._on_ack,
            Commit: self._on_commit_msg,
            Inform: self._on_inform,
            SubmitRequest: self._on_submit_request,
            Ping: self._on_ping,
            Pong: self._on_pong,
        }

        self.inbox = net.register(addr)
        self.inbox.consume(self._on_envelope)

        # Durable state (survives crash/restart).
        self.log = TxnLog()
        self.accepted_epoch = 0
        self.current_epoch = 0

        # Volatile state.
        self.state = PeerState.DOWN
        self.leader_addr: Optional[NodeAddress] = None
        self.last_committed = Zxid.ZERO
        self._last_applied = Zxid.ZERO

        # Election state.
        self._round = 0
        self._vote: Optional[Vote] = None
        self._round_votes: Dict[NodeAddress, Vote] = {}

        # Leader state.
        self._next_counter = 0
        # Proposals awaiting quorum, in order.
        self._pending: Deque[Zxid] = deque()
        self._acks: Dict[Zxid, Set[NodeAddress]] = {}
        self._proposed_at: Dict[Zxid, float] = {}
        # Recently proposed/forwarded txn ids (duplicate suppression for
        # retransmitted SubmitRequests under lossy links).
        self._recent_submits: "OrderedDict[Tuple[Any, ...], None]" = OrderedDict()
        # Never iterate these sets raw: set order is string hash order,
        # which varies per interpreter (PYTHONHASHSEED) and would leak
        # into the shared network jitter RNG's draw order. Fan-out loops
        # use the _fanout_* tuples below — sorted once per membership
        # change instead of per proposal/commit/tick.
        self._active_followers: Set[NodeAddress] = set()
        self._active_observers: Set[NodeAddress] = set()
        self._fanout_followers: Tuple[NodeAddress, ...] = ()
        self._fanout_observers: Tuple[NodeAddress, ...] = ()
        self._discovery_epochs: Dict[NodeAddress, int] = {}
        self._synced_to: Dict[NodeAddress, Zxid] = {}
        self._newleader_acks: Set[NodeAddress] = set()
        self._epoch_established = False
        self._broadcast_active = False
        self._last_heard: Dict[NodeAddress, float] = {}

        # Follower/observer state.
        self._last_leader_contact = 0.0
        self._last_resync_request = -1e18

        # Hooks.
        self.on_commit: Optional[Callable[[Zxid, Any], None]] = None
        # Called when a SNAP rewrites history: the state machine above must
        # reset to empty before commits are re-applied from zero.
        self.on_reset: Optional[Callable[["ZabPeer"], None]] = None
        # If set, forwarded SubmitRequests are routed through this hook on
        # the leader instead of being proposed directly (WanKeeper inserts
        # its token check here, mirroring the paper's request processor).
        self.on_submit: Optional[Callable[[Any], None]] = None
        self.on_state_change: Optional[Callable[["ZabPeer"], None]] = None
        self.on_leader_activated: Optional[Callable[["ZabPeer"], None]] = None

        # Metrics.
        self.commits_delivered = 0
        self.elections_completed = 0
        self.proposals_retransmitted = 0
        self.duplicate_submits_dropped = 0

        # Observability (repro.trace / repro.invariants); None keeps every
        # instrumentation point a single-branch no-op.
        self._trace = None
        self.sentinel = None

        self._alive = False
        self._procs: List[Any] = []

    # ------------------------------------------------------------------ API

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ZabPeer {self.addr} {self.state.value} epoch={self.current_epoch}>"

    @property
    def is_leader(self) -> bool:
        return self.state == PeerState.LEADING and self._broadcast_active

    @property
    def last_zxid(self) -> Zxid:
        return self.log.last_zxid

    @property
    def is_alive(self) -> bool:
        return self._alive

    def start(self) -> None:
        """Boot the peer: spawn its message loop and timers."""
        if self._alive:
            raise RuntimeError(f"{self.name} already started")
        self._alive = True
        self._last_leader_contact = self.env.now
        if self.is_observer:
            self._set_state(PeerState.OBSERVING)
        else:
            self._enter_looking()
        self._procs = [
            self.env.process(self._ticker(), name=f"{self.name}.tick"),
        ]

    def crash(self) -> None:
        """Crash the peer: drop volatile state, close the inbox."""
        if not self._alive:
            return
        self._alive = False
        self._set_state(PeerState.DOWN)
        self.net.crash(self.addr)
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("crash")
        self._procs = []

    def restart(self) -> None:
        """Restart after a crash; durable log and epochs are retained."""
        if self._alive:
            raise RuntimeError(f"{self.name} is running")
        self.net.restart(self.addr)
        self.leader_addr = None
        self.last_committed = Zxid.ZERO
        self._last_applied = Zxid.ZERO
        if self.sentinel is not None:
            # The durable log replays from zero; applied-zxid tracking
            # restarts with it.
            self.sentinel.on_peer_reset(self)
        self._reset_leader_state()
        self._alive = True
        self._last_leader_contact = self.env.now
        if self.is_observer:
            self._set_state(PeerState.OBSERVING)
        else:
            self._enter_looking()
        self._procs = [
            self.env.process(self._ticker(), name=f"{self.name}.tick"),
        ]

    def submit(self, txn: Any) -> Zxid:
        """Leader-only: broadcast ``txn``; returns its zxid."""
        if not self.is_leader:
            raise RuntimeError(f"{self.name} is not an active leader")
        return self._propose(txn)

    def forward_submit(self, txn: Any, ctx: Any = None) -> None:
        """Follower/observer: forward a transaction to the current leader."""
        if self.leader_addr is None:
            raise RuntimeError(f"{self.name} knows no leader")
        self._send(self.leader_addr, SubmitRequest(self.addr, txn, ctx))

    # -------------------------------------------------------------- plumbing

    def _send(self, dst: NodeAddress, body: Any) -> None:
        if not self._alive:
            return
        self.net.send(self.addr, dst, body)

    def _set_state(self, state: PeerState) -> None:
        if state == self.state:
            return
        self.state = state
        if self._trace is not None:
            self._trace.emit(self.env.now, "zab", "state", self.name,
                             {"state": state.value,
                              "epoch": self.current_epoch})
        if self.on_state_change is not None:
            self.on_state_change(self)

    def _reset_leader_state(self) -> None:
        self._pending = deque()
        self._acks = {}
        self._proposed_at = {}
        self._recent_submits = OrderedDict()
        self._active_followers = set()
        self._active_observers = set()
        self._fanout_followers = ()
        self._fanout_observers = ()
        self._discovery_epochs = {}
        self._synced_to = {}
        self._newleader_acks = set()
        self._epoch_established = False
        self._broadcast_active = False
        self._last_heard = {}

    # -------------------------------------------------------------- processes

    def _on_envelope(self, envelope) -> None:
        # Inbox consumer: replaces the old _main_loop pump process. The
        # aliveness check mirrors the pump's `while self._alive` guard.
        if self._alive:
            self._dispatch(envelope.src, envelope.body)

    def _ticker(self):
        interval = self.config.heartbeat_interval_ms
        while self._alive:
            try:
                yield self.env.sleep(interval)
            except Interrupt:
                return
            if not self._alive:
                return
            self._on_tick()

    def _on_tick(self) -> None:
        now = self.env.now
        timeout = self.config.election_timeout_ms
        if self.state == PeerState.LOOKING:
            self._broadcast_vote()
        elif self.state == PeerState.LEADING:
            ping = Ping(self.addr, self.current_epoch, self.last_committed)
            for member in self._fanout_followers:
                self._send(member, ping)
            for member in self._fanout_observers:
                self._send(member, ping)
            if self._broadcast_active:
                self._retransmit_pending()
                heard = sum(
                    1
                    for voter in self.config.voters
                    if voter != self.addr
                    and now - self._last_heard.get(voter, now) <= timeout
                )
                # Count ourselves; step down if we cannot reach a quorum.
                if not self.config.is_quorum(heard + 1):
                    self._abandon_leadership()
        elif self.state == PeerState.FOLLOWING:
            if now - self._last_leader_contact > timeout:
                self._enter_looking()
        elif self.state == PeerState.OBSERVING:
            if now - self._last_leader_contact > timeout:
                # Probe the voters for the current leader.
                for voter in self.config.voters:
                    self._send(
                        voter,
                        FollowerInfo(self.addr, self.accepted_epoch, self.last_zxid),
                    )

    def _abandon_leadership(self) -> None:
        self._reset_leader_state()
        self._enter_looking()

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, src: NodeAddress, msg: Any) -> None:
        if not self._alive:
            return
        handler = self._handlers.get(type(msg))
        if handler is None:
            raise ValueError(f"{self.name}: unhandled message {msg!r}")
        handler(src, msg)

    # -------------------------------------------------------------- election

    def _enter_looking(self) -> None:
        self.leader_addr = None
        self._reset_leader_state()
        self._set_state(PeerState.LOOKING)
        self._round += 1
        self._vote = Vote(self.addr, self.last_zxid)
        self._round_votes = {self.addr: self._vote}
        self._broadcast_vote()
        self._maybe_elect()

    def _broadcast_vote(self) -> None:
        if self._vote is None:
            return
        note = VoteNotification(self.addr, self._vote, self._round, self.state.value)
        for voter in self.config.voters:
            if voter != self.addr:
                self._send(voter, note)

    def _on_vote_notification(self, src: NodeAddress, msg: VoteNotification) -> None:
        if self.is_observer:
            return
        if self.state != PeerState.LOOKING:
            # Tell the looking peer about the established regime — but only
            # vouch for a leader we have *recently* heard from, or two
            # followers of a dead leader can redirect each other at it
            # forever instead of re-electing.
            if (
                msg.sender_state == PeerState.LOOKING.value
                and self.leader_addr is not None
                and self._regime_is_fresh()
            ):
                reply = VoteNotification(
                    self.addr,
                    Vote(self.leader_addr, self.last_zxid),
                    msg.round,
                    self.state.value,
                )
                self._send(src, reply)
            return

        if msg.sender_state in (PeerState.FOLLOWING.value, PeerState.LEADING.value):
            # An established regime exists: join it.
            self._join_leader(msg.vote.node)
            return

        if msg.round > self._round:
            self._round = msg.round
            own = Vote(self.addr, self.last_zxid)
            self._vote = msg.vote if msg.vote.beats(own) else own
            self._round_votes = {self.addr: self._vote, msg.sender: msg.vote}
            self._broadcast_vote()
        elif msg.round == self._round:
            self._round_votes[msg.sender] = msg.vote
            assert self._vote is not None
            if msg.vote.beats(self._vote):
                self._vote = msg.vote
                self._round_votes[self.addr] = self._vote
                self._broadcast_vote()
        else:
            # Stale round: help the sender catch up.
            self._broadcast_vote()
            return
        self._maybe_elect()

    def _maybe_elect(self) -> None:
        if self.state != PeerState.LOOKING or self._vote is None:
            return
        supporters = sum(
            1 for vote in self._round_votes.values() if vote == self._vote
        )
        if not self.config.is_quorum(supporters):
            return
        self.elections_completed += 1
        if self._vote.node == self.addr:
            self._become_leader()
        else:
            self._join_leader(self._vote.node)

    def _become_leader(self) -> None:
        self._set_state(PeerState.LEADING)
        self.leader_addr = self.addr
        self._reset_leader_state()
        self._discovery_epochs = {self.addr: self.accepted_epoch}
        self._maybe_establish_epoch()

    def _join_leader(self, leader: NodeAddress) -> None:
        self._set_state(PeerState.FOLLOWING)
        self.leader_addr = leader
        self._last_leader_contact = self.env.now
        self._send(
            leader, FollowerInfo(self.addr, self.accepted_epoch, self.last_zxid)
        )

    # -------------------------------------------------------------- discovery

    def _regime_is_fresh(self) -> bool:
        """Did we hear from our leader recently enough to vouch for it?"""
        if self.state == PeerState.LEADING:
            return True
        return (
            self.env.now - self._last_leader_contact
            <= self.config.election_timeout_ms / 2.0
        )

    def _on_follower_info(self, src: NodeAddress, msg: FollowerInfo) -> None:
        if self.state != PeerState.LEADING:
            # Redirect: tell the sender about the leader we follow, if any.
            if (
                self.state == PeerState.FOLLOWING
                and self.leader_addr is not None
                and self._regime_is_fresh()
            ):
                self._send(
                    src,
                    VoteNotification(
                        self.addr,
                        Vote(self.leader_addr, self.last_zxid),
                        self._round,
                        self.state.value,
                    ),
                )
            return
        self._last_heard[src] = self.env.now
        if self.config.is_observer(src):
            # Observers don't gate epoch establishment; sync them once the
            # epoch is live.
            if self._epoch_established:
                self._send(src, LeaderInfo(self.addr, self.current_epoch))
            return
        self._discovery_epochs[src] = msg.accepted_epoch
        if self._epoch_established:
            self._send(src, LeaderInfo(self.addr, self.current_epoch))
        else:
            self._maybe_establish_epoch()

    def _maybe_establish_epoch(self) -> None:
        if self._epoch_established:
            return
        if not self.config.is_quorum(len(self._discovery_epochs)):
            return
        new_epoch = max(self._discovery_epochs.values()) + 1
        self.accepted_epoch = new_epoch
        self.current_epoch = new_epoch
        self._next_counter = 0
        self._epoch_established = True
        for follower in self._discovery_epochs:
            if follower != self.addr:
                self._send(follower, LeaderInfo(self.addr, new_epoch))
        # The leader acks its own NEWLEADER.
        self._newleader_acks = {self.addr}
        self._maybe_activate_broadcast()

    def _on_leader_info(self, src: NodeAddress, msg: LeaderInfo) -> None:
        if self.state not in (PeerState.FOLLOWING, PeerState.OBSERVING):
            return
        if msg.new_epoch < self.accepted_epoch:
            return  # stale leader
        self.accepted_epoch = msg.new_epoch
        self.leader_addr = src
        self._last_leader_contact = self.env.now
        self._send(src, AckEpoch(self.addr, self.current_epoch, self.last_zxid))

    def _on_ack_epoch(self, src: NodeAddress, msg: AckEpoch) -> None:
        if self.state != PeerState.LEADING or not self._epoch_established:
            return
        self._last_heard[src] = self.env.now
        self._sync_follower(src, msg.last_zxid)

    # ---------------------------------------------------------- synchronization

    def _sync_follower(self, follower: NodeAddress, follower_last: Zxid) -> None:
        """Send DIFF/TRUNC/SNAP plus NEWLEADER to one follower.

        During active broadcast only the *committed* prefix is synced;
        in-flight proposals are re-proposed individually so the joiner votes
        on them like everyone else. The joiner is added to the recipient
        sets immediately — FIFO channels guarantee it sees sync before any
        subsequent proposal/commit, closing the join-window gap.
        """
        sync_to = self.last_committed if self._broadcast_active else self.last_zxid
        synced_entries = [
            entry
            for entry in self.log.entries_after(follower_last)
            if entry.zxid <= sync_to
        ]
        if follower_last <= sync_to:
            if follower_last == Zxid.ZERO or self.log.contains(follower_last):
                self._send(follower, Diff(self.addr, synced_entries))
            else:
                self._send(
                    follower,
                    Snap(
                        self.addr,
                        [e for e in self.log.snapshot() if e.zxid <= sync_to],
                    ),
                )
        else:
            # Follower is ahead of our sync point: its extra entries were
            # never committed (quorum intersection); truncate them away.
            self._send(follower, Trunc(self.addr, sync_to))
        self._send(follower, NewLeader(self.addr, self.current_epoch))
        self._synced_to[follower] = sync_to
        if self._broadcast_active:
            # Join the recipient sets now; ship the in-flight tail.
            if self.config.is_observer(follower):
                self._active_observers.add(follower)
                self._fanout_observers = tuple(sorted(self._active_observers))
            else:
                self._active_followers.add(follower)
                self._fanout_followers = tuple(sorted(self._active_followers))
            self._catch_up(follower)

    def _catch_up(self, member: NodeAddress) -> None:
        """Ship everything the member missed since its recorded sync point."""
        synced_to = self._synced_to.get(member, Zxid.ZERO)
        if self.config.is_observer(member):
            for entry in self.log.entries_after(synced_to):
                if entry.zxid <= self.last_committed:
                    self._send(member, Inform(self.addr, entry.zxid, entry.txn))
                    self._synced_to[member] = entry.zxid
        else:
            committed_to = None
            for entry in self.log.entries_after(synced_to):
                self._send(member, Propose(self.addr, entry.zxid, entry.txn))
                if entry.zxid <= self.last_committed:
                    committed_to = entry.zxid
            if committed_to is not None:
                # One cumulative Commit after the proposals: the member log
                # now holds every entry up to it (FIFO link), and followers
                # apply commit ranges.
                self._send(member, Commit(self.addr, committed_to))
            self._synced_to[member] = self.log.last_zxid

    def _on_diff(self, src: NodeAddress, msg: Diff) -> None:
        if src != self.leader_addr:
            return
        self._last_leader_contact = self.env.now
        for entry in msg.entries:
            if entry.zxid > self.log.last_zxid:
                self.log.append(entry.zxid, entry.txn)

    def _on_trunc(self, src: NodeAddress, msg: Trunc) -> None:
        if src != self.leader_addr:
            return
        self._last_leader_contact = self.env.now
        self.log.truncate_after(msg.truncate_to)
        for entry in msg.entries:
            if entry.zxid > self.log.last_zxid:
                self.log.append(entry.zxid, entry.txn)

    def _on_snap(self, src: NodeAddress, msg: Snap) -> None:
        if src != self.leader_addr:
            return
        self._last_leader_contact = self.env.now
        self.log.replace_all(msg.entries)
        # A snapshot may rewrite history below our applied point; the state
        # machine is rebuilt from scratch by re-applying from zero.
        self._last_applied = Zxid.ZERO
        self.last_committed = Zxid.ZERO
        if self._trace is not None:
            self._trace.emit(self.env.now, "zab", "snap-reset", self.name,
                             {"entries": len(msg.entries)})
        if self.sentinel is not None:
            self.sentinel.on_peer_reset(self)
        if self.on_reset is not None:
            self.on_reset(self)

    def _on_new_leader(self, src: NodeAddress, msg: NewLeader) -> None:
        if src != self.leader_addr:
            return
        self._last_leader_contact = self.env.now
        self.current_epoch = msg.epoch
        self._send(src, AckNewLeader(self.addr, msg.epoch))

    def _on_ack_new_leader(self, src: NodeAddress, msg: AckNewLeader) -> None:
        if self.state != PeerState.LEADING or msg.epoch != self.current_epoch:
            return
        self._last_heard[src] = self.env.now
        self._newleader_acks.add(src)
        if self._broadcast_active:
            # Late joiner: activate it immediately.
            self._activate_member(src)
            return
        self._maybe_activate_broadcast()

    def _maybe_activate_broadcast(self) -> None:
        if self._broadcast_active:
            return
        voter_acks = sum(
            1 for peer in self._newleader_acks if self.config.is_voter(peer)
        )
        if not self.config.is_quorum(voter_acks):
            return
        self._broadcast_active = True
        # Entries surviving into the new epoch are now committed.
        self.last_committed = self.last_zxid
        self._apply_up_to(self.last_committed)
        for peer in list(self._newleader_acks):
            if peer != self.addr:
                self._activate_member(peer)
        if self.on_leader_activated is not None:
            self.on_leader_activated(self)

    def _activate_member(self, member: NodeAddress) -> None:
        if self.config.is_observer(member):
            self._active_observers.add(member)
            self._fanout_observers = tuple(sorted(self._active_observers))
        else:
            self._active_followers.add(member)
            self._fanout_followers = tuple(sorted(self._active_followers))
        # Ship anything proposed/committed since the member's sync point
        # (it may have synced during establishment and activated later).
        self._catch_up(member)
        self._send(
            member,
            UpToDate(self.addr, self.current_epoch, committed_to=self.last_committed),
        )

    def _on_up_to_date(self, src: NodeAddress, msg: UpToDate) -> None:
        if src != self.leader_addr:
            return
        self._last_leader_contact = self.env.now
        # The leader's commit point at activation; anything we hold beyond
        # it is still in flight and commits normally later.
        if msg.committed_to > self.last_committed:
            self.last_committed = msg.committed_to
            self._apply_up_to(self.last_committed)

    # -------------------------------------------------------------- broadcast

    def _propose(self, txn: Any) -> Zxid:
        self._remember_submit(submit_dedup_id(txn))
        self._next_counter += 1
        zxid = Zxid(self.current_epoch, self._next_counter)
        self.log.append(zxid, txn)
        self._pending.append(zxid)
        self._acks[zxid] = {self.addr}
        self._proposed_at[zxid] = self.env.now
        message = Propose(self.addr, zxid, txn)
        for follower in self._fanout_followers:
            self._send(follower, message)
        self._maybe_commit()
        return zxid

    def _remember_submit(self, dedup_id: Optional[Tuple[Any, ...]]) -> None:
        if dedup_id is None:
            return
        self._recent_submits[dedup_id] = None
        while len(self._recent_submits) > SUBMIT_DEDUP_LIMIT:
            self._recent_submits.popitem(last=False)

    def _retransmit_pending(self) -> None:
        """Re-propose pending transactions whose acks are overdue.

        Under a lossy link a PROPOSE (or its ACK) can vanish; without
        retransmission the quorum never forms and the write stalls forever.
        Only followers that have not acked are re-sent; duplicates are
        harmless because followers re-ack anything already in their log.
        """
        now = self.env.now
        overdue = 2.0 * self.config.heartbeat_interval_ms
        for zxid in self._pending:
            if now - self._proposed_at.get(zxid, now) < overdue:
                continue
            entry = self.log.get(zxid)
            if entry is None:
                continue
            self._proposed_at[zxid] = now
            message = Propose(self.addr, zxid, entry.txn)
            acked = self._acks.get(zxid, set())
            for follower in self._fanout_followers:
                if follower not in acked:
                    self._send(follower, message)
                    self.proposals_retransmitted += 1

    def _request_resync(self) -> None:
        """Ask the leader to re-sync us (rate-limited).

        Used when a proposal or commit arrives that our log cannot accept —
        something before it was lost on the wire. Reuses the late-joiner
        path: FOLLOWERINFO -> LEADERINFO -> ACKEPOCH -> DIFF/SNAP.
        """
        if self.leader_addr is None:
            return
        now = self.env.now
        if now - self._last_resync_request < self.config.election_timeout_ms / 2.0:
            return
        self._last_resync_request = now
        self._send(
            self.leader_addr,
            FollowerInfo(self.addr, self.accepted_epoch, self.last_zxid),
        )

    @staticmethod
    def _follows(last: Zxid, nxt: Zxid) -> bool:
        """Is ``nxt`` the immediate successor of ``last`` in zxid order?"""
        if nxt.epoch == last.epoch:
            return nxt.counter == last.counter + 1
        return nxt.epoch > last.epoch and nxt.counter == 1

    def _on_propose(self, src: NodeAddress, msg: Propose) -> None:
        if src != self.leader_addr or self.state != PeerState.FOLLOWING:
            return
        self._last_leader_contact = self.env.now
        last = self.log.last_zxid
        if msg.zxid <= last:
            # Duplicate or retransmission of an entry we already hold:
            # re-ack so a lost ACK cannot stall the quorum forever.
            self._send(src, Ack(self.addr, msg.zxid))
            return
        if self._follows(last, msg.zxid):
            self.log.append(msg.zxid, msg.txn)
            self._send(src, Ack(self.addr, msg.zxid))
            return
        # Gap: a proposal in between was lost. Never append out of order —
        # the log must stay contiguous — ask the leader to resync instead.
        self._request_resync()

    def _on_ack(self, src: NodeAddress, msg: Ack) -> None:
        if self.state != PeerState.LEADING:
            return
        self._last_heard[src] = self.env.now
        if msg.zxid in self._acks:
            self._acks[msg.zxid].add(src)
            self._maybe_commit()

    def _maybe_commit(self) -> None:
        """Commit pending proposals in zxid order as quorums form.

        A same-instant burst of acks can mature several proposals at once:
        they are applied in one pass and each follower receives a single
        cumulative Commit for the newest matured zxid (followers apply
        commit *ranges*, see :meth:`_on_commit_msg`). Observers still get
        one Inform per entry — Inform carries the txn payload.
        """
        pending = self._pending
        committed: List[Any] = []
        while pending:
            zxid = pending[0]
            if not self.config.is_quorum(len(self._acks.get(zxid, ()))):
                break
            pending.popleft()
            self._acks.pop(zxid, None)
            self._proposed_at.pop(zxid, None)
            entry = self.log.get(zxid)
            assert entry is not None
            committed.append(entry)
        if not committed:
            return
        zxid = committed[-1].zxid
        self.last_committed = zxid
        self._apply_up_to(zxid)
        commit = Commit(self.addr, zxid)
        for follower in self._fanout_followers:
            self._send(follower, commit)
        for observer in self._fanout_observers:
            for entry in committed:
                self._send(observer, Inform(self.addr, entry.zxid, entry.txn))

    def _on_commit_msg(self, src: NodeAddress, msg: Commit) -> None:
        if src != self.leader_addr:
            return
        self._last_leader_contact = self.env.now
        if msg.zxid <= self.last_committed:
            return  # duplicate commit
        if not self.log.contains(msg.zxid):
            # The proposal itself was lost: don't advance the commit point
            # past entries we don't hold — resync with the leader instead.
            self._request_resync()
            return
        self.last_committed = msg.zxid
        self._apply_up_to(msg.zxid)

    def _on_inform(self, src: NodeAddress, msg: Inform) -> None:
        if self.state != PeerState.OBSERVING or src != self.leader_addr:
            return
        self._last_leader_contact = self.env.now
        if msg.zxid > self.log.last_zxid:
            self.log.append(msg.zxid, msg.txn)
        self.last_committed = max(self.last_committed, msg.zxid)
        self._apply_up_to(msg.zxid)

    def _on_submit_request(self, src: NodeAddress, msg: SubmitRequest) -> None:
        if not self.is_leader:
            return  # sender will retry after its timeout
        dedup_id = submit_dedup_id(msg.txn)
        if dedup_id is not None and dedup_id in self._recent_submits:
            # A retransmitted forward of a transaction we already took in.
            self.duplicate_submits_dropped += 1
            return
        self._remember_submit(dedup_id)
        if self.on_submit is not None:
            self.on_submit(msg.txn)
        else:
            self._propose(msg.txn)

    def _apply_up_to(self, zxid: Zxid) -> None:
        if zxid <= self._last_applied:
            return
        if self.on_commit is None:
            self._last_applied = zxid
            return
        for entry in self.log.entries_range(self._last_applied, zxid):
            self._last_applied = entry.zxid
            self.commits_delivered += 1
            if self.sentinel is not None:
                self.sentinel.on_peer_commit(self, entry.zxid, entry.txn)
            self.on_commit(entry.zxid, entry.txn)

    # -------------------------------------------------------------- liveness

    def _on_ping(self, src: NodeAddress, msg: Ping) -> None:
        if src != self.leader_addr:
            return
        self._last_leader_contact = self.env.now
        if msg.last_committed is not None and self.state == PeerState.FOLLOWING:
            if msg.last_committed > self.last_committed:
                if self.log.contains(msg.last_committed):
                    self.last_committed = msg.last_committed
                    self._apply_up_to(msg.last_committed)
                else:
                    # The leader committed entries we never received.
                    self._request_resync()
        self._send(src, Pong(self.addr, self.current_epoch))

    def _on_pong(self, src: NodeAddress, msg: Pong) -> None:
        if self.state == PeerState.LEADING:
            self._last_heard[src] = self.env.now
