"""Zab transaction identifiers.

A zxid is a pair ``(epoch, counter)``; ZooKeeper packs it into one 64-bit
integer with the epoch in the high 32 bits. Total order on zxids is the
total order on commits within one ensemble.
"""

from __future__ import annotations

from typing import ClassVar

__all__ = ["Zxid"]


class Zxid:
    """A Zab transaction id: ``(epoch, counter)``, totally ordered.

    A hand-written ``__slots__`` class rather than a frozen ordered
    dataclass: zxids are compared on every proposal, ack, commit, and log
    append, and the generated dataclass comparisons (which build a field
    tuple per operand per compare) dominated the broadcast hot path. The
    hash matches the old dataclass hash — ``hash((epoch, counter))`` — so
    dict and set iteration orders are unchanged.
    """

    __slots__ = ("epoch", "counter", "_hash")

    ZERO: ClassVar["Zxid"]

    def __init__(self, epoch: int = 0, counter: int = 0):
        object.__setattr__(self, "epoch", epoch)
        object.__setattr__(self, "counter", counter)
        object.__setattr__(self, "_hash", hash((epoch, counter)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"Zxid is immutable (tried to set {key!r})")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Zxid:
            return NotImplemented
        return self.epoch == other.epoch and self.counter == other.counter

    def __ne__(self, other: object) -> bool:
        if other.__class__ is not Zxid:
            return NotImplemented
        return self.epoch != other.epoch or self.counter != other.counter

    def __lt__(self, other: "Zxid") -> bool:
        if other.__class__ is not Zxid:
            return NotImplemented
        if self.epoch != other.epoch:
            return self.epoch < other.epoch
        return self.counter < other.counter

    def __le__(self, other: "Zxid") -> bool:
        if other.__class__ is not Zxid:
            return NotImplemented
        if self.epoch != other.epoch:
            return self.epoch < other.epoch
        return self.counter <= other.counter

    def __gt__(self, other: "Zxid") -> bool:
        if other.__class__ is not Zxid:
            return NotImplemented
        if self.epoch != other.epoch:
            return self.epoch > other.epoch
        return self.counter > other.counter

    def __ge__(self, other: "Zxid") -> bool:
        if other.__class__ is not Zxid:
            return NotImplemented
        if self.epoch != other.epoch:
            return self.epoch > other.epoch
        return self.counter >= other.counter

    def __repr__(self) -> str:
        return f"Zxid(epoch={self.epoch!r}, counter={self.counter!r})"

    def next(self) -> "Zxid":
        """The next zxid in the same epoch."""
        return Zxid(self.epoch, self.counter + 1)

    def new_epoch(self, epoch: int) -> "Zxid":
        """The first zxid of a later epoch."""
        if epoch <= self.epoch:
            raise ValueError(f"epoch {epoch} not newer than {self.epoch}")
        return Zxid(epoch, 0)

    def packed(self) -> int:
        """ZooKeeper-style 64-bit packed representation."""
        return (self.epoch << 32) | (self.counter & 0xFFFFFFFF)

    @classmethod
    def unpack(cls, packed: int) -> "Zxid":
        return cls(packed >> 32, packed & 0xFFFFFFFF)

    def __str__(self) -> str:
        return f"{self.epoch}:{self.counter}"


Zxid.ZERO = Zxid(0, 0)
