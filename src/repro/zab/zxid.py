"""Zab transaction identifiers.

A zxid is a pair ``(epoch, counter)``; ZooKeeper packs it into one 64-bit
integer with the epoch in the high 32 bits. Total order on zxids is the
total order on commits within one ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

__all__ = ["Zxid"]


@dataclass(frozen=True, order=True)
class Zxid:
    """A Zab transaction id: ``(epoch, counter)``, totally ordered."""

    epoch: int = 0
    counter: int = 0

    ZERO: ClassVar["Zxid"]

    def next(self) -> "Zxid":
        """The next zxid in the same epoch."""
        return Zxid(self.epoch, self.counter + 1)

    def new_epoch(self, epoch: int) -> "Zxid":
        """The first zxid of a later epoch."""
        if epoch <= self.epoch:
            raise ValueError(f"epoch {epoch} not newer than {self.epoch}")
        return Zxid(epoch, 0)

    def packed(self) -> int:
        """ZooKeeper-style 64-bit packed representation."""
        return (self.epoch << 32) | (self.counter & 0xFFFFFFFF)

    @classmethod
    def unpack(cls, packed: int) -> "Zxid":
        return cls(packed >> 32, packed & 0xFFFFFFFF)

    def __str__(self) -> str:
        return f"{self.epoch}:{self.counter}"


Zxid.ZERO = Zxid(0, 0)
