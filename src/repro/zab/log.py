"""In-memory transaction log with snapshot support.

Each peer keeps an ordered log of accepted transactions. The log supports
the three synchronization modes Zab uses to catch a follower up:

* ``DIFF``  — send the suffix of entries the follower is missing;
* ``TRUNC`` — tell the follower to drop entries the new leader never saw;
* ``SNAP``  — ship a full state snapshot when the follower is too far back.

Entries are strictly increasing in zxid, so lookups and range queries are
binary searches (the apply path runs once per commit per replica and must
not be linear in history length).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.zab.zxid import Zxid

__all__ = ["LogEntry", "TxnLog"]


@dataclass(frozen=True)
class LogEntry:
    """A single accepted transaction."""

    zxid: Zxid
    txn: Any


class TxnLog:
    """Ordered, strictly-increasing-zxid transaction log."""

    def __init__(self):
        self._entries: List[LogEntry] = []
        # Parallel packed-zxid keys for binary search.
        self._keys: List[int] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def last_zxid(self) -> Zxid:
        return self._entries[-1].zxid if self._entries else Zxid.ZERO

    def append(self, zxid: Zxid, txn: Any) -> LogEntry:
        """Append a transaction; zxids must be strictly increasing."""
        if self._entries and zxid <= self._entries[-1].zxid:
            raise ValueError(
                f"zxid {zxid} not after log tail {self._entries[-1].zxid}"
            )
        entry = LogEntry(zxid, txn)
        self._entries.append(entry)
        self._keys.append(zxid.packed())
        return entry

    def entries_after(self, zxid: Zxid) -> List[LogEntry]:
        """All entries with zxid strictly greater than ``zxid``."""
        start = bisect.bisect_right(self._keys, zxid.packed())
        return self._entries[start:]

    def entries_range(self, after: Zxid, upto: Zxid) -> List[LogEntry]:
        """Entries with ``after < zxid <= upto``."""
        start = bisect.bisect_right(self._keys, after.packed())
        end = bisect.bisect_right(self._keys, upto.packed())
        return self._entries[start:end]

    def contains(self, zxid: Zxid) -> bool:
        index = bisect.bisect_left(self._keys, zxid.packed())
        return index < len(self._keys) and self._keys[index] == zxid.packed()

    def truncate_after(self, zxid: Zxid) -> List[LogEntry]:
        """Drop entries after ``zxid``; returns what was dropped."""
        cut = bisect.bisect_right(self._keys, zxid.packed())
        dropped = self._entries[cut:]
        del self._entries[cut:]
        del self._keys[cut:]
        return dropped

    def get(self, zxid: Zxid) -> Optional[LogEntry]:
        index = bisect.bisect_left(self._keys, zxid.packed())
        if index < len(self._keys) and self._keys[index] == zxid.packed():
            return self._entries[index]
        return None

    def replace_all(self, entries: List[LogEntry]) -> None:
        """Install a snapshot: replace the whole log."""
        for previous, current in zip(entries, entries[1:]):
            if current.zxid <= previous.zxid:
                raise ValueError("snapshot entries not strictly increasing")
        self._entries = list(entries)
        self._keys = [entry.zxid.packed() for entry in self._entries]

    def tail(self, count: int) -> List[LogEntry]:
        return self._entries[-count:] if count > 0 else []

    def snapshot(self) -> List[LogEntry]:
        """A copy of the full log (entries are immutable)."""
        return list(self._entries)
