"""Zab-style atomic broadcast.

An implementation of the ZooKeeper Atomic Broadcast protocol structure the
paper builds on (§II-C: "WanKeeper's protocol is an extension of Zab"):

* **fast leader election** — peers exchange votes ordered by (last zxid,
  server id) until a quorum agrees;
* **discovery** — the new leader learns the latest accepted epoch from a
  quorum and issues a new epoch;
* **synchronization** — followers are brought up to date (DIFF / TRUNC /
  SNAP) before the new epoch serves traffic;
* **broadcast** — two-phase quorum commit (PROPOSE / ACK / COMMIT) with
  strictly increasing zxids;
* **observers** — non-voting learners that receive committed transactions
  only (INFORM), used by the paper's "ZooKeeper with observers" baseline.

The module exposes :class:`ZabPeer` (one per server) and
:class:`EnsembleConfig`. The replicated state machine on top registers an
``on_commit`` callback; WanKeeper additionally hooks the leader's proposal
path to implement token checks.
"""

from repro.zab.config import EnsembleConfig
from repro.zab.log import LogEntry, TxnLog
from repro.zab.peer import PeerState, ZabPeer
from repro.zab.zxid import Zxid

__all__ = [
    "EnsembleConfig",
    "LogEntry",
    "PeerState",
    "TxnLog",
    "ZabPeer",
    "Zxid",
]
