"""The SCFS client: file operations over the coordination service.

File metadata is one znode per file under ``/scfs/files``; a metadata
update is a versioned ``set_data`` (the paper's YCSB "metadata update"
microbenchmark drives exactly this operation). File contents go to a
trivially simulated cloud blob store — irrelevant to the benchmark but kept
so the examples can exercise a full open/write/close flow.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.kernel import Environment
from repro.zk.client import ZkClient
from repro.zk.errors import NodeExistsError, NoNodeError

__all__ = ["ScfsClient"]

FILES_ROOT = "/scfs/files"


class _BlobStore:
    """Stand-in for the cloud object stores SCFS writes file data to."""

    def __init__(self):
        self._blobs: Dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> None:
        self._blobs[key] = data

    def get(self, key: str) -> Optional[bytes]:
        return self._blobs.get(key)


#: One shared backend per simulation is enough for the use case.
_SHARED_BACKENDS: Dict[int, _BlobStore] = {}


def _backend_for(env: Environment) -> _BlobStore:
    backend = _SHARED_BACKENDS.get(id(env))
    if backend is None:
        backend = _BlobStore()
        _SHARED_BACKENDS[id(env)] = backend
    return backend


class ScfsClient:
    """A mounted SCFS instance for one user/site."""

    def __init__(self, env: Environment, zk: ZkClient, name: str = ""):
        self.env = env
        self.zk = zk
        self.name = name or "scfs"
        self.blobs = _backend_for(env)
        self.metadata_updates = 0

    def mount(self):
        """Generator: ensure the metadata tree exists."""
        yield self.zk.connect()
        for path in ("/scfs", FILES_ROOT):
            try:
                yield self.zk.create(path, b"")
            except NodeExistsError:
                pass

    @staticmethod
    def file_path(file_name: str) -> str:
        return f"{FILES_ROOT}/{file_name}"

    def create_file(self, file_name: str, metadata: bytes = b""):
        """Generator: create a file's metadata entry."""
        yield self.zk.create(self.file_path(file_name), metadata)

    def update_metadata(self, file_name: str, metadata: bytes):
        """Generator: one metadata update (the benchmark's operation)."""
        yield self.zk.set_data(self.file_path(file_name), metadata)
        self.metadata_updates += 1

    def read_metadata(self, file_name: str):
        """Generator: read a file's metadata; returns (data, stat)."""
        data, stat = yield self.zk.get_data(self.file_path(file_name))
        return data, stat

    def write_file(self, file_name: str, data: bytes):
        """Generator: full write: blob upload + metadata update."""
        blob_key = f"{file_name}#{self.env.now}"
        self.blobs.put(blob_key, data)
        yield from self.update_metadata(
            file_name, f"blob={blob_key};size={len(data)}".encode()
        )

    def read_file(self, file_name: str):
        """Generator: full read: metadata lookup + blob fetch."""
        data, _stat = yield self.zk.get_data(self.file_path(file_name))
        fields = dict(
            part.split("=", 1) for part in data.decode().split(";") if "=" in part
        )
        blob_key = fields.get("blob")
        return self.blobs.get(blob_key) if blob_key else None

    def list_files(self):
        """Generator: list file names."""
        try:
            children = yield self.zk.get_children(FILES_ROOT)
        except NoNodeError:
            return []
        return children
