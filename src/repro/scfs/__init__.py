"""SCFS-style cloud-backed file system metadata service (paper §IV-C).

SCFS (Shared Cloud-backed File System) keeps file *data* in cloud object
stores and file *metadata* — and the coordination of multi-client access —
in the coordination service. The paper's microbenchmark drives only the
metadata-update path, so the blob backend here is a latency-free store: the
experiment's behaviour is entirely determined by where metadata updates are
serialized (remote ZooKeeper leader vs. WanKeeper tokens).
"""

from repro.scfs.client import ScfsClient

__all__ = ["ScfsClient"]
