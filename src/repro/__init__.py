"""WanKeeper: efficient distributed coordination at WAN-scale.

A complete Python reproduction of the ICDCS 2017 paper, built on a
deterministic discrete-event simulation. See the README for a tour and
DESIGN.md for the system inventory.

Top-level subpackages:

* :mod:`repro.sim` -- simulation kernel
* :mod:`repro.net` -- WAN topology and transport
* :mod:`repro.zab` -- Zab atomic broadcast
* :mod:`repro.zk` -- ZooKeeper-equivalent coordination service
* :mod:`repro.wankeeper` -- the paper's contribution
* :mod:`repro.consistency` -- history checkers
* :mod:`repro.workloads` -- YCSB-style drivers and statistics
* :mod:`repro.bookkeeper`, :mod:`repro.scfs` -- evaluation use cases
* :mod:`repro.experiments` -- one module per paper figure
"""

__version__ = "1.0.0"
