"""Profiling harness: ``repro profile <target>``.

Wraps any runner scenario suite or bench workload in :mod:`cProfile` and
reports where the wall-clock goes, two ways:

* a **top-N hotspot table** (tottime-ordered, like ``pstats``), and
* a **cumulative-by-module rollup** that buckets every profiled frame
  into one of the repo's layers — ``kernel`` (sim), ``net``, ``zab``,
  ``zk``, ``wankeeper``, ``fleet``, ``workload``
  (workloads/experiments/runner), or ``other`` (stdlib and everything
  else).

The rollup is the number that matters across PRs: a perf pass aimed at
the protocol layer should show the zk/wankeeper *share* of tottime
shrinking while the kernel/net share grows (the substrate becoming the
bottleneck again). Reports are JSON (``BENCH_profile.json``-style) so
hotspot shifts are diffable; ``--section before|after`` merges runs into
one committed artifact the same way ``BENCH_kernel.json`` keeps its
pre-optimization numbers.

Profiling is observation-only: the simulation under the profiler makes
exactly the same RNG draws and scheduling decisions as an unprofiled
run, so seeded history digests are unchanged (tests/test_profile.py
pins this).
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "PROFILE_FILE",
    "available_targets",
    "main",
    "module_group",
    "profile_callable",
    "profile_target",
]

PROFILE_FILE = "BENCH_profile.json"

#: Layer buckets, matched against the path of each profiled code object.
#: First match wins; anything outside src/repro lands in "other".
_GROUP_MARKERS: Tuple[Tuple[str, str], ...] = (
    ("repro/sim/", "kernel"),
    ("repro/net/", "net"),
    ("repro/zab/", "zab"),
    ("repro/zk/", "zk"),
    ("repro/wankeeper/", "wankeeper"),
    ("repro/fleet/", "fleet"),
    ("repro/workloads/", "workload"),
    ("repro/experiments/", "workload"),
    ("repro/runner/", "workload"),
    ("repro/scfs/", "workload"),
    ("repro/consistency/", "workload"),
    ("repro/", "workload"),
)

#: Rollup group order for reports (stable, layer-stack order).
GROUPS = (
    "kernel", "net", "zab", "zk", "wankeeper", "fleet", "workload", "other"
)


def module_group(filename: str) -> str:
    """Map a profiled frame's filename to its layer bucket."""
    normalized = filename.replace("\\", "/")
    for marker, group in _GROUP_MARKERS:
        if marker in normalized:
            return group
    return "other"


def profile_callable(
    fn: Callable[[], Any], top: int = 25
) -> Tuple[Any, Dict[str, Any]]:
    """Run ``fn`` under cProfile; return ``(fn_result, report_dict)``.

    The report carries the per-module rollup and the top-N hotspots.
    cProfile observes the interpreter without touching program state, so
    ``fn``'s result is byte-identical to an unprofiled call.
    """
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    wall = time.perf_counter() - started

    stats = pstats.Stats(profiler)
    modules: Dict[str, Dict[str, float]] = {
        group: {"tottime_s": 0.0, "calls": 0} for group in GROUPS
    }
    rows: List[Dict[str, Any]] = []
    total_tottime = 0.0
    total_calls = 0
    for (filename, lineno, funcname), (
        ccalls,
        ncalls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        group = module_group(filename)
        bucket = modules[group]
        # The rollup sums tottime (exclusive time): summing cumtime over
        # every frame would double-count nested calls. Per-row cumtime is
        # still reported in the hotspot table.
        bucket["tottime_s"] += tottime
        bucket["calls"] += ncalls
        total_tottime += tottime
        total_calls += ncalls
        rows.append(
            {
                "function": funcname,
                "file": _short_path(filename),
                "line": lineno,
                "module": group,
                "ncalls": ncalls,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )

    rows.sort(key=lambda row: (-row["tottime_s"], row["file"], row["line"]))
    for group in GROUPS:
        bucket = modules[group]
        bucket["tottime_s"] = round(bucket["tottime_s"], 6)
        bucket["tottime_share"] = round(
            bucket["tottime_s"] / total_tottime, 4
        ) if total_tottime else 0.0

    protocol = (
        modules["zab"]["tottime_s"]
        + modules["zk"]["tottime_s"]
        + modules["wankeeper"]["tottime_s"]
    )
    substrate = modules["kernel"]["tottime_s"] + modules["net"]["tottime_s"]
    report = {
        "wall_s": round(wall, 4),
        "profiled_tottime_s": round(total_tottime, 4),
        "total_calls": total_calls,
        "modules": modules,
        # Headline ratio: protocol-layer time over substrate time. A
        # protocol-layer perf pass should drive this *down*.
        "protocol_over_substrate": (
            round(protocol / substrate, 4) if substrate else None
        ),
        "hotspots": rows[:top],
    }
    return result, report


def _short_path(filename: str) -> str:
    normalized = filename.replace("\\", "/")
    marker = "src/repro/"
    index = normalized.find(marker)
    if index >= 0:
        return normalized[index + len("src/") :]
    if normalized.startswith("~") or normalized.startswith("<"):
        return normalized
    return normalized.rsplit("/", 1)[-1]


# -- targets ------------------------------------------------------------------


_BENCH_TARGETS = ("kernel", "transport", "ycsb", "fleet")


def available_targets() -> List[str]:
    """Profile targets: bench workloads plus every runner suite."""
    from repro.runner import SUITES

    return ["bench:" + name for name in _BENCH_TARGETS] + sorted(SUITES)


def _target_callable(
    target: str, small: bool, seed: int
) -> Callable[[], Any]:
    """Resolve a target name to a zero-arg callable to profile.

    ``bench:kernel|transport|ycsb|fleet`` (bare bench names accepted
    too) run the corresponding bench workload; any runner suite name
    (fig4, fig7, ablations, soak, fleet_full, ...) runs every cell of
    that suite in-process, serially — the same work ``repro experiments
    <name> --jobs 1`` does, minus rendering.
    """
    name = target[len("bench:") :] if target.startswith("bench:") else target
    if name in _BENCH_TARGETS:
        from repro import bench

        fn = getattr(bench, f"bench_{name}")
        if name in ("ycsb", "fleet"):
            return lambda: fn(quick=small, seed=seed)
        return lambda: fn(quick=small)

    from repro.runner import SUITES, build_suite
    from repro.runner.cells import run_cell

    if name not in SUITES:
        raise KeyError(
            f"unknown profile target {target!r} "
            f"(available: {', '.join(available_targets())})"
        )
    scenarios = build_suite(name, small, seed)

    def run_suite_cells() -> Dict[str, Any]:
        return {
            scenario.digest(): run_cell(scenario) for scenario in scenarios
        }

    return run_suite_cells


def profile_target(
    target: str, small: bool = False, seed: int = 42, top: int = 25
) -> Dict[str, Any]:
    """Profile one target and return its JSON-plain report."""
    fn = _target_callable(target, small, seed)
    _result, report = profile_callable(fn, top=top)
    report = {
        "target": target,
        "small": small,
        "seed": seed,
        **report,
    }
    return report


# -- report rendering / file merge --------------------------------------------


def _format_report(report: Dict[str, Any], top: int) -> str:
    from repro.experiments.common import format_table

    lines = []
    module_rows = []
    for group in GROUPS:
        bucket = report["modules"][group]
        module_rows.append(
            [
                group,
                f"{bucket['tottime_s']:.3f}",
                f"{bucket['tottime_share']:.1%}",
                f"{bucket['calls']:,}",
            ]
        )
    lines.append(
        format_table(
            ["layer", "tottime s", "share", "calls"],
            module_rows,
            title=(
                f"{report['target']}"
                f"{' (small)' if report.get('small') else ''}: "
                f"{report['wall_s']:.2f}s wall, "
                f"protocol/substrate "
                f"{report['protocol_over_substrate']}"
            ),
        )
    )
    hot_rows = [
        [
            f"{row['file']}:{row['line']}",
            row["function"],
            f"{row['ncalls']:,}",
            f"{row['tottime_s']:.3f}",
            f"{row['cumtime_s']:.3f}",
        ]
        for row in report["hotspots"][:top]
    ]
    lines.append(
        format_table(
            ["location", "function", "ncalls", "tottime s", "cumtime s"],
            hot_rows,
            title=f"top {len(hot_rows)} hotspots by tottime",
        )
    )
    return "\n".join(lines)


def _merge_profile_file(
    path: str, section: str, report: Dict[str, Any]
) -> Dict[str, Any]:
    """Insert ``report`` under ``payload[section][target]``, keeping the
    other section (before/after) and other targets intact."""
    import os

    payload: Dict[str, Any] = {"schema": "bench_profile/v1"}
    if os.path.exists(path):
        with open(path) as handle:
            existing = json.load(handle)
        for key in ("before", "after"):
            if key in existing:
                payload[key] = existing[key]
    payload.setdefault(section, {})[report["target"]] = report
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return payload


# -- CLI ----------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description=(
            "Profile a bench workload or runner suite under cProfile and "
            "report top hotspots plus a per-layer (kernel/net/zab/zk/"
            "wankeeper/fleet/workload) rollup of tottime."
        ),
    )
    parser.add_argument(
        "target",
        help=(
            "what to profile: bench:kernel, bench:transport, bench:ycsb, "
            "bench:fleet, or any runner suite (fig4..fig10, ablations, "
            "soak, fleet_full)"
        ),
    )
    parser.add_argument(
        "--small", action="store_true", help="reduced sizes (quick look)"
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--top", type=int, default=25, help="hotspot rows to keep (default 25)"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    parser.add_argument(
        "--out",
        default=PROFILE_FILE,
        help=f"merge the report into this JSON file (default {PROFILE_FILE})",
    )
    parser.add_argument(
        "--section",
        choices=("before", "after"),
        default="after",
        help="which section of the profile file to write (default after)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print only; do not touch the profile file",
    )
    args = parser.parse_args(argv)

    try:
        report = profile_target(
            args.target, small=args.small, seed=args.seed, top=args.top
        )
    except KeyError as exc:
        print(exc.args[0])
        return 2

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_format_report(report, args.top))
    if not args.no_write:
        _merge_profile_file(args.out, args.section, report)
        print(f"wrote {args.out} [{args.section}][{args.target}]")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
