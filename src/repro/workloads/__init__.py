"""YCSB-style workload generation, drivers, and measurement.

Reimplements the slice of the Yahoo! Cloud Serving Benchmark the paper uses
(§IV-A): closed-loop synchronous clients, Zipfian record selection, and
read/update operation mixes — plus the paper's multi-site access patterns
(disjoint partitions, fractional overlap, hotspots) and the latency /
throughput / CDF / time-series statistics its figures report.
"""

from repro.workloads.choosers import (
    HotspotChooser,
    KeyChooser,
    OverlapChooser,
    UniformChooser,
    ZipfianChooser,
)
from repro.workloads.driver import (
    YcsbSpec,
    load_records,
    run_ycsb,
    ycsb_client,
)
from repro.workloads.stats import LatencyRecorder, OpSample, percentile

__all__ = [
    "HotspotChooser",
    "KeyChooser",
    "LatencyRecorder",
    "OpSample",
    "OverlapChooser",
    "UniformChooser",
    "YcsbSpec",
    "ZipfianChooser",
    "load_records",
    "percentile",
    "run_ycsb",
    "ycsb_client",
]
