"""Measurement: per-operation samples, percentiles, CDFs, time series."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LatencyRecorder", "OpSample", "percentile"]


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) of pre-sorted values."""
    if not sorted_values:
        raise ValueError("no samples")
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must be in [0, 100]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    # low + delta*f form is exact when both endpoints are equal (the
    # a*(1-f) + b*f form can round just outside [a, b]).
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * fraction


@dataclass(frozen=True)
class OpSample:
    """One completed operation."""

    kind: str  # "read" | "write" | domain-specific
    start: float  # sim ms
    latency: float  # ms
    ok: bool = True


class LatencyRecorder:
    """Collects operation samples for one experiment run."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[OpSample] = []
        self.errors = 0
        # kind -> sorted ok-latency list, invalidated on record(). Every
        # percentile/CDF/fraction query goes through latencies(); without
        # the cache each query re-filtered and re-sorted the full sample
        # list (reporting does dozens of queries per run).
        self._sorted_cache: Dict[Optional[str], List[float]] = {}

    def record(self, kind: str, start: float, latency: float, ok: bool = True) -> None:
        self.samples.append(OpSample(kind, start, latency, ok))
        if self._sorted_cache:
            self._sorted_cache.clear()
        if not ok:
            self.errors += 1

    # -- selection ----------------------------------------------------------

    def latencies(self, kind: Optional[str] = None) -> List[float]:
        """Sorted ok-latencies for ``kind`` (cached; treat as read-only)."""
        cached = self._sorted_cache.get(kind)
        if cached is None:
            cached = sorted(
                s.latency
                for s in self.samples
                if s.ok and (kind is None or s.kind == kind)
            )
            self._sorted_cache[kind] = cached
        return cached

    def count(self, kind: Optional[str] = None) -> int:
        return sum(
            1 for s in self.samples if s.ok and (kind is None or s.kind == kind)
        )

    # -- aggregates -----------------------------------------------------------

    def mean_latency(self, kind: Optional[str] = None) -> float:
        values = self.latencies(kind)
        if not values:
            raise ValueError(f"no samples for kind {kind!r}")
        return sum(values) / len(values)

    def percentile_latency(self, p: float, kind: Optional[str] = None) -> float:
        return percentile(self.latencies(kind), p)

    def span_ms(self) -> float:
        """Wall-clock (simulated) span from first start to last completion."""
        if not self.samples:
            return 0.0
        first = min(s.start for s in self.samples)
        last = max(s.start + s.latency for s in self.samples)
        return last - first

    def throughput_ops_per_sec(self, kind: Optional[str] = None) -> float:
        """Completed ops per simulated second over the run's span."""
        span = self.span_ms()
        if span <= 0:
            return 0.0
        return self.count(kind) / (span / 1000.0)

    def cdf(self, kind: Optional[str] = None) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) points for CDF plots (Fig. 5)."""
        values = self.latencies(kind)
        n = len(values)
        return [(value, (index + 1) / n) for index, value in enumerate(values)]

    def fraction_below(self, latency_ms: float, kind: Optional[str] = None) -> float:
        """Fraction of operations completing within ``latency_ms``."""
        values = self.latencies(kind)
        if not values:
            raise ValueError(f"no samples for kind {kind!r}")
        return bisect.bisect_right(values, latency_ms) / len(values)

    def timeseries(
        self, bucket_ms: float, kind: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """Per-bucket throughput (ops/sec), for Fig. 10c-style plots."""
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        buckets: Dict[int, int] = {}
        for sample in self.samples:
            if not sample.ok or (kind is not None and sample.kind != kind):
                continue
            bucket = int((sample.start + sample.latency) // bucket_ms)
            buckets[bucket] = buckets.get(bucket, 0) + 1
        return [
            (bucket * bucket_ms, count / (bucket_ms / 1000.0))
            for bucket, count in sorted(buckets.items())
        ]

    def summary(
        self, kinds: Sequence[str] = ("read", "write")
    ) -> Dict[str, object]:
        """JSON-plain aggregate snapshot (for scenario cells / caching).

        Per kind: count, mean, p50/p90/p99 (None when the kind has no ok
        samples), plus overall count, throughput, span, and errors. Every
        value is a JSON scalar so the dict round-trips bit-exactly
        through the result cache.
        """
        def maybe(fn, *args):
            try:
                return fn(*args)
            except ValueError:
                return None

        out: Dict[str, object] = {
            "count": self.count(),
            "errors": self.errors,
            "span_ms": self.span_ms(),
            "throughput_ops_per_sec": self.throughput_ops_per_sec(),
        }
        for kind in kinds:
            out[f"{kind}_count"] = self.count(kind)
            out[f"{kind}_mean_ms"] = maybe(self.mean_latency, kind)
            for p in (50, 90, 99):
                out[f"{kind}_p{p}_ms"] = maybe(self.percentile_latency, p, kind)
        return out

    def merged(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """A new recorder with both sample sets (multi-client totals)."""
        result = LatencyRecorder(name=f"{self.name}+{other.name}")
        result.samples = self.samples + other.samples
        result.errors = self.errors + other.errors
        return result
