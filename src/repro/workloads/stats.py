"""Measurement: per-operation samples, percentiles, CDFs, time series.

Two recording modes:

* ``exact`` (the default) keeps every :class:`OpSample` — full-fidelity
  CDFs and time series, one tuple object per operation. All the paper's
  figures use this mode.
* ``sketch`` keeps **O(1) memory per kind**: exact count / mean / error
  / span accounting plus a fixed-size reservoir (Vitter's algorithm R
  with a deterministic seeded RNG) from which percentiles and CDFs are
  estimated. The fleet-scale cells run millions of operations across
  10^5-10^6 sessions; one tuple per op would dominate the heap, so they
  record through a sketch instead. Counts, means, errors, span, and
  throughput are exact in both modes; only percentile/CDF queries are
  estimates in sketch mode.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LatencyRecorder", "OpSample", "percentile"]


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) of pre-sorted values."""
    if not sorted_values:
        raise ValueError("no samples")
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must be in [0, 100]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    # low + delta*f form is exact when both endpoints are equal (the
    # a*(1-f) + b*f form can round just outside [a, b]).
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * fraction


@dataclass(frozen=True)
class OpSample:
    """One completed operation."""

    kind: str  # "read" | "write" | domain-specific
    start: float  # sim ms
    latency: float  # ms
    ok: bool = True


def _reservoir_rng(name: str) -> random.Random:
    """Deterministic reservoir RNG: seeded from the recorder *name* via
    sha256, never from ``hash()`` (which moves with PYTHONHASHSEED)."""
    digest = hashlib.sha256(f"reservoir:{name}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class LatencyRecorder:
    """Collects operation samples for one experiment run."""

    def __init__(
        self,
        name: str = "",
        mode: str = "exact",
        reservoir_size: int = 4096,
    ):
        if mode not in ("exact", "sketch"):
            raise ValueError(f"unknown recorder mode {mode!r}")
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self.name = name
        self.mode = mode
        self.reservoir_size = reservoir_size
        self.samples: List[OpSample] = []
        self.errors = 0
        # kind -> sorted ok-latency list, invalidated on record(). Every
        # percentile/CDF/fraction query goes through latencies(); without
        # the cache each query re-filtered and re-sorted the full sample
        # list (reporting does dozens of queries per run).
        self._sorted_cache: Dict[Optional[str], List[float]] = {}
        # Sketch-mode state (exact counters + bounded reservoirs).
        self._counts: Dict[str, int] = {}
        self._sums: Dict[str, float] = {}
        self._seen: Dict[str, int] = {}
        self._reservoirs: Dict[str, List[float]] = {}
        self._kind_order: List[str] = []  # insertion-ordered kinds
        self._first_start: Optional[float] = None
        self._last_end: Optional[float] = None
        self._rng = _reservoir_rng(name) if mode == "sketch" else None

    def record(self, kind: str, start: float, latency: float, ok: bool = True) -> None:
        if self.mode == "exact":
            self.samples.append(OpSample(kind, start, latency, ok))
            if self._sorted_cache:
                self._sorted_cache.clear()
            if not ok:
                self.errors += 1
            return
        # Sketch path: exact span/count/mean accounting, reservoir tail.
        end = start + latency
        if self._first_start is None or start < self._first_start:
            self._first_start = start
        if self._last_end is None or end > self._last_end:
            self._last_end = end
        if not ok:
            self.errors += 1
            return
        if kind not in self._counts:
            self._counts[kind] = 0
            self._sums[kind] = 0.0
            self._seen[kind] = 0
            self._reservoirs[kind] = []
            self._kind_order.append(kind)
        self._counts[kind] += 1
        self._sums[kind] += latency
        seen = self._seen[kind] + 1
        self._seen[kind] = seen
        reservoir = self._reservoirs[kind]
        if len(reservoir) < self.reservoir_size:
            reservoir.append(latency)
        else:
            slot = self._rng.randrange(seen)
            if slot < self.reservoir_size:
                reservoir[slot] = latency
        if self._sorted_cache:
            self._sorted_cache.clear()

    # -- selection ----------------------------------------------------------

    def latencies(self, kind: Optional[str] = None) -> List[float]:
        """Sorted ok-latencies for ``kind`` (cached; treat as read-only).

        In sketch mode these are the reservoir contents — a uniform
        sample of the stream, suitable for percentile estimates.
        """
        cached = self._sorted_cache.get(kind)
        if cached is None:
            if self.mode == "exact":
                cached = sorted(
                    s.latency
                    for s in self.samples
                    if s.ok and (kind is None or s.kind == kind)
                )
            elif kind is not None:
                cached = sorted(self._reservoirs.get(kind, ()))
            else:
                merged: List[float] = []
                for name in self._kind_order:
                    merged.extend(self._reservoirs[name])
                cached = sorted(merged)
            self._sorted_cache[kind] = cached
        return cached

    def count(self, kind: Optional[str] = None) -> int:
        if self.mode == "sketch":
            if kind is None:
                return sum(self._counts[name] for name in self._kind_order)
            return self._counts.get(kind, 0)
        return sum(
            1 for s in self.samples if s.ok and (kind is None or s.kind == kind)
        )

    # -- aggregates -----------------------------------------------------------

    def mean_latency(self, kind: Optional[str] = None) -> float:
        if self.mode == "sketch":
            total = self.count(kind)
            if not total:
                raise ValueError(f"no samples for kind {kind!r}")
            if kind is None:
                return sum(self._sums[n] for n in self._kind_order) / total
            return self._sums[kind] / total
        values = self.latencies(kind)
        if not values:
            raise ValueError(f"no samples for kind {kind!r}")
        return sum(values) / len(values)

    def percentile_latency(self, p: float, kind: Optional[str] = None) -> float:
        return percentile(self.latencies(kind), p)

    def span_ms(self) -> float:
        """Wall-clock (simulated) span from first start to last completion."""
        if self.mode == "sketch":
            if self._first_start is None or self._last_end is None:
                return 0.0
            return self._last_end - self._first_start
        if not self.samples:
            return 0.0
        first = min(s.start for s in self.samples)
        last = max(s.start + s.latency for s in self.samples)
        return last - first

    def throughput_ops_per_sec(self, kind: Optional[str] = None) -> float:
        """Completed ops per simulated second over the run's span."""
        span = self.span_ms()
        if span <= 0:
            return 0.0
        return self.count(kind) / (span / 1000.0)

    def cdf(self, kind: Optional[str] = None) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) points for CDF plots (Fig. 5)."""
        values = self.latencies(kind)
        n = len(values)
        return [(value, (index + 1) / n) for index, value in enumerate(values)]

    def fraction_below(self, latency_ms: float, kind: Optional[str] = None) -> float:
        """Fraction of operations completing within ``latency_ms``."""
        values = self.latencies(kind)
        if not values:
            raise ValueError(f"no samples for kind {kind!r}")
        return bisect.bisect_right(values, latency_ms) / len(values)

    def timeseries(
        self, bucket_ms: float, kind: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """Per-bucket throughput (ops/sec), for Fig. 10c-style plots."""
        if self.mode == "sketch":
            raise RuntimeError(
                "timeseries() needs per-sample starts; use mode='exact'"
            )
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be positive")
        buckets: Dict[int, int] = {}
        for sample in self.samples:
            if not sample.ok or (kind is not None and sample.kind != kind):
                continue
            bucket = int((sample.start + sample.latency) // bucket_ms)
            buckets[bucket] = buckets.get(bucket, 0) + 1
        return [
            (bucket * bucket_ms, count / (bucket_ms / 1000.0))
            for bucket, count in sorted(buckets.items())
        ]

    def summary(
        self, kinds: Sequence[str] = ("read", "write")
    ) -> Dict[str, object]:
        """JSON-plain aggregate snapshot (for scenario cells / caching).

        Per kind: count, mean, p50/p90/p99 (None when the kind has no ok
        samples), plus overall count, throughput, span, and errors. Every
        value is a JSON scalar so the dict round-trips bit-exactly
        through the result cache.
        """
        def maybe(fn, *args):
            try:
                return fn(*args)
            except ValueError:
                return None

        out: Dict[str, object] = {
            "count": self.count(),
            "errors": self.errors,
            "span_ms": self.span_ms(),
            "throughput_ops_per_sec": self.throughput_ops_per_sec(),
        }
        for kind in kinds:
            out[f"{kind}_count"] = self.count(kind)
            out[f"{kind}_mean_ms"] = maybe(self.mean_latency, kind)
            for p in (50, 90, 99):
                out[f"{kind}_p{p}_ms"] = maybe(self.percentile_latency, p, kind)
        return out

    def merged(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """A new recorder with both sample sets (multi-client totals).

        Merging an exact recorder into a sketch one (or two sketches)
        yields a sketch: counts, means, errors, and span merge exactly;
        the combined reservoir is deterministically downsampled to
        ``reservoir_size`` when it overflows.
        """
        if self.mode == "exact" and other.mode == "exact":
            result = LatencyRecorder(name=f"{self.name}+{other.name}")
            result.samples = self.samples + other.samples
            result.errors = self.errors + other.errors
            return result
        result = LatencyRecorder(
            name=f"{self.name}+{other.name}",
            mode="sketch",
            reservoir_size=max(self.reservoir_size, other.reservoir_size),
        )
        for source in (self, other):
            result.errors += source.errors
            for bound in (source._span_bounds(),):
                first, last = bound
                if first is not None and (
                    result._first_start is None or first < result._first_start
                ):
                    result._first_start = first
                if last is not None and (
                    result._last_end is None or last > result._last_end
                ):
                    result._last_end = last
            for kind, count, total, values in source._kind_stats():
                if kind not in result._counts:
                    result._counts[kind] = 0
                    result._sums[kind] = 0.0
                    result._seen[kind] = 0
                    result._reservoirs[kind] = []
                    result._kind_order.append(kind)
                result._counts[kind] += count
                result._sums[kind] += total
                result._seen[kind] += count
                result._reservoirs[kind].extend(values)
        for kind in result._kind_order:
            reservoir = result._reservoirs[kind]
            if len(reservoir) > result.reservoir_size:
                result._reservoirs[kind] = result._rng.sample(
                    reservoir, result.reservoir_size
                )
        return result

    # -- merge helpers -------------------------------------------------------

    def _span_bounds(self) -> Tuple[Optional[float], Optional[float]]:
        if self.mode == "sketch":
            return self._first_start, self._last_end
        if not self.samples:
            return None, None
        return (
            min(s.start for s in self.samples),
            max(s.start + s.latency for s in self.samples),
        )

    def _kind_stats(self):
        """Yield (kind, ok-count, ok-latency-sum, representative values)
        in a deterministic order for merging."""
        if self.mode == "sketch":
            for kind in self._kind_order:
                yield (
                    kind,
                    self._counts[kind],
                    self._sums[kind],
                    list(self._reservoirs[kind]),
                )
            return
        kinds: List[str] = []
        for sample in self.samples:
            if sample.ok and sample.kind not in kinds:
                kinds.append(sample.kind)
        for kind in kinds:
            values = [s.latency for s in self.samples if s.ok and s.kind == kind]
            yield kind, len(values), sum(values), values
