"""Closed-loop YCSB client driver.

Mirrors the paper's setup: "the YCSB benchmark client with the synchronous
ZooKeeper client API" (§IV-A) — each client issues one operation at a time,
reads via ``get_data`` and updates via ``set_data``, against a preloaded
record table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.kernel import Environment
from repro.workloads.choosers import KeyChooser, UniformChooser, ZipfianChooser
from repro.workloads.stats import LatencyRecorder
from repro.zk.client import ZkClient
from repro.zk.errors import ConnectionLossError, ZkError

__all__ = ["YcsbSpec", "load_records", "run_ycsb", "ycsb_client"]


@dataclass
class YcsbSpec:
    """Parameters of one YCSB run (defaults follow §IV-A)."""

    record_count: int = 1000
    operation_count: int = 10000
    write_fraction: float = 0.5
    value_size: int = 100
    table: str = "/usertable"
    key_prefix: str = "user"
    zipf_theta: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.record_count < 1 or self.operation_count < 0:
            raise ValueError("counts must be positive")

    def key(self, index: int) -> str:
        return f"{self.table}/{self.key_prefix}{index:06d}"

    def default_chooser(self) -> KeyChooser:
        return ZipfianChooser(self.record_count, self.zipf_theta)

    def value(self, rng: random.Random) -> bytes:
        # Bit-compatible unrolling of ``bytes(rng.randrange(256) for ...)``:
        # randrange(256) draws getrandbits(9) and rejects values >= 256, so
        # replaying that exact sequence leaves every seeded stream unchanged
        # while skipping two wrapper frames per byte. The full value_size is
        # honored (the paper's records are 100 bytes); an earlier perf pass
        # silently capped payloads at 16 bytes, which under-charged every
        # write's RNG stream and record size.
        getrandbits = rng.getrandbits
        out = bytearray(self.value_size)
        for i in range(len(out)):
            r = getrandbits(9)
            while r >= 256:
                r = getrandbits(9)
            out[i] = r
        return bytes(out)


def load_records(client: ZkClient, spec: YcsbSpec, indices: Optional[Sequence[int]] = None):
    """Generator process: create the record table through ``client``."""
    from repro.zk.errors import NodeExistsError

    # Create the table path (and any intermediate ancestors).
    components = spec.table.strip("/").split("/")
    for depth in range(1, len(components) + 1):
        ancestor = "/" + "/".join(components[:depth])
        try:
            yield client.create(ancestor, b"")
        except NodeExistsError:
            pass  # another loader already created it
    for index in indices if indices is not None else range(spec.record_count):
        yield client.create(spec.key(index), b"\x00" * spec.value_size)


def ycsb_client(
    env: Environment,
    client: ZkClient,
    spec: YcsbSpec,
    rng: random.Random,
    recorder: LatencyRecorder,
    chooser: Optional[KeyChooser] = None,
    operation_count: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_retries: int = 3,
):
    """Generator process: run the closed-loop operation mix.

    Operations that hit a connection loss are retried up to ``max_retries``
    times (recorded as one sample with the total elapsed time, as YCSB's
    client does); other errors are recorded as failures. Retries go through
    the client's stable-cxid retry layer: every attempt of one logical
    operation reuses the same cxid, so a write whose first attempt timed
    out but committed is answered from the server's reply cache instead of
    being applied a second time.
    """
    chooser = chooser or spec.default_chooser()
    total = operation_count if operation_count is not None else spec.operation_count
    # Key strings are pure functions of the index; format each once instead
    # of per operation (choosers may exceed spec.record_count, hence the
    # bounds-checked fallback).
    keys = [spec.key(i) for i in range(spec.record_count)]
    for _ in range(total):
        if deadline_ms is not None and env.now >= deadline_ms:
            break
        index = chooser.choose(rng)
        path = keys[index] if index < len(keys) else spec.key(index)
        is_write = rng.random() < spec.write_fraction
        start = env.now
        ok = True
        try:
            if is_write:
                yield client.set_data_retrying(
                    path, spec.value(rng), max_retries=max_retries
                )
            else:
                yield client.get_data_retrying(path, max_retries=max_retries)
        except (ConnectionLossError, ZkError):
            ok = False
        recorder.record(
            "write" if is_write else "read", start, env.now - start, ok=ok
        )


@dataclass
class _ClientPlan:
    client: ZkClient
    rng: random.Random
    recorder: LatencyRecorder
    chooser: Optional[KeyChooser] = None
    operation_count: Optional[int] = None


def run_ycsb(
    env: Environment,
    plans: List[_ClientPlan],
    spec: YcsbSpec,
    load_client: Optional[ZkClient] = None,
    load_indices: Optional[Sequence[int]] = None,
    load_plan: Optional[List[tuple]] = None,
    settle_ms: float = 500.0,
    max_ms: float = 1e9,
) -> None:
    """Run load phase + all client plans to completion (blocking helper).

    ``load_plan`` — a list of ``(client, indices)`` pairs — loads each
    record range through a specific client (used by the WK-hot setups so
    creating a partition's records happens at the site that pre-holds
    their tokens). Otherwise ``load_client`` creates everything.
    """

    def orchestrate():
        if load_plan is not None:
            for loader, indices in load_plan:
                if not loader.connected:
                    yield loader.connect()
                yield env.process(load_records(loader, spec, indices))
        else:
            loader = load_client or plans[0].client
            if not loader.connected:
                yield loader.connect()
            yield env.process(load_records(loader, spec, load_indices))
        yield env.timeout(settle_ms)  # let replication quiesce
        procs = []
        for plan in plans:
            if not plan.client.connected:
                yield plan.client.connect()
        for plan in plans:
            procs.append(
                env.process(
                    ycsb_client(
                        env,
                        plan.client,
                        spec,
                        plan.rng,
                        plan.recorder,
                        chooser=plan.chooser,
                        operation_count=plan.operation_count,
                    )
                )
            )
        for proc in procs:
            yield proc

    process = env.process(orchestrate())
    deadline = env.now + max_ms
    while not process.triggered and env.now < deadline:
        env.run(until=min(deadline, env.now + 5000.0))
    if not process.triggered:
        raise RuntimeError("YCSB run did not finish within the time budget")
    if not process.ok:
        raise process.exception


ClientPlan = _ClientPlan
__all__.append("ClientPlan")
