"""Record-selection distributions.

The paper's YCSB runs choose records "randomly ... according to the Zipfian
distribution" (§IV-A, with the standard YCSB constant). The multi-site
experiments add disjoint partitions with a controlled overlap fraction
(Fig. 7, Fig. 10) and an 80/20 hotspot (Fig. 10b).
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = [
    "HotspotChooser",
    "KeyChooser",
    "OverlapChooser",
    "UniformChooser",
    "ZipfianChooser",
]


class KeyChooser:
    """Chooses a record index in ``[0, record_count)``."""

    def __init__(self, record_count: int):
        if record_count < 1:
            raise ValueError("record_count must be positive")
        self.record_count = record_count

    def choose(self, rng: random.Random) -> int:
        raise NotImplementedError


class UniformChooser(KeyChooser):
    """Uniform selection."""

    def choose(self, rng: random.Random) -> int:
        return rng.randrange(self.record_count)


class ZipfianChooser(KeyChooser):
    """YCSB's Zipfian generator: rank-frequency f(k) ~ 1 / k^theta.

    Uses the standard YCSB/Gray sampling formula with precomputed zeta
    constants. ``theta = 0.99`` matches YCSB's default ("Zipfian constant").
    """

    def __init__(self, record_count: int, theta: float = 0.99):
        super().__init__(record_count)
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.theta = theta
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, record_count + 1))
        self._zeta2 = 1.0 + 0.5 ** theta
        self._alpha = 1.0 / (1.0 - theta)
        if record_count > 2:
            self._eta = (1.0 - (2.0 / record_count) ** (1.0 - theta)) / (
                1.0 - self._zeta2 / self._zetan
            )
        else:
            # The YCSB approximation degenerates for tiny universes
            # (its denominator is zero at n = 2); exact sampling instead.
            self._eta = 0.0

    def choose(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._zeta2 or self.record_count <= 2:
            return min(1, self.record_count - 1)
        rank = int(
            self.record_count * (self._eta * u - self._eta + 1.0) ** self._alpha
        )
        return min(rank, self.record_count - 1)


class HotspotChooser(KeyChooser):
    """``hot_op_fraction`` of accesses hit the first ``hot_data_fraction``
    of records (the paper's "80% of operations updating 20% of data")."""

    def __init__(
        self,
        record_count: int,
        hot_data_fraction: float = 0.2,
        hot_op_fraction: float = 0.8,
        rotation: int = 0,
    ):
        super().__init__(record_count)
        if not 0.0 < hot_data_fraction <= 1.0:
            raise ValueError("hot_data_fraction must be in (0, 1]")
        if not 0.0 <= hot_op_fraction <= 1.0:
            raise ValueError("hot_op_fraction must be in [0, 1]")
        self.hot_count = max(1, int(record_count * hot_data_fraction))
        self.hot_op_fraction = hot_op_fraction
        # Rotating the hot region lets two clients sharing a keyspace have
        # *different* hotspots ("a 20% hotspot at both sites", Fig. 10b).
        self.rotation = rotation % record_count

    def choose(self, rng: random.Random) -> int:
        if rng.random() < self.hot_op_fraction:
            base = rng.randrange(self.hot_count)
        elif self.hot_count == self.record_count:
            base = rng.randrange(self.record_count)
        else:
            base = self.hot_count + rng.randrange(
                self.record_count - self.hot_count
            )
        return (base + self.rotation) % self.record_count


class OverlapChooser(KeyChooser):
    """Two-client overlap pattern (Fig. 7 / Fig. 10).

    The keyspace is split into a *shared* region of ``overlap`` fraction and
    per-client private regions. With probability ``overlap``, a client picks
    from the shared region; otherwise from its own private region — so an
    overlap of 0 gives fully disjoint access and 1.0 full contention.
    ``inner`` selects *within* the chosen region (uniform, hotspot, ...).
    """

    def __init__(
        self,
        record_count: int,
        overlap: float,
        client_index: int,
        client_total: int = 2,
        inner_factory=UniformChooser,
    ):
        super().__init__(record_count)
        if not 0.0 <= overlap <= 1.0:
            raise ValueError("overlap must be in [0, 1]")
        if not 0 <= client_index < client_total:
            raise ValueError("bad client index")
        self.overlap = overlap
        shared_count = int(record_count * overlap)
        private_total = record_count - shared_count
        per_client = private_total // client_total if client_total else 0
        self._shared: Sequence[int] = range(0, shared_count)
        start = shared_count + client_index * per_client
        self._private: Sequence[int] = range(start, start + per_client)
        self._shared_inner = (
            inner_factory(len(self._shared)) if len(self._shared) else None
        )
        self._private_inner = (
            inner_factory(len(self._private)) if len(self._private) else None
        )

    def choose(self, rng: random.Random) -> int:
        use_shared = self._shared_inner is not None and (
            self._private_inner is None or rng.random() < self.overlap
        )
        if use_shared:
            return self._shared[self._shared_inner.choose(rng)]
        return self._private[self._private_inner.choose(rng)]

    @property
    def shared_indices(self) -> Sequence[int]:
        """Record indices in the shared (contended) region."""
        return self._shared

    @property
    def private_indices(self) -> Sequence[int]:
        """Record indices private to this client."""
        return self._private
