"""Full-stack fleet cells: driver-mode equivalence, message recycling,
flyweight sessions, and the kernel/session primitives they lean on."""

import hashlib
import json

import pytest

from repro.fleet import FleetFullSpec, run_fleet_full
from repro.sim.kernel import Environment, SimulationError
from repro.zk.sessions import SessionTracker

# Small cell used by most tests: three sites, real WanKeeper stack,
# diurnal modulation ON so the generic (non-flat) draw path runs.
_SMALL = dict(
    n_sites=3,
    sessions_per_site=16,
    duration_ms=2000.0,
    site_ops_per_sec=30.0,
    keys_per_site=4,
    seed=7,
)

# Sparse flat-modulation cell: exercises the hoisted-threshold Poisson
# fast path and the idle-gap fast-forward scan across empty ticks.
_SPARSE = dict(
    n_sites=3,
    sessions_per_site=16,
    duration_ms=4000.0,
    tick_ms=1.0,
    site_ops_per_sec=4.0,
    diurnal_amplitude=0.0,
    keys_per_site=4,
    seed=7,
)


def _canon(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _run(base, **overrides):
    return run_fleet_full(FleetFullSpec(**{**base, **overrides}))


# -- determinism and driver-mode equivalence ----------------------------------


def test_repeat_runs_bit_identical():
    assert _canon(_run(_SMALL)) == _canon(_run(_SMALL))


def test_fast_forward_matches_naive_driver():
    # Diurnal cell: generic draw path under both drivers.
    assert _canon(_run(_SMALL, fast_forward=True)) == _canon(
        _run(_SMALL, fast_forward=False)
    )


def test_fast_forward_matches_naive_on_sparse_flat_cell():
    # Flat cell: inline-threshold fast path under both drivers.
    assert _canon(_run(_SPARSE, fast_forward=True)) == _canon(
        _run(_SPARSE, fast_forward=False)
    )


def test_recycled_messages_match_fresh_allocations():
    assert _canon(_run(_SMALL, recycle_messages=True)) == _canon(
        _run(_SMALL, recycle_messages=False)
    )


def test_seed_changes_payload():
    assert _canon(_run(_SMALL)) != _canon(_run(_SMALL, seed=8))


def test_golden_digest_pinned():
    """The small cell's payload is a pure function of the spec: any
    change to arrival draws, scheduling order, message routing, or the
    protocol stack shows up here. Update deliberately, never to make
    CI pass."""
    digest = hashlib.sha256(_canon(_run(_SMALL)).encode()).hexdigest()
    assert digest == (
        "13fda66f7b9b097aba7dcbbef1a4129a3fc80511520c0cdaba1c05cec30b7d20"
    )


# -- cells across systems and substrates --------------------------------------


def test_zk_zab_cell_completes_ops():
    payload = _run(_SMALL, system="zk", substrate="zab")
    assert payload["system"] == "zk"
    assert payload["completed_ops"] > 0
    assert payload["failed_ops"] == 0


def test_zk_wpaxos_cell_completes_ops():
    payload = _run(_SMALL, system="zk", substrate="wpaxos")
    assert payload["substrate"] == "wpaxos"
    assert payload["completed_ops"] > 0


def test_wankeeper_requires_zab():
    with pytest.raises(ValueError):
        FleetFullSpec(**{**_SMALL, "system": "wankeeper", "substrate": "wpaxos"})


def test_all_sessions_connect_and_ops_flow():
    payload = _run(_SMALL)
    spec = FleetFullSpec(**_SMALL)
    assert payload["sessions"] == spec.total_sessions
    assert payload["not_connected_drops"] == 0
    assert payload["unexpected_messages"] == 0
    assert payload["completed_ops"] > 0
    assert (
        payload["completed_ops"] + payload["failed_ops"]
        + payload["in_flight_at_horizon"] == payload["issued_ops"]
    )
    # WanKeeper migrates key tokens toward the rotating hotspot.
    assert payload["token_migrations"] > 0


def test_payload_is_json_plain_and_excludes_perf_toggles():
    payload = _run(_SMALL)
    assert json.loads(_canon(payload)) == json.loads(_canon(payload))
    assert "fast_forward" not in payload
    assert "recycle_messages" not in payload


# -- kernel: call_at ----------------------------------------------------------


def test_call_at_orders_by_time_then_fifo():
    env = Environment()
    log = []
    env.call_at(5.0, log.append, "b")
    env.call_at(2.0, log.append, "a")
    env.call_at(5.0, log.append, "c")
    env.run()
    assert log == ["a", "b", "c"]
    assert env.now == 5.0


def test_call_at_current_instant_runs_before_later_events():
    env = Environment()
    log = []

    def now_cb(_):
        env.call_at(env.now, log.append, "same-instant")

    env.call_at(1.0, now_cb, None)
    env.call_at(1.0, log.append, "later-seq")
    env.run()
    # The same-instant call_at lands in the current batch, after the
    # already-queued same-time event — identical to call_soon ordering.
    assert log == ["later-seq", "same-instant"]


def test_call_at_rejects_past_times():
    env = Environment()
    env.call_at(3.0, lambda _arg: None)
    env.run()
    with pytest.raises(SimulationError):
        env.call_at(1.0, lambda _arg: None)


# -- session tracker: watermark, client index, live snapshot ------------------


def test_expiry_watermark_skips_scan_until_first_deadline():
    tracker = SessionTracker("s")
    tracker.create("c1", timeout_ms=100.0, now=0.0)
    tracker.create("c2", timeout_ms=500.0, now=0.0)
    assert tracker.expired_sessions(50.0) == []
    assert tracker.expired_sessions(100.0) == []  # inclusive bound holds
    due = tracker.expired_sessions(150.0)
    assert [s.client for s in due] == ["c1"]
    # Unmarked overdue sessions are re-reported on every later call.
    assert [s.client for s in tracker.expired_sessions(160.0)] == ["c1"]
    tracker.mark_expired(due[0].session_id)
    assert tracker.expired_sessions(400.0) == []
    assert [s.client for s in tracker.expired_sessions(501.0)] == ["c2"]


def test_watermark_tracks_touch_and_new_sessions():
    tracker = SessionTracker("s")
    first = tracker.create("c1", timeout_ms=100.0, now=0.0)
    # A scan re-tightens the bound; touching afterwards moves the real
    # deadline later and the next scans must still respect it.
    assert tracker.expired_sessions(90.0) == []
    tracker.touch(first.session_id, 90.0)
    assert tracker.expired_sessions(150.0) == []
    assert [s.session_id for s in tracker.expired_sessions(191.0)] == [
        first.session_id
    ]


def test_find_by_client_uses_index_and_falls_back():
    tracker = SessionTracker("s")
    assert tracker.find_by_client("nobody") is None
    first = tracker.create("c1", timeout_ms=100.0, now=0.0)
    second = tracker.create("c1", timeout_ms=100.0, now=1.0)
    assert tracker.find_by_client("c1") is second
    # Indexed (newest) session dies: the creation-order fallback must
    # still surface the older live session.
    tracker.mark_expired(second.session_id)
    assert tracker.find_by_client("c1") is first
    tracker.mark_expired(first.session_id)
    assert tracker.find_by_client("c1") is None


def test_live_ids_snapshot_tracks_membership():
    tracker = SessionTracker("s")
    a = tracker.create("c1", timeout_ms=100.0, now=0.0)
    b = tracker.create("c2", timeout_ms=100.0, now=0.0)
    snap = tracker.live_ids_snapshot()
    assert snap == tuple(tracker.live_session_ids())
    assert tracker.live_ids_snapshot() is snap  # cached between changes
    tracker.mark_expired(a.session_id)
    assert tracker.live_ids_snapshot() == (b.session_id,)
    tracker.remove(b.session_id)
    assert tracker.live_ids_snapshot() == ()
    c = tracker.create("c3", timeout_ms=100.0, now=0.0)
    assert tracker.live_ids_snapshot() == (c.session_id,)
