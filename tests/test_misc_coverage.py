"""Error paths and miscellaneous behaviors across modules."""

import pytest

from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA, wan_topology
from repro.sim import Environment, SimulationError
from repro.zk import build_zk_deployment

from tests.support import fresh_world, plain_zk, run_app


def test_topology_wan_pairs_reporting():
    topo = wan_topology()
    pairs = topo.wan_pairs()
    assert len(pairs) == 3
    assert all(delay > 0 for _a, _b, delay in pairs)
    names = {(a, b) for a, b, _d in pairs}
    assert ("california", "virginia") in names


def test_topology_set_one_way_validation():
    topo = wan_topology()
    with pytest.raises(ValueError):
        topo.set_one_way(VIRGINIA, VIRGINIA, 10.0)
    with pytest.raises(ValueError):
        topo.set_one_way(VIRGINIA, CALIFORNIA, -1.0)


def test_deployment_server_at_requires_live_server():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    for server in deployment.servers_at(FRANKFURT):
        server.crash()
    with pytest.raises(ValueError):
        deployment.server_at(FRANKFURT)


def test_stabilize_times_out_without_quorum():
    env, topo, net = fresh_world()
    deployment = build_zk_deployment(
        env, net, topo, voting_sites=(VIRGINIA, CALIFORNIA, FRANKFURT)
    )
    deployment.start()
    # Partition everything: no quorum can form.
    net.partition(VIRGINIA, CALIFORNIA)
    net.partition(VIRGINIA, FRANKFURT)
    net.partition(CALIFORNIA, FRANKFURT)
    with pytest.raises(SimulationError):
        deployment.stabilize(max_ms=3000.0)


def test_tree_fingerprints_accessor():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    fingerprints = deployment.tree_fingerprints()
    assert len(fingerprints) == 3
    assert len(set(fingerprints.values())) == 1  # all empty trees agree


def test_ycsb_client_respects_deadline():
    from repro.workloads import LatencyRecorder, YcsbSpec
    from repro.workloads.driver import load_records, ycsb_client

    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA)
    spec = YcsbSpec(record_count=20, operation_count=100000, write_fraction=0.0)
    recorder = LatencyRecorder()

    def app():
        yield client.connect()
        yield env.process(load_records(client, spec))
        import random

        yield env.process(
            ycsb_client(
                env, client, spec, random.Random(1), recorder,
                deadline_ms=env.now + 200.0,
            )
        )
        return True

    run_app(env, app())
    # Stopped at the deadline, far short of 100k ops.
    assert 0 < recorder.count() < 5000


def test_ycsb_client_records_failures_on_api_error():
    """Operations against deleted records record as reads of missing keys
    fail with NoNode and are excluded from latency stats."""
    from repro.workloads import LatencyRecorder, YcsbSpec
    from repro.workloads.driver import ycsb_client

    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA)
    spec = YcsbSpec(record_count=5, operation_count=20, write_fraction=0.0)
    recorder = LatencyRecorder()

    def app():
        yield client.connect()
        # Deliberately skip the load phase: every read hits NoNode.
        import random

        yield env.process(
            ycsb_client(env, client, spec, random.Random(2), recorder)
        )
        return True

    run_app(env, app())
    assert recorder.errors == 20
    assert recorder.count() == 0


def test_bookkeeper_open_unknown_ledger_fails():
    from repro.bookkeeper import Bookie, BookKeeperClient
    from repro.zk import NoNodeError

    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    zk = deployment.client(VIRGINIA)
    bookie = Bookie(env, net, topo.site(VIRGINIA).address("bk-only"))
    bookie.start()
    bk = BookKeeperClient(
        env, net, topo.site(VIRGINIA).address("bk-cli"), zk, [bookie.addr],
        ensemble_size=1, write_quorum=1,
    )

    def app():
        yield zk.connect()
        with pytest.raises(NoNodeError):
            yield env.process(bk.open_ledger(424242))
        return True

    assert run_app(env, app())


def test_store_reopen_then_get():
    from repro.sim import Store

    env = Environment()
    store = Store(env, name="cycle")
    store.close()
    assert store.closed
    store.reopen()
    assert not store.closed


def test_run_until_event_with_failed_process():
    env = Environment()

    def boom(env):
        yield env.timeout(1.0)
        raise RuntimeError("bang")

    with pytest.raises(RuntimeError, match="bang"):
        env.run(until=env.process(boom(env)))


def test_peek_on_empty_queue_and_step_error():
    env = Environment()
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()
