"""Unit coverage for smaller behaviors across modules."""

import pytest

from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA
from repro.sim import AllOf, AnyOf, Environment, Interrupt, Store
from repro.sim.kernel import SimulationError


# -- kernel conditions ---------------------------------------------------------


def test_all_of_fails_if_child_fails():
    env = Environment()
    caught = []

    def failer(env):
        yield env.timeout(1.0)
        raise ValueError("child died")

    def waiter(env):
        try:
            yield AllOf(env, [env.timeout(5.0), env.process(failer(env))])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    env.run()
    assert caught == ["child died"]


def test_any_of_value_contains_only_fired_children():
    env = Environment()
    got = []

    def proc(env):
        result = yield AnyOf(
            env, [env.timeout(1.0, "fast"), env.timeout(50.0, "slow")]
        )
        got.append(result)

    env.process(proc(env))
    env.run()
    assert got == [{0: "fast"}]


def test_empty_all_of_fires_immediately():
    env = Environment()
    got = []

    def proc(env):
        result = yield AllOf(env, [])
        got.append((env.now, result))

    env.process(proc(env))
    env.run()
    assert got == [(0.0, {})]


def test_interrupt_carries_cause():
    env = Environment()
    causes = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            causes.append(interrupt.cause)

    proc = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(1.0)
        proc.interrupt(cause={"reason": "test"})

    env.process(interrupter(env))
    env.run()
    assert causes == [{"reason": "test"}]


def test_store_put_on_closed_raises():
    env = Environment()
    store = Store(env)
    store.close()
    with pytest.raises(SimulationError):
        store.put("x")


def test_event_fail_requires_exception():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")


def test_process_cannot_interrupt_itself():
    env = Environment()
    errors = []

    def selfish(env):
        yield env.timeout(1.0)
        try:
            env.active_process.interrupt()
        except SimulationError as exc:
            errors.append(str(exc))

    env.process(selfish(env))
    env.run()
    assert len(errors) == 1


# -- zab config -----------------------------------------------------------------


def test_ensemble_members_and_peers():
    from repro.net import wan_topology
    from repro.zab import EnsembleConfig

    topo = wan_topology()
    a = topo.site(VIRGINIA).address("a")
    b = topo.site(VIRGINIA).address("b")
    o = topo.site(CALIFORNIA).address("o")
    config = EnsembleConfig(voters=[a, b], observers=[o])
    assert config.members == [a, b, o]
    assert config.peers_of(a) == [b, o]
    assert config.is_voter(a) and not config.is_voter(o)
    assert config.is_observer(o)
    assert config.is_quorum(2) and not config.is_quorum(1)


# -- zk records / errors -----------------------------------------------------


def test_error_from_code_fallback():
    from repro.zk.errors import ApiError, NoNodeError, error_from_code

    assert isinstance(error_from_code("no_node", "/x"), NoNodeError)
    unknown = error_from_code("martian_error", "/y")
    assert isinstance(unknown, ApiError)
    assert unknown.path == "/y"


def test_stat_is_ephemeral_flag():
    from repro.zab import Zxid
    from repro.zk import CreateOp, DataTree

    tree = DataTree()
    tree.apply(CreateOp("/e", ephemeral=True), Zxid(1, 1), "sess")
    tree.apply(CreateOp("/p"), Zxid(1, 2), "sess")
    assert tree.exists("/e").is_ephemeral
    assert not tree.exists("/p").is_ephemeral


def test_session_tracker_lifecycle():
    from repro.zk.sessions import SessionTracker

    tracker = SessionTracker("srv")
    session = tracker.create("client-addr", timeout_ms=100.0, now=0.0)
    assert tracker.touch(session.session_id, now=50.0)
    assert tracker.expired_sessions(now=100.0) == []
    expired = tracker.expired_sessions(now=200.0)
    assert [s.session_id for s in expired] == [session.session_id]
    tracker.mark_expired(session.session_id)
    assert not tracker.touch(session.session_id, now=210.0)
    assert tracker.live_session_ids() == []
    tracker.remove(session.session_id)
    assert len(tracker) == 0


def test_txn_log_tail_and_len():
    from repro.zab import TxnLog, Zxid

    log = TxnLog()
    for i in range(1, 6):
        log.append(Zxid(1, i), f"t{i}")
    assert len(log) == 5
    assert [e.txn for e in log.tail(2)] == ["t4", "t5"]
    assert log.tail(0) == []
    assert log.entries_range(Zxid(1, 1), Zxid(1, 3)) == log.entries_range(
        Zxid(1, 1), Zxid(1, 3)
    )
    assert [e.txn for e in log.entries_range(Zxid(1, 1), Zxid(1, 3))] == [
        "t2", "t3"
    ]


# -- workloads ------------------------------------------------------------------


def test_ycsb_value_size_honored():
    import random

    from repro.workloads import YcsbSpec

    # The full configured size is generated (the paper's records are 100
    # bytes); an earlier perf pass silently capped payloads at 16 bytes.
    spec = YcsbSpec(value_size=1000)
    assert len(spec.value(random.Random(1))) == 1000
    assert len(YcsbSpec().value(random.Random(1))) == 100


def test_overlap_chooser_exposes_regions():
    from repro.workloads import OverlapChooser

    chooser = OverlapChooser(100, overlap=0.2, client_index=1)
    assert len(chooser.shared_indices) == 20
    assert len(chooser.private_indices) == 40
    assert set(chooser.shared_indices).isdisjoint(chooser.private_indices)


def test_hotspot_rotation_moves_hot_region():
    import random

    from repro.workloads import HotspotChooser

    rng = random.Random(0)
    plain = HotspotChooser(100, rotation=0)
    rotated = HotspotChooser(100, rotation=50)
    plain_hot = sum(1 for _ in range(2000) if plain.choose(rng) < 20)
    rng = random.Random(0)
    rotated_hot = sum(
        1 for _ in range(2000) if 50 <= rotated.choose(rng) < 70
    )
    assert plain_hot > 1400 and rotated_hot > 1400


# -- zk client conveniences ----------------------------------------------------


def test_check_version_builder():
    from tests.support import fresh_world, plain_zk

    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA)
    op = client.check_version("/x", 3)
    assert op.path == "/x" and op.version == 3


def test_deployment_client_custom_name():
    from tests.support import fresh_world, plain_zk

    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA, name="my-app")
    assert client.name == "my-app"


# -- observability edge --------------------------------------------------------


def test_message_stats_empty():
    from repro.observability import MessageStats

    stats = MessageStats()
    assert stats.total == 0
    assert stats.wan_fraction() == 0.0
    assert "messages: 0" in stats.report()


# -- wankeeper token edge cases --------------------------------------------------


def test_wan_config_validation():
    import pytest as _pytest

    from repro.wankeeper.server import WanConfig

    with _pytest.raises(ValueError):
        WanConfig(sites=("a", "b"), l2_site="zz", hub_server_addrs=())
    with _pytest.raises(ValueError):
        WanConfig(
            sites=("a", "b"),
            l2_site="a",
            hub_server_addrs=(),
            initial_tokens={"/k": "mars"},
        )


def test_queued_txn_admin_fields_default_none():
    from repro.wankeeper.server import _QueuedTxn
    from repro.zk.ops import SyncOp, Txn

    entry = _QueuedTxn(Txn("s", 1, None, SyncOp()), "a")
    assert entry.admin_keys is None and entry.admin_grant is None
