"""Edge cases in the client: timeouts, racing replies, watch waiters."""

import pytest

from repro.net import CALIFORNIA, VIRGINIA
from repro.sim import AnyOf
from repro.zk import ConnectionLossError

from tests.support import fresh_world, plain_zk, run_app


def test_connect_timeout_when_server_down():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    server = deployment.server_at(CALIFORNIA)
    client = deployment.client(CALIFORNIA, request_timeout_ms=2000.0)
    server.crash()

    def app():
        with pytest.raises(ConnectionLossError):
            yield client.connect()
        return True

    assert run_app(env, app())


def test_double_connect_rejected_while_in_flight():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA)

    def app():
        yield env.timeout(1.0)
        client.connect()  # fire and don't wait
        with pytest.raises(RuntimeError):
            client.connect()
        return True

    assert run_app(env, app())


def test_op_without_connect_rejected():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA)
    with pytest.raises(RuntimeError):
        client.create("/nope")


def test_late_reply_after_timeout_is_dropped():
    """A reply arriving after the client's timeout must not crash or
    corrupt later request correlation."""
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    # Timeout shorter than the WAN write latency: the reply always loses.
    client = deployment.client(CALIFORNIA, request_timeout_ms=50.0)

    def app():
        yield client.connect()
        with pytest.raises(ConnectionLossError):
            yield client.create("/slow", b"x")
        # The late reply lands meanwhile; subsequent ops still work.
        yield env.timeout(1000.0)
        client.request_timeout_ms = 10000.0
        stat = yield client.exists("/slow")
        return stat is not None

    # The write actually committed server-side even though the client
    # timed out (outcome-unknown semantics, as with real ZooKeeper).
    assert run_app(env, app())


def test_wait_watch_with_filter():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    watcher = deployment.client(VIRGINIA)
    writer = deployment.client(VIRGINIA)

    def app():
        yield watcher.connect()
        yield writer.connect()
        yield writer.create("/a", b"")
        yield writer.create("/b", b"")
        yield watcher.get_data("/a", watch=True)
        yield watcher.get_data("/b", watch=True)
        waiter = watcher.wait_watch("/b")  # only /b
        yield writer.set_data("/a", b"x")  # fires /a watch -> not ours
        yield writer.set_data("/b", b"y")
        event = yield waiter
        return event.path

    assert run_app(env, app()) == "/b"


def test_wait_watch_any_path():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    watcher = deployment.client(VIRGINIA)
    writer = deployment.client(VIRGINIA)

    def app():
        yield watcher.connect()
        yield writer.connect()
        yield writer.create("/any", b"")
        yield watcher.get_data("/any", watch=True)
        waiter = watcher.wait_watch()
        yield writer.set_data("/any", b"x")
        event = yield waiter
        return event.path

    assert run_app(env, app()) == "/any"


def test_wait_watch_with_timeout_race():
    """AnyOf(wait_watch, timeout) is the recommended robust-wait pattern."""
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA)

    def app():
        yield client.connect()
        result = yield AnyOf(
            env, [client.wait_watch("/never"), env.timeout(500.0, "timed-out")]
        )
        return list(result.values())

    assert run_app(env, app()) == ["timed-out"]


def test_client_metrics_count_ops():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA)

    def app():
        yield client.connect()
        yield client.create("/m", b"")
        yield client.get_data("/m")
        try:
            yield client.get_data("/missing")
        except Exception:
            pass
        return client.ops_completed, client.ops_failed

    completed, failed = run_app(env, app())
    assert completed == 2
    assert failed == 1


def test_stop_kills_heartbeats_and_pump():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA)

    def app():
        yield client.connect()
        client.stop()
        yield env.timeout(100.0)
        return all(not proc.is_alive for proc in client._procs) or not client._procs

    assert run_app(env, app())
