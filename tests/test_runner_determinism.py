"""Determinism guard for the parallel scenario runner.

The runner's whole value proposition rests on one contract: a cell's
payload is a pure function of its scenario spec, so running it in-process
(``--jobs 1``), in a spawned worker, or reading it back from the result
cache must all yield the *same bytes*. These tests pin that contract,
including a golden digest for a small YCSB cell so silent behavioural
drift in the simulator shows up as a test failure rather than as a
corrupt cache.
"""

import hashlib
import json

import pytest

from repro.runner import ResultCache, Scenario, execute

# Small enough to run in seconds, big enough to exercise the whole
# client/server/token path.
_YCSB_PARAMS = {
    "system": "wk",
    "write_fraction": 0.5,
    "seed": 1234,
    "record_count": 50,
    "operation_count": 300,
}

# sha256 of the canonical JSON payload for the cell above. If this
# changes, simulator behaviour changed: update it deliberately alongside
# the golden digests in tests/test_perf_golden.py, never casually.
# Re-pinned alongside the YcsbSpec.value fix (payloads honor the full
# value_size instead of capping at 16 bytes).
GOLDEN_YCSB_DIGEST = (
    "cc95478ae91b7adc9fa6d628374fbb5142de3c7b6380c8fb7b0c77d45f6af6b1"
)


def _digest(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _scenario() -> Scenario:
    return Scenario.make("ycsb_write_ratio", _YCSB_PARAMS)


def test_scenario_digest_is_order_and_process_independent():
    a = Scenario.make("debug_echo", {"value": 3, "sleep_s": 0.0})
    b = Scenario.make("debug_echo", {"sleep_s": 0.0, "value": 3})
    assert a.digest() == b.digest()
    assert a == b
    # suite/label are presentation-only: they must not change the digest.
    c = Scenario.make(
        "debug_echo", {"value": 3, "sleep_s": 0.0}, suite="x", label="y"
    )
    assert c.digest() == a.digest()


def test_scenario_rejects_non_json_params():
    with pytest.raises(TypeError):
        Scenario.make("debug_echo", {"value": object()})


def test_in_process_and_worker_payloads_identical():
    scenario = _scenario()
    serial = execute([scenario], jobs=1)
    serial.raise_on_failure()
    parallel = execute([scenario], jobs=2, timeout_s=600)
    parallel.raise_on_failure()
    assert serial.payload(scenario) == parallel.payload(scenario)
    assert _digest(serial.payload(scenario)) == _digest(
        parallel.payload(scenario)
    )


def test_ycsb_cell_matches_golden_digest():
    scenario = _scenario()
    report = execute([scenario], jobs=1)
    report.raise_on_failure()
    payload = report.payload(scenario)
    assert _digest(payload) == GOLDEN_YCSB_DIGEST, (
        "seeded YCSB cell payload changed; if intentional, update "
        "GOLDEN_YCSB_DIGEST with the new value: " + _digest(payload)
    )


def test_cached_payload_identical_to_fresh(tmp_path):
    scenario = _scenario()
    cache = ResultCache(str(tmp_path / "cache"))
    fresh = execute([scenario], jobs=1, cache=cache)
    fresh.raise_on_failure()
    cached = execute([scenario], jobs=1, cache=ResultCache(str(tmp_path / "cache")))
    cached.raise_on_failure()
    assert cached.cache_hits == 1 and cached.executed == 0
    assert fresh.payload(scenario) == cached.payload(scenario)
