"""Tests for barriers, queues, membership, and service discovery."""

from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA
from repro.wankeeper import build_wankeeper_deployment
from repro.zk.recipes import (
    Barrier,
    DistributedQueue,
    DoubleBarrier,
    GroupMembership,
    ServiceDiscovery,
)

from tests.support import fresh_world, plain_zk, run_app


def wankeeper(env, net, topo, **kwargs):
    deployment = build_wankeeper_deployment(env, net, topo, **kwargs)
    deployment.start()
    deployment.stabilize()
    return deployment


def test_barrier_blocks_until_lifted():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    controller = deployment.client(VIRGINIA)
    released_at = []

    def waiter(name):
        client = deployment.client(VIRGINIA)
        barrier = Barrier(env, client, "/gate")
        yield client.connect()
        yield env.process(barrier.wait())
        released_at.append((name, env.now))

    def app():
        yield controller.connect()
        barrier = Barrier(env, controller, "/gate")
        yield env.process(barrier.set())
        procs = [env.process(waiter(f"w{i}")) for i in range(3)]
        yield env.timeout(500.0)
        assert released_at == []  # everyone still blocked
        lift_time = env.now
        yield env.process(barrier.lift())
        for proc in procs:
            yield proc
        return lift_time

    lift_time = run_app(env, app())
    assert len(released_at) == 3
    assert all(t >= lift_time for _n, t in released_at)


def test_double_barrier_synchronizes_start_and_end():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    events = []

    def worker(name, work_ms):
        client = deployment.client(VIRGINIA)
        barrier = DoubleBarrier(env, client, "/compute", name, count=3)
        yield client.connect()
        yield env.process(barrier.enter())
        events.append(("start", name, env.now))
        yield env.timeout(work_ms)
        yield env.process(barrier.leave())
        events.append(("end", name, env.now))

    def app():
        procs = [
            env.process(worker(f"n{i}", work_ms=50.0 * (i + 1)))
            for i in range(3)
        ]
        for proc in procs:
            yield proc
        return True

    run_app(env, app())
    starts = [t for kind, _n, t in events if kind == "start"]
    ends = [t for kind, _n, t in events if kind == "end"]
    # All start together (within a small window) and end together.
    assert max(starts) - min(starts) < 50.0
    assert max(ends) - min(ends) < 50.0
    assert min(ends) >= max(starts)


def test_queue_fifo_single_consumer():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    producer_client = deployment.client(VIRGINIA)
    consumer_client = deployment.client(VIRGINIA)

    def app():
        yield producer_client.connect()
        yield consumer_client.connect()
        queue_p = DistributedQueue(env, producer_client, "/tasks")
        queue_c = DistributedQueue(env, consumer_client, "/tasks")
        for i in range(4):
            yield env.process(queue_p.put(f"job-{i}".encode()))
        size = yield env.process(queue_c.size())
        assert size == 4
        taken = []
        for _ in range(4):
            item = yield env.process(queue_c.take())
            taken.append(item)
        return taken

    taken = run_app(env, app())
    assert taken == [b"job-0", b"job-1", b"job-2", b"job-3"]


def test_queue_consumer_blocks_until_item_arrives():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    producer_client = deployment.client(VIRGINIA)
    consumer_client = deployment.client(VIRGINIA)
    got = []

    def consumer():
        yield consumer_client.connect()
        queue = DistributedQueue(env, consumer_client, "/jobs")
        item = yield env.process(queue.take())
        got.append((item, env.now))

    def app():
        yield producer_client.connect()
        queue = DistributedQueue(env, producer_client, "/jobs")
        # Root must exist for the consumer's get_children.
        yield env.process(queue.put(b"sentinel"))
        item = yield env.process(queue.take())
        assert item == b"sentinel"
        proc = env.process(consumer())
        yield env.timeout(500.0)
        yield env.process(queue.put(b"late-item"))
        yield proc
        return got

    got = run_app(env, app())
    assert got[0][0] == b"late-item"
    assert got[0][1] >= 500.0


def test_queue_across_wan_sites_with_wankeeper():
    """The queue's sequential items share one bulk token (§III-B)."""
    env, topo, net = fresh_world()
    deployment = wankeeper(env, net, topo)
    ca_client = deployment.client(CALIFORNIA)
    fr_client = deployment.client(FRANKFURT)

    def app():
        yield ca_client.connect()
        yield fr_client.connect()
        queue_ca = DistributedQueue(env, ca_client, "/geo-q")
        queue_fr = DistributedQueue(env, fr_client, "/geo-q")
        for i in range(3):
            yield env.process(queue_ca.put(f"ca-{i}".encode()))
        yield env.timeout(2000.0)  # replicate to Frankfurt
        taken = []
        for _ in range(3):
            item = yield env.process(queue_fr.take())
            taken.append(item)
        return taken

    assert run_app(env, app()) == [b"ca-0", b"ca-1", b"ca-2"]


def test_group_membership_reflects_sessions():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    a = deployment.client(VIRGINIA)
    b = deployment.client(VIRGINIA)
    observer = deployment.client(VIRGINIA)

    def app():
        yield a.connect()
        yield b.connect()
        yield observer.connect()
        group_a = GroupMembership(env, a, "/workers", "alpha")
        group_b = GroupMembership(env, b, "/workers", "beta")
        group_o = GroupMembership(env, observer, "/workers", "obs")
        yield env.process(group_a.join(b"meta-a"))
        yield env.process(group_b.join())
        members = yield env.process(group_o.members())
        assert members == ["alpha", "beta"]
        # A member's session dies -> it leaves the group automatically.
        yield a.close()
        yield env.timeout(500.0)
        members = yield env.process(group_o.members())
        return members

    assert run_app(env, app()) == ["beta"]


def test_service_discovery_register_and_lookup():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    provider = deployment.client(VIRGINIA)
    consumer = deployment.client(VIRGINIA)

    def app():
        yield provider.connect()
        yield consumer.connect()
        registry_p = ServiceDiscovery(env, provider)
        registry_c = ServiceDiscovery(env, consumer)
        yield env.process(
            registry_p.register("db", "db-1", b"10.0.0.1:5432")
        )
        yield env.process(
            registry_p.register("db", "db-2", b"10.0.0.2:5432")
        )
        instances = yield env.process(registry_c.instances("db"))
        assert instances == [
            ("db-1", b"10.0.0.1:5432"),
            ("db-2", b"10.0.0.2:5432"),
        ]
        yield env.process(registry_p.deregister("db", "db-1"))
        instances = yield env.process(registry_c.instances("db"))
        return instances

    assert run_app(env, app()) == [("db-2", b"10.0.0.2:5432")]


def test_service_discovery_across_sites():
    env, topo, net = fresh_world()
    deployment = wankeeper(env, net, topo)
    provider = deployment.client(CALIFORNIA)
    consumer = deployment.client(FRANKFURT)

    def app():
        yield provider.connect()
        yield consumer.connect()
        registry_p = ServiceDiscovery(env, provider)
        registry_c = ServiceDiscovery(env, consumer)
        yield env.process(
            registry_p.register("api", "ca-1", b"california endpoint")
        )
        yield env.timeout(2000.0)
        instances = yield env.process(registry_c.instances("api"))
        assert instances == [("ca-1", b"california endpoint")]
        # Provider's session ends; the instance disappears everywhere.
        yield provider.close()
        yield env.timeout(3000.0)
        instances = yield env.process(registry_c.instances("api"))
        return instances

    assert run_app(env, app()) == []


def test_lookup_of_unknown_service_is_empty():
    env, topo, net = fresh_world()
    deployment = plain_zk(env, net, topo)
    client = deployment.client(VIRGINIA)

    def app():
        yield client.connect()
        registry = ServiceDiscovery(env, client)
        instances = yield env.process(registry.instances("ghost"))
        group = GroupMembership(env, client, "/no-group", "x")
        members = yield env.process(group.members())
        return instances, members

    instances, members = run_app(env, app())
    assert instances == []
    assert members == []
