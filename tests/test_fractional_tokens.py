"""Tests for fractional read/write tokens (§VI) and strong read modes."""

import pytest

from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA
from repro.wankeeper import build_wankeeper_deployment

from tests.support import fresh_world, run_app


def wankeeper(env, net, topo, **kwargs):
    deployment = build_wankeeper_deployment(env, net, topo, **kwargs)
    deployment.start()
    deployment.stabilize()
    return deployment


def test_forward_mode_reads_pay_wan_trip():
    env, topo, net = fresh_world()
    deployment = wankeeper(env, net, topo, read_mode="forward")
    writer = deployment.client(VIRGINIA)
    reader = deployment.client(CALIFORNIA)

    def app():
        yield writer.connect()
        yield reader.connect()
        yield writer.create("/strong", b"v")
        yield env.timeout(1000.0)
        start = env.now
        data, _ = yield reader.get_data("/strong")
        assert data == b"v"
        return env.now - start

    latency = run_app(env, app())
    rtt = topo.rtt(VIRGINIA, CALIFORNIA)
    assert latency >= rtt - 5.0


def test_forward_mode_read_is_fresh():
    """A forwarded read returns the hub's latest value, not the stale
    local replica's."""
    env, topo, net = fresh_world()
    deployment = wankeeper(env, net, topo, read_mode="forward")
    writer = deployment.client(VIRGINIA)
    reader = deployment.client(FRANKFURT)

    def app():
        yield writer.connect()
        yield reader.connect()
        yield writer.create("/fresh", b"old")
        yield env.timeout(1000.0)
        yield writer.set_data("/fresh", b"new")
        # Immediately read from Frankfurt: its replica lags (~100 ms),
        # but the forwarded read is served by the hub.
        data, _ = yield reader.get_data("/fresh")
        return data

    assert run_app(env, app()) == b"new"


def test_fractional_first_read_remote_then_local():
    env, topo, net = fresh_world()
    deployment = wankeeper(env, net, topo, read_mode="fractional")
    writer = deployment.client(VIRGINIA)
    reader = deployment.client(CALIFORNIA)

    def app():
        yield writer.connect()
        yield reader.connect()
        yield writer.create("/leased", b"v1")
        yield env.timeout(1000.0)
        start = env.now
        yield reader.get_data("/leased")
        first = env.now - start
        start = env.now
        data, _ = yield reader.get_data("/leased")
        second = env.now - start
        return first, second, data

    first, second, data = run_app(env, app())
    rtt = topo.rtt(VIRGINIA, CALIFORNIA)
    assert first >= rtt - 5.0      # lease acquisition pays the WAN trip
    assert second < 5.0            # served from the lease cache
    assert data == b"v1"


def test_fractional_write_invalidates_leases():
    """§VI: a write needs all read tokens back — and afterwards readers
    see the new value, never the stale cache."""
    env, topo, net = fresh_world()
    deployment = wankeeper(env, net, topo, read_mode="fractional")
    writer = deployment.client(VIRGINIA)
    reader = deployment.client(CALIFORNIA)

    def app():
        yield writer.connect()
        yield reader.connect()
        yield writer.create("/inval", b"v1")
        yield env.timeout(1000.0)
        data, _ = yield reader.get_data("/inval")   # acquires lease
        assert data == b"v1"
        yield writer.set_data("/inval", b"v2")      # must invalidate lease
        data, _ = yield reader.get_data("/inval")   # re-fetch from hub
        return data

    assert run_app(env, app()) == b"v2"


def test_fractional_write_latency_includes_invalidation():
    env, topo, net = fresh_world()
    deployment = wankeeper(env, net, topo, read_mode="fractional")
    writer = deployment.client(VIRGINIA)
    reader = deployment.client(CALIFORNIA)

    def app():
        yield writer.connect()
        yield reader.connect()
        yield writer.create("/cost", b"v1")
        yield env.timeout(1000.0)
        yield reader.get_data("/cost")  # CA server now holds a lease
        start = env.now
        yield writer.set_data("/cost", b"v2")
        return env.now - start

    latency = run_app(env, app())
    # The write must wait for the invalidation round trip to California.
    assert latency >= topo.rtt(VIRGINIA, CALIFORNIA) - 5.0


def test_fractional_site_with_write_token_reads_locally():
    env, topo, net = fresh_world()
    deployment = wankeeper(env, net, topo, read_mode="fractional")
    client = deployment.client(CALIFORNIA)

    def app():
        yield client.connect()
        yield client.create("/own", b"0")
        yield client.set_data("/own", b"1")  # token migrates to CA
        yield env.timeout(500.0)
        start = env.now
        data, _ = yield client.get_data("/own")
        return env.now - start, data

    latency, data = run_app(env, app())
    assert latency < 5.0
    assert data == b"1"


def test_lease_expires_as_liveness_backstop():
    env, topo, net = fresh_world()
    deployment = wankeeper(
        env, net, topo, read_mode="fractional", read_lease_ms=500.0
    )
    writer = deployment.client(VIRGINIA)
    reader = deployment.client(CALIFORNIA)

    def app():
        yield writer.connect()
        yield reader.connect()
        yield writer.create("/expiry", b"v1")
        yield env.timeout(1000.0)
        yield reader.get_data("/expiry")  # lease for 500 ms
        yield env.timeout(1000.0)         # lease expired
        start = env.now
        yield reader.get_data("/expiry")
        return env.now - start

    latency = run_app(env, app())
    assert latency >= topo.rtt(VIRGINIA, CALIFORNIA) - 5.0  # re-fetched


def test_bad_read_mode_rejected():
    env, topo, net = fresh_world()
    with pytest.raises(ValueError):
        build_wankeeper_deployment(env, net, topo, read_mode="psychic")


def test_forward_mode_missing_node_error():
    env, topo, net = fresh_world()
    deployment = wankeeper(env, net, topo, read_mode="forward")
    reader = deployment.client(CALIFORNIA)

    def app():
        from repro.zk import NoNodeError

        yield reader.connect()
        with pytest.raises(NoNodeError):
            yield reader.get_data("/nothing")
        return True

    assert run_app(env, app())
