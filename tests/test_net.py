"""Unit tests for the simulated network layer."""

import pytest

from repro.net import (
    CALIFORNIA,
    FRANKFURT,
    VIRGINIA,
    Network,
    NodeAddress,
    Topology,
    wan_topology,
)
from repro.sim import Environment, StoreClosed, seeded_rng


def make_net(jitter=0.0):
    env = Environment()
    topo = wan_topology(jitter_fraction=jitter)
    net = Network(env, topo, rng=seeded_rng(1, "net"))
    return env, topo, net


def test_wan_topology_sites():
    topo = wan_topology()
    assert set(topo.site_names()) == {VIRGINIA, CALIFORNIA, FRANKFURT}


def test_wan_rtts_match_paper_regions():
    topo = wan_topology()
    assert topo.rtt(VIRGINIA, CALIFORNIA) == pytest.approx(70.0)
    assert topo.rtt(VIRGINIA, FRANKFURT) == pytest.approx(90.0)
    assert topo.rtt(CALIFORNIA, FRANKFURT) == pytest.approx(150.0)


def test_intra_site_latency_small():
    topo = wan_topology()
    a = topo.site(VIRGINIA).address("a")
    b = topo.site(VIRGINIA).address("b")
    assert topo.one_way(a, b) < 1.0


def test_topology_missing_latency_rejected():
    with pytest.raises(ValueError):
        Topology(["x", "y"], one_way_ms={})


def test_topology_unknown_site_rejected():
    with pytest.raises(ValueError):
        Topology(["x"], one_way_ms={frozenset({"x", "zz"}): 10.0})


def test_topology_non_positive_latency_rejected():
    with pytest.raises(ValueError):
        Topology(["x", "y"], one_way_ms={frozenset({"x", "y"}): 0.0})


def test_set_one_way_override():
    topo = wan_topology()
    topo.set_one_way(VIRGINIA, CALIFORNIA, 10.0)
    assert topo.rtt(VIRGINIA, CALIFORNIA) == pytest.approx(20.0)


def test_message_delivery_with_wan_delay():
    env, topo, net = make_net()
    src = topo.site(VIRGINIA).address("src")
    dst = topo.site(CALIFORNIA).address("dst")
    net.register(src)
    inbox = net.register(dst)
    arrivals = []

    def receiver(env, inbox):
        envelope = yield inbox.get()
        arrivals.append((env.now, envelope.body))

    env.process(receiver(env, inbox))
    net.send(src, dst, "hello")
    env.run()
    assert arrivals == [(35.0, "hello")]


def test_local_delivery_fast():
    env, topo, net = make_net()
    src = topo.site(VIRGINIA).address("a")
    dst = topo.site(VIRGINIA).address("b")
    net.register(src)
    inbox = net.register(dst)
    arrivals = []

    def receiver(env, inbox):
        envelope = yield inbox.get()
        arrivals.append(env.now)

    env.process(receiver(env, inbox))
    net.send(src, dst, "x")
    env.run()
    assert arrivals[0] < 1.0


def test_fifo_per_pair_even_with_jitter():
    env, topo, net = make_net(jitter=0.5)
    src = topo.site(VIRGINIA).address("src")
    dst = topo.site(FRANKFURT).address("dst")
    net.register(src)
    inbox = net.register(dst)
    received = []

    def receiver(env, inbox):
        while True:
            envelope = yield inbox.get()
            received.append(envelope.body)

    env.process(receiver(env, inbox))
    for i in range(100):
        net.send(src, dst, i)
    env.run(until=10000.0)
    assert received == list(range(100))


def test_unknown_destination_rejected():
    env, topo, net = make_net()
    src = topo.site(VIRGINIA).address("src")
    dst = topo.site(CALIFORNIA).address("ghost")
    net.register(src)
    with pytest.raises(ValueError):
        net.send(src, dst, "x")


def test_double_registration_rejected():
    env, topo, net = make_net()
    addr = topo.site(VIRGINIA).address("a")
    net.register(addr)
    with pytest.raises(ValueError):
        net.register(addr)


def test_crash_drops_messages():
    env, topo, net = make_net()
    src = topo.site(VIRGINIA).address("src")
    dst = topo.site(CALIFORNIA).address("dst")
    net.register(src)
    net.register(dst)
    net.crash(dst)
    net.send(src, dst, "lost")
    env.run()
    assert net.messages_dropped == 1


def test_crash_closes_inbox():
    env, topo, net = make_net()
    addr = topo.site(VIRGINIA).address("n")
    inbox = net.register(addr)
    failures = []

    def receiver(env, inbox):
        try:
            yield inbox.get()
        except StoreClosed:
            failures.append(env.now)

    env.process(receiver(env, inbox))
    env.run(until=1.0)
    net.crash(addr)
    env.run()
    assert failures == [1.0]


def test_crash_mid_flight_drops():
    env, topo, net = make_net()
    src = topo.site(VIRGINIA).address("src")
    dst = topo.site(CALIFORNIA).address("dst")
    net.register(src)
    net.register(dst)
    net.send(src, dst, "in-flight")
    env.run(until=10.0)  # message still in flight (needs 35 ms)
    net.crash(dst)
    env.run()
    assert net.messages_dropped == 1


def test_restart_allows_delivery_again():
    env, topo, net = make_net()
    src = topo.site(VIRGINIA).address("src")
    dst = topo.site(CALIFORNIA).address("dst")
    net.register(src)
    inbox = net.register(dst)
    net.crash(dst)
    net.send(src, dst, "lost")
    env.run()
    net.restart(dst)
    got = []

    def receiver(env, inbox):
        envelope = yield inbox.get()
        got.append(envelope.body)

    env.process(receiver(env, inbox))
    net.send(src, dst, "after-restart")
    env.run()
    assert got == ["after-restart"]


def test_partition_blocks_both_directions():
    env, topo, net = make_net()
    va = topo.site(VIRGINIA).address("va")
    ca = topo.site(CALIFORNIA).address("ca")
    net.register(va)
    net.register(ca)
    net.partition(VIRGINIA, CALIFORNIA)
    net.send(va, ca, "x")
    net.send(ca, va, "y")
    env.run()
    assert net.messages_dropped == 2


def test_partition_does_not_affect_other_pairs():
    env, topo, net = make_net()
    va = topo.site(VIRGINIA).address("va")
    fr = topo.site(FRANKFURT).address("fr")
    net.register(va)
    inbox = net.register(fr)
    net.partition(VIRGINIA, CALIFORNIA)
    got = []

    def receiver(env, inbox):
        envelope = yield inbox.get()
        got.append(envelope.body)

    env.process(receiver(env, inbox))
    net.send(va, fr, "ok")
    env.run()
    assert got == ["ok"]


def test_heal_restores_connectivity():
    env, topo, net = make_net()
    va = topo.site(VIRGINIA).address("va")
    ca = topo.site(CALIFORNIA).address("ca")
    net.register(va)
    inbox = net.register(ca)
    net.partition(VIRGINIA, CALIFORNIA)
    net.send(va, ca, "lost")
    env.run()
    net.heal(VIRGINIA, CALIFORNIA)
    got = []

    def receiver(env, inbox):
        envelope = yield inbox.get()
        got.append(envelope.body)

    env.process(receiver(env, inbox))
    net.send(va, ca, "found")
    env.run()
    assert got == ["found"]


def test_partition_mid_flight_drops():
    env, topo, net = make_net()
    va = topo.site(VIRGINIA).address("va")
    ca = topo.site(CALIFORNIA).address("ca")
    net.register(va)
    net.register(ca)
    net.send(va, ca, "in-flight")
    env.run(until=5.0)
    net.partition(VIRGINIA, CALIFORNIA)
    env.run()
    assert net.messages_dropped == 1


def test_tap_sees_all_sends():
    env, topo, net = make_net()
    va = topo.site(VIRGINIA).address("va")
    ca = topo.site(CALIFORNIA).address("ca")
    net.register(va)
    net.register(ca)
    seen = []
    net.tap(lambda envelope: seen.append(envelope.body))
    net.send(va, ca, "one")
    net.send(va, ca, "two")
    assert seen == ["one", "two"]


def test_message_counters():
    env, topo, net = make_net()
    va = topo.site(VIRGINIA).address("va")
    ca = topo.site(CALIFORNIA).address("ca")
    net.register(va)
    net.register(ca)
    net.send(va, ca, "x", size_bytes=100)
    assert net.messages_sent == 1
    assert net.bytes_sent == 100
