"""Conformance suite for broadcast substrates (:mod:`repro.substrate`).

Every registered backend must honor the same observable contract, no
matter how differently it orders internally:

* **Total order per ordering domain** — all replicas deliver a domain's
  transactions in one identical sequence, with strictly increasing
  zxids. Zab has a single domain (the whole log); WPaxos orders per
  object (znode path, or the ``__sessions__`` meta object).
* **Epoch monotonicity** — ``current_epoch`` never decreases on any
  peer, across elections, ownership steals, crashes and restarts.
* **No commit loss across leader change** — transactions delivered
  before the proposer crashed are still delivered by every live replica
  afterwards, exactly once.
* **Observer catch-up** — an observer (even one that crashed and
  restarted) converges to the voters' delivery sequence; ``on_reset``
  fires before a restarted replica's log replays from zero.
"""

import pytest

from repro.net import CALIFORNIA, FRANKFURT, VIRGINIA, Network, wan_topology
from repro.sim import Environment, seeded_rng
from repro.substrate import create_peer, get_substrate, substrate_names
from repro.wpaxos import META_OBJECT
from repro.zab import EnsembleConfig

SUBSTRATES = ("zab", "wpaxos")

#: WPaxos needs >= 2 voters per zone to survive a voter crash (phase-1
#: quorums take a majority of every zone); Zab's majority spans sites.
VOTER_SITES = {
    "zab": (VIRGINIA, CALIFORNIA, FRANKFURT),
    "wpaxos": (VIRGINIA,) * 3 + (CALIFORNIA,) * 3 + (FRANKFURT,) * 3,
}


class PathTxn:
    """Minimal transaction with a znode path (an ordering-domain key)."""

    __slots__ = ("op", "tag")

    class _Op:
        __slots__ = ("path",)

        def __init__(self, path):
            self.path = path

    def __init__(self, path: str, tag: str):
        self.op = PathTxn._Op(path)
        self.tag = tag

    def __repr__(self) -> str:
        return f"PathTxn({self.op.path}, {self.tag})"


def build(substrate, observer_sites=()):
    env = Environment()
    topo = wan_topology()
    net = Network(env, topo, rng=seeded_rng(11, "net"))
    voters = [
        topo.site(site).address(f"v{i}")
        for i, site in enumerate(VOTER_SITES[substrate])
    ]
    observers = [
        topo.site(site).address(f"o{i}")
        for i, site in enumerate(observer_sites)
    ]
    config = EnsembleConfig(voters=voters, observers=observers)
    peers = [
        create_peer(substrate, env, net, addr, config, name=addr.name)
        for addr in voters + observers
    ]
    for peer in peers:
        peer.start()
    env.run(until=2000.0)
    return env, peers


def domain_of(substrate, txn):
    if substrate == "zab":
        return "__log__"
    path = getattr(getattr(txn, "op", None), "path", None)
    return path if path is not None else META_OBJECT


def record_commits(substrate, peers):
    """Wire per-peer (domain -> [(zxid, txn)]) delivery logs."""
    logs = {peer.addr: {} for peer in peers}

    def recorder(peer):
        def on_commit(zxid, txn):
            domain = domain_of(substrate, txn)
            logs[peer.addr].setdefault(domain, []).append((zxid, txn))

        return on_commit

    for peer in peers:
        peer.on_commit = recorder(peer)
        # Restart replays the durable log from zero: drop stale entries.
        peer.on_reset = lambda p: logs[p.addr].clear()
    return logs


def proposer_at(substrate, peers, site):
    """A live peer that may call ``submit``: for a multileader substrate
    any voter in ``site``; for a single-leader one, the current leader —
    wherever the election put it (``site`` is only a preference)."""
    if get_substrate(substrate).single_leader:
        return next(
            (p for p in peers if p.is_alive and p.is_leader), None
        )
    candidates = [
        p for p in peers
        if p.addr.site == site and p.is_alive and not p.is_observer
    ]
    return candidates[0] if candidates else None


def submit_from(peers, site, txn):
    """Submit on a local proposer, or forward through a local peer."""
    local = [p for p in peers if p.addr.site == site and p.is_alive]
    assert local, f"no live peer in {site}"
    for peer in local:
        if peer.is_leader:
            return peer.submit(txn)
    local[0].forward_submit(txn)
    return None


def test_registry_knows_both_backends():
    assert set(SUBSTRATES) <= set(substrate_names())
    assert get_substrate("zab").single_leader
    assert not get_substrate("wpaxos").single_leader
    with pytest.raises(ValueError, match="unknown substrate"):
        get_substrate("raft")


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_total_order_per_domain(substrate):
    env, peers = build(substrate)
    logs = record_commits(substrate, peers)
    sites = (VIRGINIA, CALIFORNIA, FRANKFURT)
    submitted = {}
    for round_index in range(8):
        for site in sites:
            txn = PathTxn(f"/conf/{site}", f"{site}-{round_index}")
            submitted.setdefault(domain_of(substrate, txn), []).append(txn.tag)
            submit_from(peers, site, txn)
        env.run(until=env.now + 200.0)
    env.run(until=env.now + 5000.0)

    reference = logs[peers[0].addr]
    for domain, tags in submitted.items():
        ref_tags = [txn.tag for _z, txn in reference.get(domain, [])]
        assert sorted(ref_tags) == sorted(tags), f"{domain} lost/dup commits"
        for peer in peers:
            entries = logs[peer.addr].get(domain, [])
            assert [txn.tag for _z, txn in entries] == ref_tags, (
                f"{peer.name} disagrees on {domain}"
            )
            zxids = [zxid for zxid, _t in entries]
            assert zxids == sorted(zxids)
            assert len(set(zxids)) == len(zxids), "duplicate zxid in domain"


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_epoch_monotonicity_across_crash_and_restart(substrate):
    env, peers = build(substrate)
    logs = record_commits(substrate, peers)  # noqa: F841 - keeps peers busy
    samples = {peer.addr: [] for peer in peers}

    def sampler():
        while True:
            for peer in peers:
                samples[peer.addr].append(peer.current_epoch)
            yield env.timeout(100.0)

    env.process(sampler(), name="epoch-sampler")
    victim = proposer_at(substrate, peers, VIRGINIA)
    submit_from(peers, VIRGINIA, PathTxn("/epoch/a", "before"))
    env.run(until=env.now + 1000.0)
    victim.crash()
    env.run(until=env.now + 2000.0)
    # Force new coordination: another site proposes (election for Zab,
    # ownership steal for WPaxos), bumping the epoch somewhere.
    submit_from(peers, CALIFORNIA, PathTxn("/epoch/a", "after"))
    env.run(until=env.now + 2000.0)
    victim.restart()
    env.run(until=env.now + 3000.0)
    for peer in peers:
        trail = samples[peer.addr]
        assert trail == sorted(trail), f"epoch went backwards on {peer.name}"


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_no_commit_loss_across_leader_change(substrate):
    env, peers = build(substrate)
    logs = record_commits(substrate, peers)
    first = proposer_at(substrate, peers, VIRGINIA)
    assert first is not None
    batch1 = [PathTxn("/loss/x", f"one-{i}") for i in range(10)]
    for txn in batch1:
        first.submit(txn)
    env.run(until=env.now + 4000.0)
    domain = domain_of(substrate, batch1[0])
    for peer in peers:
        got = [txn.tag for _z, txn in logs[peer.addr].get(domain, [])]
        assert got == [t.tag for t in batch1]

    first.crash()
    env.run(until=env.now + 2000.0)
    second = proposer_at(substrate, peers, CALIFORNIA)
    assert second is not None and second is not first
    batch2 = [PathTxn("/loss/x", f"two-{i}") for i in range(10)]
    for txn in batch2:
        second.submit(txn)
    env.run(until=env.now + 6000.0)

    live = [p for p in peers if p.is_alive]
    reference = [
        txn.tag for _z, txn in logs[live[0].addr].get(domain, [])
    ]
    expected = {t.tag for t in batch1} | {t.tag for t in batch2}
    assert set(reference) == expected, "commits lost across leader change"
    assert reference[:10] == [t.tag for t in batch1], (
        "pre-crash prefix must survive the takeover"
    )
    for peer in live:
        got = [txn.tag for _z, txn in logs[peer.addr].get(domain, [])]
        assert got == reference, f"{peer.name} diverges after takeover"


@pytest.mark.parametrize("substrate", SUBSTRATES)
def test_observer_catch_up_through_crash(substrate):
    env, peers = build(substrate, observer_sites=(CALIFORNIA,))
    observer = peers[-1]
    assert observer.is_observer and not observer.is_leader
    logs = record_commits(substrate, peers)
    domain = domain_of(substrate, PathTxn("/obs/k", ""))

    def tags(peer):
        return [txn.tag for _z, txn in logs[peer.addr].get(domain, [])]

    for i in range(5):
        submit_from(peers, VIRGINIA, PathTxn("/obs/k", f"live-{i}"))
    env.run(until=env.now + 3000.0)
    assert tags(observer) == [f"live-{i}" for i in range(5)]

    # Forwarding through the observer must reach a proposer.
    observer.forward_submit(PathTxn("/obs/k", "via-observer"))
    env.run(until=env.now + 3000.0)
    assert tags(observer)[-1] == "via-observer"

    observer.crash()
    for i in range(5):
        submit_from(peers, VIRGINIA, PathTxn("/obs/k", f"missed-{i}"))
    env.run(until=env.now + 3000.0)
    # Restart replays the durable log from zero; like ZkServer, the
    # embedding layer resets its state machine before rejoining
    # (``on_reset`` additionally covers mid-life snapshot rewrites).
    logs[observer.addr].clear()
    observer.restart()
    env.run(until=env.now + 6000.0)
    voters_view = tags(peers[0])
    assert [t for t in voters_view if t.startswith("missed")] == [
        f"missed-{i}" for i in range(5)
    ]
    assert tags(observer) == voters_view, "observer failed to catch up"
